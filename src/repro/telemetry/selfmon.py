"""Self-monitoring: Volley watching Volley (the observability loop).

The runtime exports gauges — queue depth, shed rate, checkpoint age —
but a gauge nobody samples is a dashboard, not a monitor. The
:class:`SelfMonitor` closes the loop with the paper's own machinery: it
registers each runtime-health gauge as a violation-likelihood monitoring
task in a *dedicated* in-process :class:`~repro.service.MonitoringService`
(shard label ``"self"``, never one of the wire shards, so ingest
backpressure can never starve the thing that detects ingest
backpressure) and polls them on the server's event loop.

Because the health tasks are ordinary Volley tasks, the paper's savings
apply to the monitor itself: while the runtime is healthy the samplers
stretch their intervals and most polls collect nothing; when a health
metric drifts toward its threshold the intervals collapse back to the
default and an alert fires within one poll period. The
``volley_selfmon_*`` counters quantify exactly how many probe
collections the likelihood scheduling saved.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING, Any, Callable

from repro.core.task import TaskSpec
from repro.telemetry.registry import MetricsRegistry, NULL_REGISTRY
from repro.telemetry.trace import NULL_TRACE
from repro.types import Alert

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycle
    from repro.runtime.server import RuntimeServer
    from repro.service import MonitoringService

__all__ = ["SELF_SHARD", "SelfMonitor"]

SELF_SHARD = "self"
"""Shard label of the self-monitoring service (never a wire shard)."""


class SelfMonitor:
    """Monitors the runtime's own health gauges as Volley tasks.

    Args:
        server: the :class:`~repro.runtime.server.RuntimeServer` to watch.
        registry: metrics registry for the ``volley_selfmon_*`` counters
            (the server's registry in production).
        trace: decision trace receiving ``selfmon_alert`` events.
        saturation_fraction: queue-depth alert threshold as a fraction of
            each shard queue's capacity.
        shed_rate_threshold: alert threshold on updates shed per poll
            period.
        checkpoint_age_factor: alert when the last successful checkpoint
            is older than ``factor * checkpoint_interval`` seconds
            (only registered when checkpointing is configured).
        error_allowance: per-health-task mis-detection allowance.
        max_interval: largest poll-skipping interval the samplers may
            reach, in poll periods.
    """

    def __init__(self, server: "RuntimeServer",
                 registry: MetricsRegistry | Any = NULL_REGISTRY,
                 trace: Any = NULL_TRACE,
                 saturation_fraction: float = 0.8,
                 shed_rate_threshold: float = 1.0,
                 checkpoint_age_factor: float = 3.0,
                 error_allowance: float = 0.05,
                 max_interval: int = 30):
        # Imported here, not at module scope: repro.service pulls in the
        # sketch substrates, which live on top of repro.telemetry — a
        # top-level import would close that cycle.
        from repro.service import MonitoringService

        self._server = server
        self._trace = trace
        self.service = MonitoringService()
        self._step = 0
        self._probes: list[tuple[str, Callable[[], float]]] = []
        self.alerts: list[tuple[str, Alert]] = []
        self._polls = registry.counter(
            "volley_selfmon_polls_total",
            "Self-monitor probe evaluations considered")
        self._samples = registry.counter(
            "volley_selfmon_samples_total",
            "Self-monitor probe collections actually performed "
            "(polls minus likelihood-scheduling savings)")
        self._alerts_total = registry.counter(
            "volley_selfmon_alerts_total",
            "Self-monitor alerts", labels=("task",))
        self._interval_gauge = registry.gauge(
            "volley_selfmon_interval", "Current self-monitor sampling "
            "interval per health task, in poll periods", labels=("task",))

        spec = dict(error_allowance=error_allowance,
                    default_interval=1.0, max_interval=max_interval)
        for worker in server._workers:
            threshold = saturation_fraction * worker.capacity
            self._add_probe(
                f"volley.shard{worker.shard_id}.queue_depth", threshold,
                lambda w=worker: float(w.depth), spec)
        self._add_probe("volley.shed_rate", shed_rate_threshold,
                        self._shed_rate, spec)
        self._last_shed = (0, 0.0)  # (step, total sheds) at last sample
        if server.config.checkpoint_path is not None:
            age_threshold = (checkpoint_age_factor
                             * server.config.checkpoint_interval)
            self._add_probe("volley.checkpoint_age", age_threshold,
                            self._checkpoint_age, spec)
        self._runner: asyncio.Task[None] | None = None

    def _add_probe(self, name: str, threshold: float,
                   fn: Callable[[], float], spec: dict[str, Any]) -> None:
        task = TaskSpec(threshold=float(threshold), name=name, **spec)

        def on_alert(alert: Alert, _name: str = name) -> None:
            self.alerts.append((_name, alert))
            self._alerts_total.labels(_name).inc()
            self._trace.emit("selfmon_alert", task=_name, shard=SELF_SHARD,
                             step=alert.time_index, value=alert.value,
                             threshold=alert.threshold)

        self.service.add_task(name, task, on_alert=on_alert)
        self._probes.append((name, fn))

    # -- probe value functions -----------------------------------------

    def _shed_rate(self) -> float:
        """Updates shed per poll period since the previous collection."""
        total = float(sum(w.shed for w in self._server._workers))
        last_step, last_total = self._last_shed
        steps = max(1, self._step - last_step)
        self._last_shed = (self._step, total)
        return (total - last_total) / steps

    def _checkpoint_age(self) -> float:
        return self._server.checkpoint_age() or 0.0

    # -- driving --------------------------------------------------------

    @property
    def task_names(self) -> list[str]:
        """The registered health-task names."""
        return [name for name, _ in self._probes]

    def poll(self) -> int:
        """One poll period: collect every *due* probe; returns collections.

        Skipped probes are the savings — the gauge read (and any work it
        implies) is simply not performed, exactly as the paper's samplers
        skip collection for values the schedule does not need.
        """
        step = self._step
        service = self.service
        collected = 0
        for name, fn in self._probes:
            self._polls.inc()
            if not service.due(name, step):
                continue
            service.offer(name, fn(), step)
            collected += 1
            self._samples.inc()
            self._interval_gauge.labels(name).set(service.interval(name))
        self._step = step + 1
        return collected

    async def run(self, interval_s: float) -> None:
        """Poll forever every ``interval_s`` seconds (cancel to stop)."""
        while True:
            await asyncio.sleep(interval_s)
            self.poll()

    def start(self, interval_s: float) -> None:
        """Start the periodic poll loop on the running event loop."""
        if self._runner is None:
            self._runner = asyncio.get_running_loop().create_task(
                self.run(interval_s), name="selfmon-loop")

    async def stop(self) -> None:
        """Cancel the poll loop (idempotent)."""
        if self._runner is None:
            return
        self._runner.cancel()
        try:
            await self._runner
        except asyncio.CancelledError:
            pass
        self._runner = None

    def stats(self) -> dict[str, Any]:
        """Summary for the ``telemetry`` consumers and tests."""
        return {
            "steps": self._step,
            "tasks": {name: {"interval": self.service.interval(name),
                             "samples_taken":
                                 self.service.samples_taken(name),
                             "alerts": len(self.service.alerts(name))}
                      for name, _ in self._probes},
            "alerts": len(self.alerts),
        }
