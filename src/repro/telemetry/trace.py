"""Bounded structured trace of sampler/coordinator decisions.

Counters say *how much*; the decision trace says *what happened, in
order*. Every notable decision the runtime takes — an interval adapted,
an allowance reallocated, a violation detected, a batch shed, a
checkpoint written — is appended to a fixed-capacity ring buffer as a
structured event carrying a process-wide sequence number and a monotonic
timestamp. The buffer is drainable over the wire (``trace`` op, with a
``since`` cursor so pollers never re-read events) and dumpable to JSONL
for offline analysis or CI artifacts.

The ring is deliberately lossy at the head: under event storms old
events are evicted, never blocking the hot path — ``dropped`` counts the
evictions so readers know the history is incomplete. Emission is O(1)
(a deque append); un-traced deployments hold :data:`NULL_TRACE` and pay
one ``enabled`` check.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import deque
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "DecisionTrace",
    "NULL_TRACE",
    "NullTrace",
    "TRACE_EVENT_KINDS",
]

TRACE_EVENT_KINDS = (
    "interval_adapted",      # a sampler grew or reset its interval
    "violation",             # a sampled value violated its threshold
    "allowance_reallocated", # a coordinator moved error allowance
    "shed",                  # offer_batch updates shed under backpressure
    "checkpoint_written",    # a checkpoint flushed successfully
    "checkpoint_failed",     # a periodic checkpoint write failed
    "task_registered",
    "task_removed",
    "restore",               # server restored state from a checkpoint
    "selfmon_alert",         # the self-monitor alerted on runtime health
    "worker_started",        # cluster: a worker process joined the fleet
    "worker_lost",           # cluster: heartbeat declared a worker dead
    "shard_migrated",        # cluster: live migration cut a shard over
    "migration_aborted",     # cluster: a migration rolled back safely
    "shard_replaced",        # cluster: failure-driven re-placement
    "trigger_plan_installed",  # a correlation trigger plan was wired up
    "trigger_armed",         # a guarded task resumed full-rate sampling
    "trigger_disarmed",      # a guarded task dropped to its idle interval
)
"""Kinds emitted by the instrumented runtime (extensible by callers)."""


class DecisionTrace:
    """Fixed-capacity ring buffer of structured decision events.

    Args:
        capacity: maximum events retained; older events are evicted
            (and counted in :attr:`dropped`) once the ring is full.
    """

    enabled = True

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ConfigurationError(
                f"trace capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._next_seq = 0
        self.dropped = 0

    def emit(self, kind: str, task: str | None = None,
             shard: int | str | None = None, **data: Any) -> int:
        """Append one event; returns its sequence number.

        ``data`` values must be JSON-able (they travel over the wire and
        into JSONL dumps verbatim).
        """
        seq = self._next_seq
        self._next_seq = seq + 1
        event: dict[str, Any] = {"seq": seq,
                                 "ts_monotonic": time.monotonic(),
                                 "kind": kind}
        if task is not None:
            event["task"] = task
        if shard is not None:
            event["shard"] = shard
        if data:
            event.update(data)
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        return seq

    def __len__(self) -> int:
        return len(self._events)

    @property
    def next_seq(self) -> int:
        """Sequence number the next emitted event will carry."""
        return self._next_seq

    def drain(self, since: int = 0,
              limit: int | None = None) -> list[dict[str, Any]]:
        """Events with ``seq >= since``, oldest first (non-destructive).

        Pollers remember the last reply's ``next_seq`` and pass it back as
        ``since``; events evicted before being read are simply absent (the
        gap in sequence numbers, plus :attr:`dropped`, reveals the loss).
        """
        if since < 0:
            raise ValueError(f"since must be >= 0, got {since}")
        out = [event for event in self._events if event["seq"] >= since]
        if limit is not None and len(out) > limit:
            out = out[:limit]
        return out

    def dump_jsonl(self, path: pathlib.Path | str,
                   since: int = 0) -> pathlib.Path:
        """Write the retained events to a JSONL file; returns the path."""
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = "".join(json.dumps(event, separators=(",", ":")) + "\n"
                        for event in self.drain(since=since))
        path.write_text(lines, encoding="utf-8")
        return path

    def to_jsonl(self, since: int = 0) -> str:
        """The retained events as JSONL text (the ``/trace`` endpoint)."""
        return "".join(json.dumps(event, separators=(",", ":")) + "\n"
                       for event in self.drain(since=since))


class NullTrace:
    """No-op trace: ``emit`` discards, ``drain`` is empty.

    Hot paths that emit more than a couple of fields guard with
    ``trace.enabled`` to skip even the argument packing.
    """

    enabled = False
    capacity = 0
    dropped = 0
    next_seq = 0

    def emit(self, kind: str, task: str | None = None,
             shard: int | str | None = None, **data: Any) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def drain(self, since: int = 0,
              limit: int | None = None) -> list[dict[str, Any]]:
        return []

    def to_jsonl(self, since: int = 0) -> str:
        return ""


NULL_TRACE = NullTrace()
"""The shared disabled trace (``enabled = False``)."""
