"""Deterministic chaos harness for the reproduction (DESIGN.md S28).

Three layers:

* :mod:`repro.testkit.faults` — ``(seed, spec)``-compiled fault plans and
  the :class:`~repro.testkit.faults.FaultHook` seams the runtime exposes;
* :mod:`repro.testkit.invariants` — machine-checked paper invariants
  (allowance conservation, mis-detection bound, bit-identical restore,
  no ACKed offer lost);
* :mod:`repro.testkit.scenarios` — the scenario matrix driving the live
  runtime under injected faults, plus the ``python -m repro.testkit``
  CLI that writes JSON conformance reports.

This package deliberately re-exports only ``faults`` and ``invariants``:
the runtime imports the hook interface from here, and ``scenarios``
imports the runtime — importing it eagerly would create a cycle. Reach
scenarios via ``repro.testkit.scenarios`` (the CLI does).
"""

from repro.testkit.faults import (FaultHook, FaultPlan, FaultSpec,
                                  InjectedFault, NOOP_HOOK, PlanFaultHook,
                                  stable_uniform)
from repro.testkit.invariants import (ConservationCheckedPolicy,
                                      InvariantResult, LeakySketch,
                                      check_allowance_conservation,
                                      check_misdetection_bound,
                                      check_no_acked_loss,
                                      check_quantile_misdetection,
                                      check_restore_bit_identical,
                                      snapshot_fingerprint)

__all__ = [
    "ConservationCheckedPolicy",
    "FaultHook",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "InvariantResult",
    "LeakySketch",
    "NOOP_HOOK",
    "PlanFaultHook",
    "check_allowance_conservation",
    "check_misdetection_bound",
    "check_no_acked_loss",
    "check_quantile_misdetection",
    "check_restore_bit_identical",
    "snapshot_fingerprint",
    "stable_uniform",
]
