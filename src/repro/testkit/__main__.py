"""``python -m repro.testkit`` — run chaos scenarios, write the report."""

import sys

from repro.testkit.scenarios import main

if __name__ == "__main__":
    sys.exit(main())
