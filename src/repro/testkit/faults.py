"""Deterministic fault injection for the ingestion runtime (DESIGN.md S28).

A chaos run is fully described by a ``(seed, spec)`` pair:
:class:`FaultSpec` says *which* faults may fire and how often,
:class:`FaultPlan` compiles that pair into a pure function from
``(seam, event index)`` to a fault decision. Nothing is drawn lazily from
shared RNG state — every decision is a stable hash of
``seed:seam:index`` — so two independent observers of the same plan (the
injection hook inside the server and the scenario driver building its
shadow reference) compute byte-identical schedules, and any failure
reproduces from its ``(seed, spec)`` pair alone.

The runtime sees faults only through the :class:`FaultHook` interface.
Production code holds the :data:`NOOP_HOOK` singleton whose ``enabled``
flag is ``False``; every seam is guarded by that flag, so the hot path
pays one attribute load and a falsy check per *batch* (never per update).
:class:`PlanFaultHook` is the live implementation: it keeps per-seam
event counters, consults the plan, and records everything it injected.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields as dataclass_fields
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = [
    "FaultHook",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "NOOP_HOOK",
    "PlanFaultHook",
    "stable_uniform",
]


def stable_uniform(seed: int, seam: str, index: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` for one seam event.

    A pure function of its arguments (stable across processes, platforms
    and ``PYTHONHASHSEED``), so independent observers of the same seed
    always agree — the property every deterministic schedule in the
    testkit rests on.
    """
    key = f"{seed}:{seam}:{index}".encode("utf-8")
    digest = hashlib.blake2b(key, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0 ** 64

# Frame-level fault actions (mutually exclusive per frame, decided by one
# draw so the individual rates compose deterministically).
FRAME_OK = "ok"
FRAME_DROP = "drop"
FRAME_TRUNCATE = "truncate"
FRAME_CORRUPT = "corrupt"

# Checkpoint-write fault actions.
CKPT_OK = "ok"
CKPT_TORN = "torn"
CKPT_CORRUPT = "corrupt"
CKPT_OSERROR = "oserror"


class InjectedFault(RuntimeError):
    """Raised by a fault hook to simulate an unexpected internal error.

    Deliberately *not* a :class:`~repro.exceptions.ReproError`: the point
    is to exercise the runtime's handling of exceptions it never
    anticipated (the shard drain loop's reject-and-continue path).
    """


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """Which faults a chaos run may inject, and how often.

    All ``*_rate`` attributes are probabilities in ``[0, 1]`` evaluated
    independently per event by the plan's stable hash. Counts and
    fractions describe scheduled one-shot faults.

    Attributes:
        drop_connection_rate: an inbound frame vanishes and the server
            treats the connection as closed by the peer (clean EOF).
        truncate_frame_rate: an inbound frame body is cut short before
            decoding — the length prefix now lies.
        corrupt_frame_rate: a byte of an inbound frame body is flipped.
        duplicate_frame_rate: a decoded ``offer_batch`` frame is
            dispatched twice (one reply) — duplicated delivery.
        force_shed_rate: a shard batch is shed as if its queue were full,
            exercising the backpressure reply deterministically.
        shard_error_rate: the shard drain loop's ``apply`` raises an
            :class:`InjectedFault` for a whole batch.
        torn_checkpoint_rate: a checkpoint write persists only a prefix
            of its bytes (simulated torn write / partial copy).
        corrupt_checkpoint_rate: a checkpoint write persists with one
            byte flipped.
        checkpoint_oserror_rate: a checkpoint write fails with
            :class:`OSError` (disk full, permissions).
        clock_skew_rate: an outgoing update's step is perturbed by the
            driver (simulated clock skew between collectors).
        clock_skew_max: largest absolute step perturbation.
        crash_fractions: fractions of the scenario's step horizon at
            which the driver hard-crashes the server (no drain, no final
            checkpoint) and restarts it from the last checkpoint.
    """

    drop_connection_rate: float = 0.0
    truncate_frame_rate: float = 0.0
    corrupt_frame_rate: float = 0.0
    duplicate_frame_rate: float = 0.0
    force_shed_rate: float = 0.0
    shard_error_rate: float = 0.0
    torn_checkpoint_rate: float = 0.0
    corrupt_checkpoint_rate: float = 0.0
    checkpoint_oserror_rate: float = 0.0
    clock_skew_rate: float = 0.0
    clock_skew_max: int = 0
    crash_fractions: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        for f in dataclass_fields(self):
            if f.name.endswith("_rate"):
                value = getattr(self, f.name)
                if not 0.0 <= value <= 1.0:
                    raise ConfigurationError(
                        f"{f.name} must be in [0, 1], got {value}")
        frame_total = (self.drop_connection_rate + self.truncate_frame_rate
                       + self.corrupt_frame_rate)
        if frame_total > 1.0:
            raise ConfigurationError(
                f"frame fault rates must sum to <= 1, got {frame_total}")
        ckpt_total = (self.torn_checkpoint_rate
                      + self.corrupt_checkpoint_rate
                      + self.checkpoint_oserror_rate)
        if ckpt_total > 1.0:
            raise ConfigurationError(
                f"checkpoint fault rates must sum to <= 1, got {ckpt_total}")
        if self.clock_skew_max < 0:
            raise ConfigurationError(
                f"clock_skew_max must be >= 0, got {self.clock_skew_max}")
        if not isinstance(self.crash_fractions, tuple):
            object.__setattr__(self, "crash_fractions",
                               tuple(self.crash_fractions))
        for frac in self.crash_fractions:
            if not 0.0 < frac < 1.0:
                raise ConfigurationError(
                    f"crash fractions must lie in (0, 1), got {frac}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form, embedded in conformance reports."""
        out: dict[str, Any] = {}
        for f in dataclass_fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, entry: dict[str, Any]) -> "FaultSpec":
        """Rebuild a spec from :meth:`to_dict` (reproducing a report)."""
        known = {f.name for f in dataclass_fields(cls)}
        unknown = set(entry) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault spec key(s) {sorted(unknown)}")
        kwargs = dict(entry)
        if "crash_fractions" in kwargs:
            kwargs["crash_fractions"] = tuple(kwargs["crash_fractions"])
        return cls(**kwargs)


class FaultPlan:
    """A ``(seed, spec)`` pair compiled into a deterministic schedule.

    Every decision is a pure function of ``(seed, seam, index)`` — no
    mutable RNG state — so decisions can be queried in any order, from
    any process, and always agree. The scenario driver exploits this to
    *replay* the schedule the in-server hook executes.
    """

    __slots__ = ("seed", "spec")

    def __init__(self, seed: int, spec: FaultSpec):
        self.seed = int(seed)
        self.spec = spec

    def _draw(self, seam: str, index: int) -> float:
        """Stable uniform draw in ``[0, 1)`` for one seam event."""
        return stable_uniform(self.seed, seam, index)

    def _pick(self, seam: str, index: int,
              actions: list[tuple[str, float]], default: str) -> str:
        """One draw shared by mutually exclusive actions."""
        u = self._draw(seam, index)
        edge = 0.0
        for action, rate in actions:
            edge += rate
            if u < edge:
                return action
        return default

    # -- seam decisions -------------------------------------------------

    def frame_fault(self, index: int) -> str:
        """Fate of the ``index``-th armed inbound frame."""
        spec = self.spec
        return self._pick("frame", index, [
            (FRAME_DROP, spec.drop_connection_rate),
            (FRAME_TRUNCATE, spec.truncate_frame_rate),
            (FRAME_CORRUPT, spec.corrupt_frame_rate),
        ], FRAME_OK)

    def duplicate_offer(self, index: int) -> bool:
        """Whether the ``index``-th dispatched offer frame is duplicated."""
        return (self.spec.duplicate_frame_rate > 0.0
                and self._draw("dup", index)
                < self.spec.duplicate_frame_rate)

    def force_shed(self, index: int) -> bool:
        """Whether the ``index``-th shard enqueue is shed as if full."""
        return (self.spec.force_shed_rate > 0.0
                and self._draw("shed", index) < self.spec.force_shed_rate)

    def shard_fault(self, shard_id: int, index: int) -> bool:
        """Whether the shard's ``index``-th apply call raises."""
        return (self.spec.shard_error_rate > 0.0
                and self._draw(f"apply:{shard_id}", index)
                < self.spec.shard_error_rate)

    def checkpoint_fault(self, index: int) -> str:
        """Fate of the ``index``-th armed checkpoint write."""
        spec = self.spec
        return self._pick("checkpoint", index, [
            (CKPT_TORN, spec.torn_checkpoint_rate),
            (CKPT_CORRUPT, spec.corrupt_checkpoint_rate),
            (CKPT_OSERROR, spec.checkpoint_oserror_rate),
        ], CKPT_OK)

    def skew(self, task_index: int, step: int) -> int:
        """Signed step perturbation for one outgoing update (driver-side)."""
        spec = self.spec
        if spec.clock_skew_rate <= 0.0 or spec.clock_skew_max <= 0:
            return 0
        seam = f"skew:{task_index}"
        if self._draw(seam, step) >= spec.clock_skew_rate:
            return 0
        span = 2 * spec.clock_skew_max + 1
        offset = int(self._draw(seam + ":amt", step) * span) \
            - spec.clock_skew_max
        return offset

    def crash_steps(self, total_steps: int) -> tuple[int, ...]:
        """Absolute grid steps at which the driver hard-crashes the server."""
        return tuple(sorted({max(1, int(frac * total_steps))
                             for frac in self.spec.crash_fractions}))

    # -- deterministic byte mutations -----------------------------------

    def truncate_bytes(self, body: bytes, index: int, seam: str) -> bytes:
        """Cut a body to a deterministic strict prefix (possibly empty)."""
        if len(body) <= 1:
            return b""
        keep = int(self._draw(seam + ":cut", index) * (len(body) - 1))
        return body[:keep]

    def corrupt_bytes(self, body: bytes, index: int, seam: str) -> bytes:
        """Flip one deterministic byte of a body."""
        if not body:
            return body
        pos = int(self._draw(seam + ":pos", index) * len(body))
        pos = min(pos, len(body) - 1)
        flip = 1 + int(self._draw(seam + ":bit", index) * 255)
        mutated = bytearray(body)
        mutated[pos] ^= flip
        return bytes(mutated)


class FaultHook:
    """Injection seam interface; this base class is the production no-op.

    The runtime calls these methods at its seams, always guarded by
    :attr:`enabled` (class attribute ``False`` here), so production
    deployments pay no per-update cost. Subclasses flip ``enabled`` and
    implement real injection.
    """

    enabled = False

    def frame_body(self, body: bytes) -> bytes | None:
        """Transform an inbound frame body; ``None`` = peer vanished."""
        return body

    def duplicate_frame(self, request: dict[str, Any]) -> bool:
        """Whether a dispatched ``offer_batch`` frame is delivered twice."""
        return False

    def note_duplicate_reply(self, reply: dict[str, Any]) -> None:
        """Record the (discarded) reply of a duplicated dispatch."""

    def force_shed(self, shard_id: int) -> bool:
        """Whether a shard enqueue is shed as if the queue were full."""
        return False

    def before_apply(self, shard_id: int, batch_size: int) -> None:
        """Called before a shard applies a batch; may raise a fault."""

    def checkpoint_body(self, body: bytes) -> bytes:
        """Transform checkpoint bytes before the write; may raise OSError."""
        return body


NOOP_HOOK = FaultHook()
"""The production singleton: every seam disabled, zero injection."""


class PlanFaultHook(FaultHook):
    """Executes a :class:`FaultPlan` at the runtime's seams.

    Keeps one monotonically increasing event counter per seam — the
    counters survive server restarts (the scenario passes the same hook
    to every incarnation) so the schedule continues across a crash
    exactly where it stopped. :attr:`injected` summarises everything
    that fired, for the conformance report.
    """

    enabled = True

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.armed = True
        self.checkpoint_armed = True
        # Per-seam event counters.
        self._frame_index = 0
        self._dup_index = 0
        self._shed_index = 0
        self._apply_index: dict[int, int] = {}
        self._checkpoint_index = 0
        # What actually fired.
        self.injected: dict[str, int] = {
            "frames_dropped": 0,
            "frames_truncated": 0,
            "frames_corrupted": 0,
            "frames_duplicated": 0,
            "duplicate_updates_accepted": 0,
            "batches_shed": 0,
            "apply_faults": 0,
            "checkpoints_torn": 0,
            "checkpoints_corrupted": 0,
            "checkpoint_oserrors": 0,
        }

    # -- wire seam (server connection handler / protocol reader) --------

    def frame_body(self, body: bytes) -> bytes | None:
        if not self.armed:
            return body
        index = self._frame_index
        self._frame_index += 1
        action = self.plan.frame_fault(index)
        if action == FRAME_DROP:
            self.injected["frames_dropped"] += 1
            return None
        if action == FRAME_TRUNCATE:
            self.injected["frames_truncated"] += 1
            return self.plan.truncate_bytes(body, index, "frame")
        if action == FRAME_CORRUPT:
            self.injected["frames_corrupted"] += 1
            mutated = self.plan.corrupt_bytes(body, index, "frame")
            # A one-byte flip could, rarely, leave the body decodable —
            # a flip inside a JSON string may still parse, and a flip in
            # a binary column is *always* a structurally valid frame —
            # the server would then apply garbage and diverge from the
            # scenario driver's shadow reference. Guarantee the
            # corruption is *detectably* malformed. Binary bodies (the
            # first byte is a frame kind, never JSON's ``{``) get their
            # kind byte forced to 0xff, an unknown kind; JSON bodies that
            # still parse get a leading 0xff, never valid UTF-8.
            if body[:1] != b"{":
                return b"\xff" + mutated[1:]
            try:
                json.loads(mutated)
            except (ValueError, UnicodeDecodeError):
                return mutated
            return b"\xff" + mutated[1:]
        return body

    def duplicate_frame(self, request: dict[str, Any]) -> bool:
        if not self.armed:
            return False
        index = self._dup_index
        self._dup_index += 1
        fire = self.plan.duplicate_offer(index)
        if fire:
            self.injected["frames_duplicated"] += 1
        return fire

    def note_duplicate_reply(self, reply: dict[str, Any]) -> None:
        self.injected["duplicate_updates_accepted"] += \
            int(reply.get("accepted", 0))

    # -- shard seams ----------------------------------------------------

    def force_shed(self, shard_id: int) -> bool:
        if not self.armed:
            return False
        index = self._shed_index
        self._shed_index += 1
        fire = self.plan.force_shed(index)
        if fire:
            self.injected["batches_shed"] += 1
        return fire

    def before_apply(self, shard_id: int, batch_size: int) -> None:
        index = self._apply_index.get(shard_id, 0)
        self._apply_index[shard_id] = index + 1
        if self.armed and self.plan.shard_fault(shard_id, index):
            self.injected["apply_faults"] += 1
            raise InjectedFault(
                f"injected shard fault (shard {shard_id}, apply #{index})")

    # -- checkpoint seam ------------------------------------------------

    def checkpoint_body(self, body: bytes) -> bytes:
        if not self.checkpoint_armed:
            return body
        index = self._checkpoint_index
        self._checkpoint_index += 1
        action = self.plan.checkpoint_fault(index)
        if action == CKPT_OSERROR:
            self.injected["checkpoint_oserrors"] += 1
            raise OSError(f"injected checkpoint write failure (#{index})")
        if action == CKPT_TORN:
            self.injected["checkpoints_torn"] += 1
            torn = self.plan.truncate_bytes(body, index, "checkpoint")
            # Never tear by only the trailing newline: that prefix is
            # still a fully valid checkpoint. Cutting into the checksum
            # trailer (or earlier) guarantees the reader rejects it.
            return torn[:max(0, len(body) - 2)]
        if action == CKPT_CORRUPT:
            self.injected["checkpoints_corrupted"] += 1
            return self.plan.corrupt_bytes(body, index, "checkpoint")
        return body
