"""Machine-checked paper invariants (DESIGN.md S28).

Each checker returns an :class:`InvariantResult` — a JSON-able verdict
with the metrics that justify it — so the chaos scenarios, the pytest
suites, and the CI conformance report all consume the same objects. The
four invariants the harness gates every scenario on:

1. **Allowance conservation** (paper SIV): every
   :meth:`~repro.core.coordination.AllocationPolicy.reallocate` outcome
   must sum to the global error allowance with no negative shares —
   allowance may flow between monitors but never leak or appear.
2. **Mis-detection bound** (paper SIII, Cantelli): the empirical
   mis-detection rate of the adaptive sampler on seeded traces must stay
   at or below the error allowance ``err``, scored against the same
   ground truth the clairvoyant oracle baseline detects completely.
3. **Bit-identical restore**: a service snapshot must survive
   ``restore → snapshot`` with byte-identical canonical JSON — crash
   recovery may not perturb sampler state even in the last bit.
4. **No ACKed offer lost**: every update acknowledged before the last
   durable checkpoint barrier must be visible in the recovered state
   (compared as per-task applied-observation ledgers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.adaptation import AdaptationConfig, CoordinationStats
from repro.core.coordination import AllocationPolicy, AllocationUpdate
from repro.core.substrates import QuantileEstimator
from repro.core.task import TaskSpec
from repro.experiments.runner import run_adaptive
from repro.runtime.checkpoint import state_fingerprint
from repro.service import MonitoringService
from repro.telemetry.histogram import DEFAULT_RELATIVE_ERROR, LogHistogram
from repro.testkit.faults import stable_uniform

__all__ = [
    "InvariantResult",
    "ConservationCheckedPolicy",
    "LeakySketch",
    "check_allowance_conservation",
    "check_misdetection_bound",
    "check_no_acked_loss",
    "check_quantile_misdetection",
    "check_restore_bit_identical",
    "snapshot_fingerprint",
]

CONSERVATION_RTOL = 1e-9
"""Relative tolerance on ``sum(allocations) == total_error``."""


@dataclass(frozen=True, slots=True)
class InvariantResult:
    """Verdict of one invariant check.

    Attributes:
        name: stable identifier (keys the conformance report).
        passed: whether the invariant held.
        detail: one human-readable sentence (the first violation when
            ``passed`` is False).
        metrics: the numbers behind the verdict, JSON-able and
            deterministic for a given seed.
    """

    name: str
    passed: bool
    detail: str
    metrics: dict[str, Any]

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form for the conformance report."""
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail, "metrics": self.metrics}


# ---------------------------------------------------------------------------
# 1. Allowance conservation


class ConservationCheckedPolicy(AllocationPolicy):
    """Wrap any allocation policy and audit every reallocation.

    Delegates :meth:`initial` and :meth:`reallocate` to the inner policy
    and records a violation whenever an outcome leaks allowance (sum
    drifts off the global total beyond :data:`CONSERVATION_RTOL`) or goes
    negative. Drop-in: monitors/coordinators built against
    :class:`~repro.core.coordination.AllocationPolicy` accept it
    unchanged.
    """

    def __init__(self, inner: AllocationPolicy):
        self.inner = inner
        self.rounds = 0
        self.violations: list[str] = []

    def initial(self, num_monitors: int, total_error: float,
                ) -> tuple[float, ...]:
        allocations = self.inner.initial(num_monitors, total_error)
        self._audit(allocations, total_error, round_label="initial")
        return allocations

    def reallocate(self, current: tuple[float, ...],
                   reports: list[CoordinationStats | None],
                   total_error: float) -> AllocationUpdate:
        update = self.inner.reallocate(current, reports, total_error)
        self.rounds += 1
        self._audit(update.allocations, total_error,
                    round_label=f"round {self.rounds}")
        return update

    def _audit(self, allocations: tuple[float, ...], total_error: float,
               round_label: str) -> None:
        total = sum(allocations)
        tolerance = CONSERVATION_RTOL * max(abs(total_error), 1.0)
        if abs(total - total_error) > tolerance:
            self.violations.append(
                f"{round_label}: allocations sum to {total!r}, "
                f"expected {total_error!r}")
        negative = [a for a in allocations if a < 0.0]
        if negative:
            self.violations.append(
                f"{round_label}: negative allocation {min(negative)!r}")


def _synthetic_report(seed: int, round_index: int, monitor: int,
                      ) -> CoordinationStats:
    """One deterministic monitor report spanning the yield regimes.

    Yields must span orders of magnitude (some monitors near their cap
    with tiny marginal gain, some at small intervals starving for
    allowance) for the reallocation arithmetic to be stressed — uniform
    yields would hit the throttle and never move allowance at all.
    """
    seam = f"conservation:{round_index}:{monitor}"
    u_cost = stable_uniform(seed, seam + ":r", 0)
    u_need = stable_uniform(seed, seam + ":e", 0)
    # r_i = 1/I - 1/(I+1) for I in [1, 100] spans [~1e-4, 0.5].
    interval = 1 + int(u_cost * 100)
    cost_reduction = 1.0 / interval - 1.0 / (interval + 1)
    # e_i log-uniform over [1e-6, 1e-1]: five orders of magnitude.
    error_needed = 10.0 ** (-6.0 + 5.0 * u_need)
    return CoordinationStats(avg_cost_reduction=cost_reduction,
                             avg_error_needed=error_needed,
                             observations=100)


def check_allowance_conservation(policy: AllocationPolicy, *, seed: int,
                                 monitors: int = 8, rounds: int = 50,
                                 total_error: float = 0.01,
                                 ) -> InvariantResult:
    """Drive ``policy`` through seeded reallocation rounds and audit each.

    Every round feeds deterministic synthetic monitor reports (yield
    regimes spanning five orders of magnitude, occasional silent
    monitors) and checks that the resulting allocations conserve the
    global allowance and never go negative.

    Args:
        policy: the allocation policy under test.
        seed: drives the synthetic report stream.
        monitors: monitors in the simulated task.
        rounds: reallocation rounds to run.
        total_error: the task's global error allowance.
    """
    checked = ConservationCheckedPolicy(policy)
    current = checked.initial(monitors, total_error)
    reallocated_rounds = 0
    for r in range(rounds):
        reports: list[CoordinationStats | None] = []
        for m in range(monitors):
            # ~5% silent monitors: the keep-current path must conserve too.
            if stable_uniform(seed, f"conservation:{r}:{m}:silent", 0) < 0.05:
                reports.append(None)
            else:
                reports.append(_synthetic_report(seed, r, m))
        update = checked.reallocate(current, reports, total_error)
        current = update.allocations
        reallocated_rounds += int(update.reallocated)
    passed = not checked.violations
    detail = ("allowance conserved across all rounds" if passed
              else checked.violations[0])
    return InvariantResult(
        name="allowance_conservation",
        passed=passed,
        detail=detail,
        metrics={
            "monitors": monitors,
            "rounds": rounds,
            "reallocated_rounds": reallocated_rounds,
            "total_error": total_error,
            "final_sum": sum(current),
            "violations": len(checked.violations),
        },
    )


# ---------------------------------------------------------------------------
# 2. Mis-detection bound vs. the oracle's ground truth


def _seeded_trace(seed: int, stream: int, horizon: int,
                  threshold: float) -> np.ndarray:
    """A quiet stream with ramped bursts crossing the threshold.

    Same shape as the repo's ``bursty_trace`` fixture: gentle noise far
    below the threshold (so intervals grow) plus ramp-up excursions above
    it (so there are truth alerts to miss). Ramps matter — the paper's
    bound assumes violations are preceded by drift the statistics can
    see, which is also what real utilisation bursts look like.
    """
    rng = np.random.default_rng(seed * 10_007 + stream)
    values = threshold * 0.1 + rng.normal(0.0, threshold * 0.005, horizon)
    bursts = max(1, horizon // 2500)
    for b in range(bursts):
        start = int((b + 0.6) * horizon / (bursts + 1))
        ramp = np.linspace(0.0, 1.0, 20)
        shape = np.concatenate([ramp, np.ones(30), ramp[::-1]])
        shape = shape * (threshold * 1.5
                         + rng.normal(0.0, threshold * 0.02, shape.size))
        stop = min(start + shape.size, horizon)
        values[start:stop] = np.maximum(values[start:stop],
                                        shape[:stop - start])
    return values


def check_misdetection_bound(*, seed: int, err: float = 0.05,
                             streams: int = 4, horizon: int = 5000,
                             max_interval: int = 10,
                             estimator: str = "chebyshev",
                             ) -> InvariantResult:
    """Empirical mis-detection of the adaptive sampler must stay <= err.

    Runs :class:`~repro.core.adaptation.ViolationLikelihoodSampler` over
    seeded bursty traces and scores it against the periodic ground truth
    — the alert set the clairvoyant oracle baseline detects in full. The
    aggregate rate (missed truth alerts / total truth alerts across all
    streams) must not exceed the configured allowance.

    Args:
        seed: drives the trace generator.
        err: the error allowance under test.
        streams: independent traces to aggregate over.
        horizon: trace length in grid steps.
        max_interval: the task's maximum sampling interval.
        estimator: ``chebyshev`` (the paper's bound) or ``gaussian``.
    """
    threshold = 100.0
    config = AdaptationConfig(estimator=estimator)
    truth_total = 0
    detected_total = 0
    samples_total = 0
    steps_total = 0
    for s in range(streams):
        trace = _seeded_trace(seed, s, horizon, threshold)
        task = TaskSpec(threshold=threshold, error_allowance=err,
                        max_interval=max_interval)
        result = run_adaptive(trace, task, config,
                              record_intervals=False)
        truth_total += result.accuracy.truth_alerts
        detected_total += result.accuracy.detected_alerts
        samples_total += result.accuracy.samples_taken
        steps_total += result.accuracy.total_steps
    rate = (0.0 if truth_total == 0
            else 1.0 - detected_total / truth_total)
    passed = truth_total > 0 and rate <= err
    if truth_total == 0:
        detail = "trace generator produced no truth alerts (bad setup)"
    elif passed:
        detail = (f"mis-detection {rate:.4f} <= err {err} "
                  f"({detected_total}/{truth_total} alerts detected)")
    else:
        detail = (f"mis-detection {rate:.4f} exceeds err {err} "
                  f"({detected_total}/{truth_total} alerts detected)")
    return InvariantResult(
        name="misdetection_bound",
        passed=passed,
        detail=detail,
        metrics={
            "err": err,
            "estimator": estimator,
            "streams": streams,
            "horizon": horizon,
            "truth_alerts": truth_total,
            "detected_alerts": detected_total,
            "misdetection_rate": rate,
            "sampling_ratio": samples_total / steps_total,
        },
    )


# ---------------------------------------------------------------------------
# 2b. Quantile-task mis-detection (sketch substrate, full service path)


class LeakySketch(LogHistogram):
    """Planted mutant sketch: silently drops the tail into the zero bucket.

    Values above ``drop_above`` are counted (``count``/``total``/min/max
    all move, so the sketch looks healthy to casual inspection) but land
    in the exact-zero bucket instead of their log bucket. The tail mass —
    precisely where a quantile task's violation evidence lives — is
    starved, the exceedance statistic stays near zero through incidents,
    and :func:`check_quantile_misdetection` must fail. Planted through
    :meth:`~repro.core.substrates.QuantileEstimator.plant_sketch_factory`
    so the whole service path runs on the broken substrate.
    """

    def __init__(self, drop_above: float,
                 relative_error: float = DEFAULT_RELATIVE_ERROR):
        super().__init__(relative_error=relative_error)
        self.drop_above = float(drop_above)

    def record(self, value: float, count: int = 1) -> None:
        value = float(value)
        if value > self.drop_above:
            if count < 1:
                raise ValueError(f"count must be >= 1, got {count}")
            self.count += count
            self.total += value * count
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            self.zero_count += count  # the silent leak
            return
        super().record(value, count)


def _tail_trace(seed: int, stream: int, horizon: int,
                scale: float) -> np.ndarray:
    """A heavy-tail latency stream with tail-regression episodes.

    Lognormal base (calm p99 ~= 1.79 * scale) with multiplicative
    episodes that push the whole distribution — and hence the tail —
    up by ~1.8x with short ramps on both edges: the canonical
    bad-deploy shape where the p99 predicate fires but a mean-based
    one barely moves.
    """
    rng = np.random.default_rng(seed * 20_011 + stream)
    values = scale * rng.lognormal(0.0, 0.25, horizon)
    episodes = max(1, horizon // 1500)
    for b in range(episodes):
        start = int((b + 0.55) * horizon / (episodes + 1))
        length = 160
        stop = min(start + length, horizon)
        ramp = np.linspace(1.0, 1.8, 24)
        shape = np.concatenate([
            ramp, np.full(max(0, (stop - start) - 2 * ramp.size), 1.8),
            ramp[::-1]])[:stop - start]
        values[start:stop] *= shape
    return values


def check_quantile_misdetection(*, seed: int, err: float = 0.05,
                                streams: int = 4, horizon: int = 4000,
                                quantile: float = 0.99,
                                sketch_window: int = 64,
                                max_interval: int = 10,
                                sketch_factory: Any = None,
                                ) -> InvariantResult:
    """Quantile-task mis-detection through the full service path <= err.

    Drives :meth:`~repro.service.MonitoringService.add_quantile_task`
    over seeded heavy-tail streams with planted tail regressions. Ground
    truth comes from a *healthy* full-resolution
    :class:`~repro.core.substrates.QuantileEstimator` twin (the same
    construction the scenario compiler uses), so a broken sketch planted
    via ``sketch_factory`` diverges from truth instead of redefining it
    — which is exactly how the :class:`LeakySketch` mutant is caught.

    Args:
        seed: drives the trace generator.
        err: the error allowance under test.
        streams: independent traces to aggregate over.
        horizon: trace length in grid steps.
        quantile: the tracked quantile ``q``.
        sketch_window: substrate epoch length (sketch rotation).
        max_interval: the task's maximum sampling interval.
        sketch_factory: optional zero-arg sketch constructor planted into
            the *live* task's estimator (truth keeps the healthy sketch).
    """
    threshold = 90.0  # calm p99 ~= 71.7, episode p99 ~= 129
    scale = 40.0
    derived = 1.0 - quantile
    truth_total = 0
    detected_total = 0
    samples_total = 0
    steps_total = 0
    for s in range(streams):
        trace = _tail_trace(seed, s, horizon, scale)
        reference = QuantileEstimator(quantile, window=sketch_window)
        truth_steps = []
        for i, value in enumerate(trace):
            reference.update(float(value))
            if reference.exceedance(threshold) > derived:
                truth_steps.append(i)
        service = MonitoringService(AdaptationConfig())
        name = f"tail-{s}"
        service.add_quantile_task(name, threshold=threshold,
                                  quantile=quantile, error_allowance=err,
                                  max_interval=max_interval,
                                  sketch_window=sketch_window)
        if sketch_factory is not None:
            service._state(name).substrate.plant_sketch_factory(
                sketch_factory)
        for i, value in enumerate(trace):
            service.offer_fast(name, float(value), i)
        alert_steps = {a.time_index for a in service.alerts(name)}
        truth_total += len(truth_steps)
        detected_total += sum(1 for i in truth_steps if i in alert_steps)
        samples_total += service.samples_taken(name)
        steps_total += horizon
    rate = (0.0 if truth_total == 0
            else 1.0 - detected_total / truth_total)
    passed = truth_total > 0 and rate <= err
    if truth_total == 0:
        detail = "trace generator produced no truth alerts (bad setup)"
    elif passed:
        detail = (f"quantile mis-detection {rate:.4f} <= err {err} "
                  f"({detected_total}/{truth_total} points detected)")
    else:
        detail = (f"quantile mis-detection {rate:.4f} exceeds err {err} "
                  f"({detected_total}/{truth_total} points detected)")
    return InvariantResult(
        name="quantile_misdetection_bound",
        passed=passed,
        detail=detail,
        metrics={
            "err": err,
            "quantile": quantile,
            "streams": streams,
            "horizon": horizon,
            "sketch_window": sketch_window,
            "truth_points": truth_total,
            "detected_points": detected_total,
            "misdetection_rate": rate,
            "sampling_ratio": samples_total / steps_total,
            "planted_sketch": sketch_factory is not None,
        },
    )


# ---------------------------------------------------------------------------
# 3. Bit-identical restore


def snapshot_fingerprint(snapshot: Mapping[str, Any]) -> str:
    """Stable fingerprint of a service snapshot (canonical-JSON SHA-256).

    Two snapshots with equal fingerprints are byte-identical up to dict
    ordering — the equality the restore invariant is stated in. Alias of
    :func:`repro.runtime.checkpoint.state_fingerprint`, which the cluster
    migration protocol uses for its cutover equality check; the testkit
    name is kept so conformance reports and older call sites read the
    same either way.
    """
    return state_fingerprint(snapshot)


def check_restore_bit_identical(snapshot: Mapping[str, Any],
                                ) -> InvariantResult:
    """``restore(snapshot).snapshot()`` must reproduce ``snapshot`` exactly.

    The round-trip is the crash-recovery contract: a server restarted
    from a checkpoint must behave bit-identically to one that never
    stopped, which requires the serialised state to survive the
    serialise → rebuild → serialise cycle without any drift (float
    re-accumulation, field defaulting, ordering).
    """
    original = snapshot_fingerprint(snapshot)
    try:
        rebuilt = MonitoringService.restore(dict(snapshot)).snapshot()
    except Exception as exc:  # noqa: BLE001 - verdict, not control flow
        return InvariantResult(
            name="restore_bit_identical", passed=False,
            detail=f"restore raised {type(exc).__name__}: {exc}",
            metrics={"tasks": len(snapshot.get("tasks", []))})
    restored = snapshot_fingerprint(rebuilt)
    passed = restored == original
    return InvariantResult(
        name="restore_bit_identical",
        passed=passed,
        detail=("snapshot survives restore bit-identically" if passed else
                f"snapshot drifted through restore "
                f"({original[:12]} -> {restored[:12]})"),
        metrics={
            "tasks": len(snapshot.get("tasks", [])),
            "fingerprint": original,
        },
    )


# ---------------------------------------------------------------------------
# 4. No ACKed offer lost


def check_no_acked_loss(expected: Mapping[str, int],
                        actual: Mapping[str, int],
                        scope: str = "since scenario start",
                        ) -> InvariantResult:
    """Per-task applied-update ledgers must match exactly.

    Args:
        expected: updates per task that were ACKed (and not voided by a
            crash after the last durable checkpoint — the at-most-once
            contract scopes the guarantee to the checkpoint barrier).
        actual: updates per task visible in the recovered state.
        scope: human-readable description of the ledger's coverage,
            embedded in the verdict.
    """
    missing = {name: expected[name] - actual.get(name, 0)
               for name in expected if actual.get(name, 0) < expected[name]}
    extra = {name: actual[name] - expected.get(name, 0)
             for name in actual if actual[name] > expected.get(name, 0)}
    passed = not missing and not extra
    if passed:
        detail = (f"all {sum(expected.values())} ACKed updates "
                  f"accounted for ({scope})")
    elif missing:
        name = min(missing)
        detail = (f"task {name!r} lost {missing[name]} ACKed update(s) "
                  f"({scope})")
    else:
        name = min(extra)
        detail = (f"task {name!r} shows {extra[name]} more update(s) than "
                  f"were ACKed ({scope})")
    return InvariantResult(
        name="no_acked_offer_lost",
        passed=passed,
        detail=detail,
        metrics={
            "expected_total": sum(expected.values()),
            "actual_total": sum(actual.values()),
            "tasks_missing": len(missing),
            "tasks_extra": len(extra),
        },
    )
