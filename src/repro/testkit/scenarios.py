"""Chaos scenario matrix against the live runtime (DESIGN.md S28).

Each scenario boots a real :class:`~repro.runtime.server.RuntimeServer`
in-process (real sockets, real frames, real shard drain loops) with a
:class:`~repro.testkit.faults.PlanFaultHook` wired through every seam,
feeds it a seeded workload, and maintains a **shadow reference**: per-shard
:class:`~repro.service.MonitoringService` instances the driver advances
itself by *replaying the same deterministic fault schedule* the in-server
hook executes. Because every fault decision is a pure function of
``(seed, seam, index)``, the driver knows — without peeking at server
internals mid-flight — exactly which batches were shed, which frames
never arrived, which applies were faulted and which updates a crash
voided. At every barrier the server's state must match the shadow
bit-for-bit.

Determinism contract: a scenario's conformance report is a pure function
of ``(scenario, seed)`` — no timestamps, ports, paths, or
scheduling-dependent counters appear in it — so two runs of
``python -m repro.testkit --scenario crashy --seed 7`` emit byte-identical
reports, and any failure reproduces from the pair alone
(see docs/TESTING.md).

Time is virtual: the workload advances a
:class:`~repro.simulation.clock.SimulationClock` along the grid, crashes
happen at plan-chosen grid steps, and checkpoints are taken at fixed
barriers — no wall-clock sleeps anywhere.
"""

from __future__ import annotations

import argparse
import asyncio
import hashlib
import json
import logging
import pathlib
import sys
import tempfile
from typing import Any

import numpy as np

from repro.config import RuntimeConfig, task_from_config
from repro.core.adaptation import AdaptationConfig
from repro.core.coordination import AdaptiveAllocation
from repro.runtime.checkpoint import read_checkpoint
from repro.runtime.protocol import encode_frame, read_frame
from repro.runtime.server import RuntimeServer
from repro.runtime.shard import shard_for
from repro.service import MonitoringService
from repro.simulation.clock import SimulationClock
from repro.testkit.faults import (FRAME_CORRUPT, FRAME_DROP, FRAME_OK,
                                  FRAME_TRUNCATE, FaultPlan, FaultSpec,
                                  PlanFaultHook)
from repro.testkit.invariants import (InvariantResult,
                                      check_allowance_conservation,
                                      check_misdetection_bound,
                                      check_no_acked_loss,
                                      check_restore_bit_identical,
                                      snapshot_fingerprint)

__all__ = ["SCENARIOS", "run_scenario", "run_matrix", "render_report",
           "main"]

# Workload shape shared by every scenario (small enough for CI, long
# enough for adaptation, crashes and several checkpoint barriers).
TASKS = [f"task-{i:02d}" for i in range(8)]
THRESHOLD = 100.0
ERR = 0.05
MAX_INTERVAL = 8
SHARDS = 4
STEPS = 240
BARRIER_EVERY = 60
ADAPTATION = {"patience": 5, "min_samples": 5, "stats_restart": 100}

COUNTER_KEYS = ("offered", "applied", "consumed", "shed", "rejected",
                "alerts")
# Per-shard stats replies carry canonical counter keys only; the shadow
# predictions keep the compact short names internally.
CANONICAL_KEYS = {"offered": "updates_offered",
                  "applied": "updates_applied",
                  "consumed": "updates_consumed",
                  "shed": "updates_shed",
                  "rejected": "updates_rejected",
                  "alerts": "alerts_fired"}

SCENARIOS: dict[str, FaultSpec] = {
    # Fault-free baseline: the full pipeline and every barrier check must
    # pass with nothing injected (a harness that only passes under faults
    # is broken).
    "clean": FaultSpec(),
    # Shard apply faults + duplicated deliveries + two hard crashes with
    # restart-from-checkpoint.
    "crashy": FaultSpec(shard_error_rate=0.02,
                        duplicate_frame_rate=0.05,
                        crash_fractions=(0.35, 0.7)),
    # Damaged checkpoint writes (torn / corrupted / OSError) and one hard
    # crash — recovery must reject damaged files and fall back to the
    # newest valid checkpoint.
    "corrupt-checkpoint": FaultSpec(torn_checkpoint_rate=0.35,
                                    corrupt_checkpoint_rate=0.3,
                                    checkpoint_oserror_rate=0.25,
                                    crash_fractions=(0.5,)),
    # Lossy wire: dropped connections, truncated and corrupted frames,
    # duplicated deliveries, skewed collector clocks.
    "flaky-network": FaultSpec(drop_connection_rate=0.04,
                               truncate_frame_rate=0.03,
                               corrupt_frame_rate=0.03,
                               duplicate_frame_rate=0.08,
                               clock_skew_rate=0.05,
                               clock_skew_max=2),
    # Queue-saturation bursts: deterministic forced sheds exercise the
    # backpressure reply path without depending on event-loop timing.
    "overload": FaultSpec(force_shed_rate=0.12),
}


def scenario_trace(name: str, seed: int) -> np.ndarray:
    """The scenario's metric stream: ``(STEPS, len(TASKS))`` floats.

    Quiet band around 70 (so samplers grow their intervals) with three
    bursts crossing the 100.0 threshold (so alert streams, and therefore
    sampler statistics, are non-trivial in every phase of the run).
    """
    digest = hashlib.blake2b(f"{seed}:{name}".encode("utf-8"),
                             digest_size=8).digest()
    rng = np.random.default_rng(int.from_bytes(digest, "big"))
    values = rng.normal(70.0, 2.0, (STEPS, len(TASKS)))
    values[40:55] += 38.0
    values[150:165] += 38.0
    values[210:220] += 38.0
    return values


async def _roundtrip(port: int, payload: dict[str, Any],
                     ) -> dict[str, Any] | None:
    """One request on a fresh connection; ``None`` when the server closed
    the connection without replying (a dropped-frame fault)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_frame(payload))
        await writer.drain()
        return await read_frame(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def _group_by_shard(batch: list[list[Any]],
                    shards: int) -> dict[int, list[list[Any]]]:
    """Replica of the server's per-shard grouping (same iteration order)."""
    per_shard: dict[int, list[list[Any]]] = {}
    for update in batch:
        per_shard.setdefault(shard_for(str(update[0]), shards),
                             []).append(update)
    return per_shard


class _ScenarioDriver:
    """One scenario run: live server + fault hook + shadow reference."""

    def __init__(self, name: str, seed: int, workdir: pathlib.Path):
        self.name = name
        self.seed = seed
        self.spec = SCENARIOS[name]
        self.plan = FaultPlan(seed, self.spec)
        self.hook = PlanFaultHook(self.plan)
        self.hook.armed = False
        self.hook.checkpoint_armed = False
        self.ckpt_path = workdir / "checkpoint.json"
        self.adaptation = AdaptationConfig(**ADAPTATION)
        self.clock = SimulationClock()
        self.trace = scenario_trace(name, seed)
        # Shadow reference: per-shard services the driver advances itself.
        self.shadow: list[MonitoringService] = []
        self.predicted = [dict.fromkeys(COUNTER_KEYS, 0)
                          for _ in range(SHARDS)]
        for shard in range(SHARDS):
            service = MonitoringService(self.adaptation)
            self.shadow.append(service)
        # Driver-side replay counters (mirror the hook's seam counters).
        self._frame_i = 0
        self._dup_i = 0
        self._shed_i = 0
        self._apply_i = [0] * SHARDS
        # Newest durable good state: (shadow snapshots as JSON text,
        # predicted counters, checkpoint file bytes).
        self._stash: tuple[str, list[dict[str, int]], bytes] | None = None
        # Report accumulators.
        self.frames_sent = 0
        self.wire_mismatches: list[str] = []
        self.counter_mismatches: list[str] = []
        self.identity_mismatches: list[str] = []
        self.checkpoint_outcomes: list[str] = []
        self.barrier_checks = 0
        self.crash_restores = 0

    # -- shadow plumbing -------------------------------------------------

    def _attach_alert_hook(self, shard: int) -> Any:
        def hook(alert: Any, _shard: int = shard) -> None:
            self.predicted[_shard]["alerts"] += 1
        return hook

    def _register_shadow(self, entry: dict[str, Any]) -> None:
        spec = task_from_config(dict(entry), {})
        shard = shard_for(spec.name, SHARDS)
        self.shadow[shard].add_task(spec.name, spec,
                                    on_alert=self._attach_alert_hook(shard),
                                    window=1, config=self.adaptation)

    def _shadow_apply(self, shard: int, items: list[list[Any]]) -> None:
        """Replay one enqueued batch exactly as the shard drain loop will."""
        index = self._apply_i[shard]
        self._apply_i[shard] += 1
        counters = self.predicted[shard]
        if self.plan.shard_fault(shard, index):
            counters["rejected"] += len(items)
            return
        service = self.shadow[shard]
        for name, step, value in items:
            interval = service.offer_fast(str(name), float(value), int(step))
            counters["applied"] += 1
            if interval is not None:
                counters["consumed"] += 1

    def _dispatch_shadow(self, batch: list[list[Any]]) -> int:
        """Replay one decoded offer_batch dispatch; returns updates acked."""
        acked = 0
        for shard, items in _group_by_shard(batch, SHARDS).items():
            shed = self.plan.force_shed(self._shed_i)
            self._shed_i += 1
            if shed:
                self.predicted[shard]["shed"] += len(items)
            else:
                self.predicted[shard]["offered"] += len(items)
                acked += len(items)
                self._shadow_apply(shard, items)
        return acked

    def _shadow_fingerprints(self) -> list[str]:
        return [snapshot_fingerprint(s.snapshot()) for s in self.shadow]

    def _stash_good_state(self, file_bytes: bytes) -> None:
        snapshots = json.dumps([s.snapshot() for s in self.shadow],
                               sort_keys=True)
        self._stash = (snapshots,
                       [dict(c) for c in self.predicted],
                       file_bytes)

    def _rollback(self) -> None:
        assert self._stash is not None, "crash before any durable checkpoint"
        snapshots, counters, _ = self._stash
        self.shadow = []
        for shard, snapshot in enumerate(json.loads(snapshots)):
            self.shadow.append(MonitoringService.restore(
                snapshot,
                on_alert=lambda _n, _a, _s=shard:
                    self._attach_alert_hook(_s)(_a)))
        self.predicted = [dict(c) for c in counters]

    # -- server plumbing -------------------------------------------------

    def _new_server(self) -> RuntimeServer:
        config = RuntimeConfig(shards=SHARDS, port=0,
                               checkpoint_path=self.ckpt_path,
                               checkpoint_interval=3600.0)
        return RuntimeServer(config, adaptation=self.adaptation,
                             fault_hook=self.hook)

    async def _feed_step(self, server: RuntimeServer, step: int) -> None:
        self.clock.advance_to(float(step))
        batch = []
        for i, name in enumerate(TASKS):
            sent_step = max(0, step + self.plan.skew(i, step))
            batch.append([name, sent_step, float(self.trace[step, i])])
        # Predict the frame's fate, then send it through the real wire.
        # The hook stays armed until the next drain barrier: shard drain
        # loops apply batches asynchronously, and disarming mid-flight
        # would desynchronise apply-time fault decisions from the replay.
        self.hook.armed = True
        fate = self.plan.frame_fault(self._frame_i)
        self._frame_i += 1
        reply = await _roundtrip(server.tcp_port,
                                 {"op": "offer_batch", "updates": batch})
        self.frames_sent += 1
        observed = self._classify_reply(reply)
        if observed != fate:
            self.wire_mismatches.append(
                f"step {step}: predicted {fate}, observed {observed}")
            return
        if fate != FRAME_OK:
            return  # the frame never reached dispatch; nothing was acked
        acked = self._dispatch_shadow(batch)
        if self.plan.duplicate_offer(self._dup_i):
            self._dispatch_shadow(batch)
        self._dup_i += 1
        if reply is not None and reply.get("accepted") != acked:
            self.wire_mismatches.append(
                f"step {step}: server acked {reply.get('accepted')}, "
                f"shadow expected {acked}")

    @staticmethod
    def _classify_reply(reply: dict[str, Any] | None) -> str:
        if reply is None:
            return FRAME_DROP
        if reply.get("ok"):
            return FRAME_OK
        if reply.get("code") == "protocol":
            message = str(reply.get("error", ""))
            return (FRAME_TRUNCATE if "mid-frame" in message
                    else FRAME_CORRUPT)
        return "error"

    async def _barrier(self, server: RuntimeServer,
                       arm_checkpoint: bool) -> None:
        """Drain, audit counters + live bit-identity, take a checkpoint."""
        await server.drain()  # applies run while the hook is still armed
        self.hook.armed = False
        self.barrier_checks += 1
        # Live state must equal the shadow reference bit-for-bit.
        for shard, fingerprint in enumerate(self._shadow_fingerprints()):
            live = snapshot_fingerprint(
                server._workers[shard].service.snapshot())
            if live != fingerprint:
                self.identity_mismatches.append(
                    f"barrier {self.barrier_checks}: shard {shard} live "
                    f"state diverged from shadow")
        # Counter accounting must match the replayed schedule exactly.
        stats = await _roundtrip(server.tcp_port, {"op": "stats"})
        assert stats is not None and stats.get("ok"), stats
        for shard_stats, expected in zip(stats["shards"], self.predicted):
            actual = {key: shard_stats[CANONICAL_KEYS[key]]
                      for key in COUNTER_KEYS}
            if actual != expected:
                self.counter_mismatches.append(
                    f"barrier {self.barrier_checks}: shard "
                    f"{shard_stats['shard']} counters {actual} != "
                    f"predicted {expected}")
        await self._checkpoint(server, arm_checkpoint)

    async def _checkpoint(self, server: RuntimeServer,
                          arm_checkpoint: bool) -> None:
        self.hook.checkpoint_armed = arm_checkpoint
        reply = await _roundtrip(server.tcp_port, {"op": "checkpoint"})
        self.hook.checkpoint_armed = False
        if reply is None or not reply.get("ok"):
            # Injected write failure (OSError -> CheckpointError). The
            # connection must have survived to deliver the error reply;
            # the previous file is untouched.
            self.checkpoint_outcomes.append("write-error")
            ping = await _roundtrip(server.tcp_port, {"op": "ping"})
            if ping is None or not ping.get("ok"):
                self.identity_mismatches.append(
                    "server unreachable after failed checkpoint write")
            return
        try:
            state = read_checkpoint(self.ckpt_path)
        except Exception:  # noqa: BLE001 - CheckpointError et al.
            # Damaged file correctly rejected by the reader. Fall back to
            # the newest valid checkpoint, as an operator (or a keep-N
            # retention scheme) would.
            self.checkpoint_outcomes.append("rejected")
            if self._stash is not None:
                self.ckpt_path.write_bytes(self._stash[2])
            return
        self.checkpoint_outcomes.append("valid")
        # Durable bit-identity: what hit the disk equals the shadow.
        for shard, fingerprint in enumerate(self._shadow_fingerprints()):
            durable = snapshot_fingerprint(state["shards"][shard])
            if durable != fingerprint:
                self.identity_mismatches.append(
                    f"checkpoint {len(self.checkpoint_outcomes)}: shard "
                    f"{shard} durable state diverged from shadow")
        self._stash_good_state(self.ckpt_path.read_bytes())

    async def _crash_and_restart(self, server: RuntimeServer,
                                 ) -> RuntimeServer:
        """Hard crash; restart from the newest durable valid checkpoint."""
        # Quiesce the queues first so the fault schedule's apply counters
        # advance deterministically, then die without flushing.
        await server.drain()
        self.hook.armed = False
        await server.abort()
        self.crash_restores += 1
        self._rollback()  # everything after the last durable barrier is void
        restarted = self._new_server()
        await restarted.start()
        for shard, fingerprint in enumerate(self._shadow_fingerprints()):
            live = snapshot_fingerprint(
                restarted._workers[shard].service.snapshot())
            if live != fingerprint:
                self.identity_mismatches.append(
                    f"crash {self.crash_restores}: shard {shard} restored "
                    f"state diverged from rolled-back shadow")
        return restarted

    # -- the run ---------------------------------------------------------

    async def run(self) -> dict[str, Any]:
        server = self._new_server()
        await server.start()
        try:
            # Bootstrap: register every task (disarmed) on the wire and in
            # the shadow, then take a guaranteed-valid base checkpoint.
            for name in TASKS:
                entry = {"name": name, "threshold": THRESHOLD,
                         "error_allowance": ERR,
                         "max_interval": MAX_INTERVAL}
                reply = await _roundtrip(server.tcp_port,
                                         {"op": "register_task",
                                          "task": entry})
                assert reply is not None and reply.get("ok"), reply
                self._register_shadow(entry)
            await self._checkpoint(server, arm_checkpoint=False)

            crash_steps = set(self.plan.crash_steps(STEPS))
            barriers = set(range(BARRIER_EVERY, STEPS, BARRIER_EVERY))
            for step in range(STEPS):
                if step in barriers:
                    await self._barrier(server, arm_checkpoint=True)
                if step in crash_steps:
                    old = server
                    server = await self._crash_and_restart(old)
                await self._feed_step(server, step)

            # Final barrier: disarmed checkpoint so the closing state is
            # durable and valid, then score the invariants.
            await self._barrier(server, arm_checkpoint=False)
            ledger_expected, ledger_actual = \
                await self._collect_ledgers(server)
            final_state = read_checkpoint(self.ckpt_path)
            cold_mismatches = await self._cold_restore_check()
        finally:
            await server.shutdown()
        return self._build_report(final_state, ledger_expected,
                                  ledger_actual, cold_mismatches)

    async def _collect_ledgers(self, server: RuntimeServer,
                               ) -> tuple[dict[str, int], dict[str, int]]:
        expected: dict[str, int] = {}
        actual: dict[str, int] = {}
        for name in TASKS:
            shard = shard_for(name, SHARDS)
            expected[f"samples:{name}"] = self.shadow[shard].samples_taken(
                name)
            info = await _roundtrip(server.tcp_port,
                                    {"op": "task_info", "task": name})
            assert info is not None and info.get("ok"), info
            actual[f"samples:{name}"] = int(info["samples_taken"])
        stats = await _roundtrip(server.tcp_port, {"op": "stats"})
        assert stats is not None and stats.get("ok"), stats
        for shard_stats, predicted in zip(stats["shards"], self.predicted):
            shard = shard_stats["shard"]
            expected[f"applied:shard-{shard}"] = predicted["applied"]
            actual[f"applied:shard-{shard}"] = \
                int(shard_stats["updates_applied"])
        return expected, actual

    async def _cold_restore_check(self) -> list[str]:
        """Boot a pristine server from the final checkpoint and compare."""
        mismatches: list[str] = []
        cold = RuntimeServer(
            RuntimeConfig(shards=SHARDS, port=0,
                          checkpoint_path=self.ckpt_path,
                          checkpoint_interval=3600.0),
            adaptation=self.adaptation)
        await cold.start()
        try:
            for shard, fingerprint in enumerate(self._shadow_fingerprints()):
                live = snapshot_fingerprint(
                    cold._workers[shard].service.snapshot())
                if live != fingerprint:
                    mismatches.append(
                        f"cold restore: shard {shard} diverged from shadow")
        finally:
            await cold.shutdown()
        return mismatches

    def _build_report(self, final_state: dict[str, Any],
                      ledger_expected: dict[str, int],
                      ledger_actual: dict[str, int],
                      cold_mismatches: list[str]) -> dict[str, Any]:
        self.identity_mismatches.extend(cold_mismatches)
        roundtrip_failures = []
        for shard, snapshot in enumerate(final_state.get("shards", [])):
            verdict = check_restore_bit_identical(snapshot)
            if not verdict.passed:
                roundtrip_failures.append(f"shard {shard}: {verdict.detail}")
        identity_ok = not self.identity_mismatches and not roundtrip_failures
        identity = InvariantResult(
            name="restore_bit_identical",
            passed=identity_ok,
            detail=("live, durable, crash-restored and cold-restored state "
                    "all match the shadow bit-for-bit" if identity_ok else
                    (self.identity_mismatches + roundtrip_failures)[0]),
            metrics={
                "barrier_checks": self.barrier_checks,
                "crash_restores": self.crash_restores,
                "mismatches": len(self.identity_mismatches),
                "roundtrip_failures": len(roundtrip_failures),
            },
        )
        scope = ("ACKed and applied before the final drain barrier; "
                 "updates voided by a crash after the last durable "
                 "checkpoint excluded per the at-most-once contract")
        ledger = check_no_acked_loss(ledger_expected, ledger_actual,
                                     scope=scope)
        invariants = [
            check_allowance_conservation(AdaptiveAllocation(),
                                         seed=self.seed),
            check_misdetection_bound(seed=self.seed, err=ERR),
            identity,
            ledger,
        ]
        passed = (all(r.passed for r in invariants)
                  and not self.wire_mismatches
                  and not self.counter_mismatches)
        return {
            "scenario": self.name,
            "spec": self.spec.to_dict(),
            "workload": {
                "tasks": len(TASKS),
                "steps": STEPS,
                "shards": SHARDS,
                "barrier_every": BARRIER_EVERY,
                "threshold": THRESHOLD,
                "err": ERR,
                "max_interval": MAX_INTERVAL,
                "adaptation": dict(ADAPTATION),
                "virtual_clock_end": self.clock.now,
            },
            "injected": dict(self.hook.injected),
            "checkpoints": {
                "attempts": len(self.checkpoint_outcomes),
                "valid": self.checkpoint_outcomes.count("valid"),
                "rejected": self.checkpoint_outcomes.count("rejected"),
                "write_errors": self.checkpoint_outcomes.count("write-error"),
                "outcomes": list(self.checkpoint_outcomes),
            },
            "crashes": self.crash_restores,
            "wire": {
                "frames_sent": self.frames_sent,
                "mismatches": list(self.wire_mismatches),
            },
            "counters": {
                "match": not self.counter_mismatches,
                "mismatches": list(self.counter_mismatches),
            },
            "invariants": [r.to_dict() for r in invariants],
            "passed": passed,
        }


def run_scenario(name: str, seed: int) -> dict[str, Any]:
    """Run one scenario to completion; returns its report dict.

    Raises :class:`KeyError` for unknown scenario names (the valid names
    are the keys of :data:`SCENARIOS`).
    """
    if name not in SCENARIOS:
        raise KeyError(f"unknown scenario {name!r}; "
                       f"choose from {sorted(SCENARIOS)}")
    # Injected apply faults are *expected* here; the shard logger's
    # reject-and-continue tracebacks would drown the scenario output.
    shard_logger = logging.getLogger("repro.runtime.shard")
    previous_level = shard_logger.level
    shard_logger.setLevel(logging.CRITICAL)
    try:
        with tempfile.TemporaryDirectory(prefix="repro-testkit-") as workdir:
            driver = _ScenarioDriver(name, seed, pathlib.Path(workdir))
            return asyncio.run(driver.run())
    finally:
        shard_logger.setLevel(previous_level)


def run_matrix(names: list[str], seed: int) -> dict[str, Any]:
    """Run a list of scenarios and assemble the conformance report."""
    scenarios = [run_scenario(name, seed) for name in names]
    return {
        "testkit_report_version": 1,
        "seed": seed,
        "scenarios": scenarios,
        "passed": all(s["passed"] for s in scenarios),
    }


def render_report(report: dict[str, Any]) -> str:
    """Canonical byte-stable serialisation of a conformance report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.testkit",
        description="Deterministic chaos scenarios + paper-invariant "
                    "conformance for the live runtime.")
    parser.add_argument("--scenario", default="all",
                        choices=["all", *SCENARIOS],
                        help="scenario to run (default: the whole matrix)")
    parser.add_argument("--seed", type=int, default=7,
                        help="fault-schedule seed (default 7); a failure "
                             "reproduces from (scenario, seed) alone")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("testkit_report.json"),
                        help="conformance report path "
                             "(default testkit_report.json)")
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.testkit``)."""
    args = _build_parser().parse_args(argv)
    names = list(SCENARIOS) if args.scenario == "all" else [args.scenario]
    report = run_matrix(names, args.seed)
    args.out.write_text(render_report(report), encoding="utf-8")
    for scenario in report["scenarios"]:
        verdicts = ", ".join(
            f"{r['name']}={'ok' if r['passed'] else 'FAIL'}"
            for r in scenario["invariants"])
        status = "PASS" if scenario["passed"] else "FAIL"
        print(f"[testkit] {scenario['scenario']:<18} {status}  ({verdicts})",
              flush=True)
    print(f"[testkit] report written to {args.out} (seed {args.seed})",
          flush=True)
    if not report["passed"]:
        print("[testkit] FAILED: reproduce with "
              f"--scenario <name> --seed {args.seed}; see docs/TESTING.md",
              file=sys.stderr, flush=True)
        return 1
    return 0
