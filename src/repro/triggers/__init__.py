"""Live cross-shard correlated monitoring (paper SII-A at runtime scale).

The offline machinery in :mod:`repro.core.correlation` — detector,
planner, :class:`~repro.core.correlation.TriggeredSampler` — answers
"*which* cheap metric is a necessary condition of *which* expensive
violation". This package promotes the answer to a production feature
(DESIGN.md S32):

* :class:`~repro.triggers.miner.CorrelationMiner` consumes per-task
  metric streams (or decision-trace events) online, maintains bounded
  aligned histories, scores candidate (trigger, target) pairs with the
  batch :class:`~repro.core.correlation.CorrelationDetector`, and feeds
  the :class:`~repro.core.correlation.CorrelationPlanner` under a
  per-task accuracy-loss budget — with plan hysteresis so an installed
  rule is kept until its evidence genuinely decays, not re-derived (and
  re-levelled) on every call.
* :class:`~repro.triggers.channel.TriggerWatcher` turns the trigger
  task's raw value stream into clean arm/disarm *edges*: arm at the
  elevation level, disarm only below a hysteresis band, with a minimum
  hold between transitions — the events the coordinator trigger channel
  ships across shards and workers.
* :class:`~repro.triggers.plan.TriggerPlan` is the wire- and
  checkpoint-serializable description of one installed guard.

The runtime server and the cluster coordinator route the edges:
``trigger_install`` wires a plan across shards, a watcher on the trigger
task's shard emits edges, and the channel arms or disarms the target
task's sampler wherever its shard currently lives — surviving live
migration and worker failover because both the armed flag and the
watcher state ride the ordinary typed checkpoint state.
"""

from repro.triggers.channel import TriggerWatcher
from repro.triggers.miner import CorrelationMiner
from repro.triggers.plan import TriggerPlan

__all__ = ["CorrelationMiner", "TriggerPlan", "TriggerWatcher"]
