"""Turning a trigger metric's raw stream into clean arm/disarm edges.

The correlation planner gives one number — the elevation level — but a
metric hovering around that level would arm and disarm its target on
every other observation, and each transition is a cross-shard (possibly
cross-worker) message. :class:`TriggerWatcher` debounces the stream with
the classic two-threshold scheme: arm at the elevation level (``value >=
level``, matching the detector's elevation convention), disarm only once
the value falls *below a hysteresis band* under the level, and never
transition twice within ``min_hold`` steps. On any constant stream the
watcher transitions at most once — pinned by
``tests/properties/test_trigger_properties.py``.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["TriggerWatcher"]


class TriggerWatcher:
    """Debounced arm/disarm edge detector over a trigger value stream.

    The watcher starts *armed* — the same conservative default as the
    target's sampler, so a target is never suspended before its trigger
    has actually been observed below the band.

    Args:
        level: the elevation level (arm at ``value >= level``).
        hysteresis: relative width of the disarm band (disarm below
            ``level * (1 - hysteresis)`` for non-negative levels).
        min_hold: minimum steps between two transitions.
        armed: initial state (default True, conservatively elevated).
    """

    __slots__ = ("_level", "_hysteresis", "_min_hold", "_armed",
                 "_last_transition")

    def __init__(self, level: float, hysteresis: float = 0.1,
                 min_hold: int = 5, armed: bool = True):
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigurationError(
                f"hysteresis must be in [0, 1), got {hysteresis}")
        if min_hold < 0:
            raise ConfigurationError(
                f"min_hold must be >= 0, got {min_hold}")
        self._level = float(level)
        self._hysteresis = float(hysteresis)
        self._min_hold = int(min_hold)
        self._armed = bool(armed)
        self._last_transition: int | None = None

    @property
    def armed(self) -> bool:
        """Current debounced state."""
        return self._armed

    @property
    def level(self) -> float:
        """The arm threshold."""
        return self._level

    @property
    def disarm_level(self) -> float:
        """The value the stream must drop below to disarm."""
        if self._level >= 0.0:
            return self._level * (1.0 - self._hysteresis)
        return self._level * (1.0 + self._hysteresis)

    def observe(self, value: float, step: int) -> str | None:
        """Feed one trigger observation; return ``"arm"``, ``"disarm"``
        or ``None`` (no edge).

        Transitions are suppressed while ``min_hold`` steps have not
        elapsed since the previous one, so a noisy stream cannot flap the
        channel faster than the hold.
        """
        if self._armed:
            if value < self.disarm_level and self._hold_elapsed(step):
                self._armed = False
                self._last_transition = int(step)
                return "disarm"
        elif value >= self._level and self._hold_elapsed(step):
            self._armed = True
            self._last_transition = int(step)
            return "arm"
        return None

    def _hold_elapsed(self, step: int) -> bool:
        last = self._last_transition
        return last is None or int(step) - last >= self._min_hold

    def state_dict(self) -> dict[str, Any]:
        """JSON-able snapshot (carried in the owning task's checkpoint)."""
        return {
            "level": self._level,
            "hysteresis": self._hysteresis,
            "min_hold": self._min_hold,
            "armed": self._armed,
            "last_transition": self._last_transition,
        }

    @classmethod
    def from_state_dict(cls, state: dict[str, Any]) -> "TriggerWatcher":
        """Rebuild a watcher bit-identically from :meth:`state_dict`."""
        watcher = cls(float(state["level"]),
                      hysteresis=float(state["hysteresis"]),
                      min_hold=int(state["min_hold"]),
                      armed=bool(state["armed"]))
        last = state.get("last_transition")
        watcher._last_transition = None if last is None else int(last)
        return watcher
