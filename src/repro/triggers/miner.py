"""Online mining of correlation-trigger plans from live metric streams.

The batch :class:`~repro.core.correlation.CorrelationDetector` answers
"was this trigger elevated whenever that target violated" over two
aligned arrays; the planner turns scored pairs into rules. What neither
does is run *online*: a deployment has no aligned arrays, only streams —
decision-trace violation events, telemetry summaries, raw offers. The
:class:`CorrelationMiner` closes that gap with bounded per-task
histories and two deliberate properties:

* **Evidence is the batch detector's, exactly.** The miner never
  re-implements scoring: it buffers the trailing ``window`` values per
  task and hands the aligned tails to the detector, so mined evidence on
  a replayed history equals the batch answer on the same tail — pinned
  by ``tests/properties/test_trigger_properties.py``.
* **Plans have hysteresis.** An installed rule is a cross-shard wiring
  change; re-deriving it every cycle would drift its elevation level
  with every quantile wobble and flap targets between triggers. An
  active rule is therefore kept — level frozen — until its evidence
  decays below ``min_score - drop_margin`` (or its support vanishes),
  and a different trigger only takes over when it beats the incumbent's
  expected saving by ``improve_factor``.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable

import numpy as np

from repro.core.correlation import (CorrelationDetector, CorrelationEvidence,
                                    CorrelationPlanner, TaskProfile,
                                    TriggerRule)
from repro.exceptions import ConfigurationError, CorrelationError
from repro.triggers.plan import TriggerPlan
from repro.types import ThresholdDirection

__all__ = ["CorrelationMiner"]


class CorrelationMiner:
    """Incrementally mine (trigger, target) plans from per-task streams.

    Args:
        window: trailing values retained per task (the evidence window).
        min_score: minimum necessary-condition score for a new rule.
        loss_budget: per-task accuracy-loss budget — the planner rejects
            any rule whose estimated extra mis-detection exceeds it.
        suspend_interval: idle interval mined plans prescribe.
        drop_margin: an *active* rule survives until its refreshed score
            falls below ``min_score - drop_margin`` (plan hysteresis).
        improve_factor: a challenger rule for an already-guarded target
            must beat the incumbent's expected saving by this factor.
        hysteresis / min_hold: watcher debounce parameters stamped onto
            emitted :class:`~repro.triggers.plan.TriggerPlan` objects.
        detector: the scorer (a default-configured one when omitted).
    """

    def __init__(self, window: int = 512, min_score: float = 0.95,
                 loss_budget: float = 0.05, suspend_interval: int = 10,
                 drop_margin: float = 0.05, improve_factor: float = 1.2,
                 hysteresis: float = 0.1, min_hold: int = 5,
                 detector: CorrelationDetector | None = None):
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if drop_margin < 0.0:
            raise ConfigurationError(
                f"drop_margin must be >= 0, got {drop_margin}")
        if improve_factor < 1.0:
            raise ConfigurationError(
                f"improve_factor must be >= 1, got {improve_factor}")
        self._window = int(window)
        self._min_score = float(min_score)
        self._drop_margin = float(drop_margin)
        self._improve_factor = float(improve_factor)
        self._hysteresis = float(hysteresis)
        self._min_hold = int(min_hold)
        self._suspend_interval = int(suspend_interval)
        self._detector = detector or CorrelationDetector()
        self._planner = CorrelationPlanner(
            min_score=min_score, loss_budget=loss_budget,
            suspend_interval=suspend_interval, detector=self._detector)
        self._history: dict[str, deque[float]] = {}
        self._threshold: dict[str, float] = {}
        self._direction: dict[str, ThresholdDirection] = {}
        self._cost: dict[str, float] = {}
        self._active: dict[str, TriggerRule] = {}

    # -- stream ingestion ------------------------------------------------

    def add_task(self, name: str, threshold: float,
                 direction: ThresholdDirection | str = "upper",
                 cost: float = 1.0) -> None:
        """Declare a task the miner should track.

        Args:
            name: task name (must match the stream's task labels).
            threshold: the task's violation threshold.
            direction: violation side (enum or ``"upper"``/``"lower"``).
            cost: relative per-sample cost; only cheaper tasks may guard
                costlier ones.
        """
        if name in self._history:
            raise ConfigurationError(f"task {name!r} already mined")
        if cost <= 0.0:
            raise ConfigurationError(f"cost must be > 0, got {cost}")
        self._history[name] = deque(maxlen=self._window)
        self._threshold[name] = float(threshold)
        self._direction[name] = (direction
                                 if isinstance(direction, ThresholdDirection)
                                 else ThresholdDirection(direction))
        self._cost[name] = float(cost)

    def observe(self, name: str, value: float) -> None:
        """Append one metric observation to ``name``'s history."""
        self._history[name].append(float(value))

    def ingest_trace(self, events: Iterable[dict[str, Any]]) -> int:
        """Feed decision-trace/telemetry events; returns values ingested.

        Any event naming a tracked ``task`` and carrying a ``value`` (the
        runtime's ``violation`` events do, as do telemetry summaries
        shaped the same way) contributes one observation; everything else
        is ignored.
        """
        ingested = 0
        for event in events:
            task = event.get("task")
            data = event.get("data", event)
            value = data.get("value")
            if task in self._history and value is not None:
                self.observe(task, float(value))
                ingested += 1
        return ingested

    @property
    def task_names(self) -> list[str]:
        """Tracked task names, in registration order."""
        return list(self._history)

    def support(self, name: str) -> int:
        """Observations currently buffered for ``name``."""
        return len(self._history[name])

    # -- evidence & planning ---------------------------------------------

    def evidence(self, trigger: str, target: str) -> CorrelationEvidence:
        """Score ``(trigger, target)`` on the aligned trailing histories.

        Delegates to the batch detector over the last ``n`` values of
        each stream (``n`` = the shorter history), so the result is
        exactly what a batch analysis of the same tails would produce.

        Raises:
            CorrelationError: insufficient history or support.
        """
        trig, targ = self._aligned(trigger, target)
        return self._detector.analyze(trig, targ, self._threshold[target],
                                      self._direction[target])

    def _aligned(self, trigger: str,
                 target: str) -> tuple[np.ndarray, np.ndarray]:
        trig = self._history[trigger]
        targ = self._history[target]
        n = min(len(trig), len(targ))
        if n < 2:
            raise CorrelationError(
                f"histories too short to correlate ({n} aligned points)")
        trig_tail = np.fromiter(trig, dtype=float,
                                count=len(trig))[len(trig) - n:]
        targ_tail = np.fromiter(targ, dtype=float,
                                count=len(targ))[len(targ) - n:]
        return trig_tail, targ_tail

    def profiles(self) -> list[TaskProfile]:
        """Planner-ready profiles over the common aligned tail."""
        if not self._history:
            return []
        n = min(len(h) for h in self._history.values())
        if n < 2:
            return []
        return [
            TaskProfile(
                task_id=name,
                values=np.fromiter(hist, dtype=float,
                                   count=len(hist))[len(hist) - n:],
                threshold=self._threshold[name],
                cost_per_sample=self._cost[name],
                direction=self._direction[name],
            )
            for name, hist in self._history.items()
        ]

    def plan(self) -> list[TriggerRule]:
        """Re-plan with hysteresis; returns the active rules.

        Fresh rules come from the batch planner (which enforces the
        accuracy-loss budget); the active set then evolves conservatively
        as documented on the class.
        """
        fresh = {rule.target_id: rule
                 for rule in self._planner.plan(self.profiles())}
        active: dict[str, TriggerRule] = {}
        for target, incumbent in self._active.items():
            if self._still_valid(incumbent):
                challenger = fresh.get(target)
                if (challenger is not None
                        and challenger.trigger_id != incumbent.trigger_id
                        and challenger.expected_saving
                        >= self._improve_factor
                        * incumbent.expected_saving):
                    active[target] = challenger
                else:
                    active[target] = incumbent
            elif target in fresh:
                active[target] = fresh[target]
        for target, rule in fresh.items():
            active.setdefault(target, rule)
        self._active = active
        return sorted(active.values(), key=lambda r: r.target_id)

    def _still_valid(self, rule: TriggerRule) -> bool:
        """Does the incumbent's evidence still clear the decayed floor?"""
        try:
            ev = self.evidence(rule.trigger_id, rule.target_id)
        except CorrelationError:
            # No fresh violations in the window is not evidence against
            # the rule — the guarded regime is *supposed* to be calm.
            return True
        return (ev.necessary_condition_score
                >= self._min_score - self._drop_margin)

    def to_plans(self) -> list[TriggerPlan]:
        """The active rules as installable/serializable plans."""
        return [TriggerPlan.from_rule(rule,
                                      suspend_interval=self._suspend_interval,
                                      hysteresis=self._hysteresis,
                                      min_hold=self._min_hold)
                for rule in self.plan()]
