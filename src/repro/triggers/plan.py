"""The serializable description of one installed correlation guard."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.core.correlation import TriggerRule
from repro.exceptions import ConfigurationError

__all__ = ["TriggerPlan"]

_PLAN_KEYS = {"target", "trigger", "elevation_level", "suspend_interval",
              "hysteresis", "min_hold"}


@dataclass(frozen=True, slots=True)
class TriggerPlan:
    """One guard: ``target`` idles unless ``trigger`` is elevated.

    This is the unit the trigger channel installs, inspects, checkpoints
    and re-installs after failover — plain data, exact
    ``to_dict``/``from_dict`` round-trip, fail-closed on unknown keys.

    Attributes:
        target: the guarded (expensive) task's name.
        trigger: the cheap task whose elevation arms the target.
        elevation_level: trigger value at which the target arms.
        suspend_interval: idle interval (grid steps) while disarmed.
        hysteresis: relative band below ``elevation_level`` the trigger
            must leave before the target disarms (0.1 = 10% below).
        min_hold: minimum steps between arm/disarm transitions.
    """

    target: str
    trigger: str
    elevation_level: float
    suspend_interval: int = 10
    hysteresis: float = 0.1
    min_hold: int = 5

    def __post_init__(self) -> None:
        if not self.target or not self.trigger:
            raise ConfigurationError("plan needs target and trigger names")
        if self.target == self.trigger:
            raise ConfigurationError(
                f"task {self.target!r} cannot trigger itself")
        if self.suspend_interval < 2:
            raise ConfigurationError(
                f"suspend_interval must be >= 2, got {self.suspend_interval}")
        if not 0.0 <= self.hysteresis < 1.0:
            raise ConfigurationError(
                f"hysteresis must be in [0, 1), got {self.hysteresis}")
        if self.min_hold < 0:
            raise ConfigurationError(
                f"min_hold must be >= 0, got {self.min_hold}")

    @property
    def disarm_level(self) -> float:
        """The value the trigger must drop below to disarm the target."""
        if self.elevation_level >= 0.0:
            return self.elevation_level * (1.0 - self.hysteresis)
        return self.elevation_level * (1.0 + self.hysteresis)

    def to_dict(self) -> dict[str, Any]:
        """JSON-able form (the wire/checkpoint representation)."""
        return {
            "target": self.target,
            "trigger": self.trigger,
            "elevation_level": float(self.elevation_level),
            "suspend_interval": int(self.suspend_interval),
            "hysteresis": float(self.hysteresis),
            "min_hold": int(self.min_hold),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TriggerPlan":
        """Inverse of :meth:`to_dict`; unknown keys fail closed."""
        unknown = set(data) - _PLAN_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown trigger plan keys: {sorted(unknown)}")
        missing = {"target", "trigger", "elevation_level"} - set(data)
        if missing:
            raise ConfigurationError(
                f"trigger plan missing keys: {sorted(missing)}")
        return cls(
            target=str(data["target"]),
            trigger=str(data["trigger"]),
            elevation_level=float(data["elevation_level"]),
            suspend_interval=int(data.get("suspend_interval", 10)),
            hysteresis=float(data.get("hysteresis", 0.1)),
            min_hold=int(data.get("min_hold", 5)),
        )

    @classmethod
    def from_rule(cls, rule: TriggerRule, suspend_interval: int = 10,
                  hysteresis: float = 0.1, min_hold: int = 5,
                  ) -> "TriggerPlan":
        """Lift a planner :class:`~repro.core.correlation.TriggerRule`."""
        return cls(target=rule.target_id, trigger=rule.trigger_id,
                   elevation_level=rule.elevation_level,
                   suspend_interval=suspend_interval,
                   hysteresis=hysteresis, min_hold=min_hold)
