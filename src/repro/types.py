"""Common value types shared across the library.

These are deliberately small, immutable records: the core algorithms pass
them between layers (monitor -> coordinator -> experiment harness) without
any behaviour attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ThresholdDirection(enum.Enum):
    """Which side of the threshold constitutes a state violation.

    The paper only discusses upper thresholds (``v > T``); lower thresholds
    (``v < T``) are supported by negating values internally, which leaves
    every bound derivation unchanged.
    """

    UPPER = "upper"
    LOWER = "lower"

    def violated(self, value: float, threshold: float) -> bool:
        """Return True when ``value`` violates ``threshold`` on this side."""
        if self is ThresholdDirection.UPPER:
            return value > threshold
        return value < threshold

    def orient(self, value: float) -> float:
        """Map a value into the canonical upper-threshold frame.

        Violation-likelihood math is written for ``v > T``; for lower
        thresholds both the value and the threshold are negated so the same
        inequalities apply.
        """
        if self is ThresholdDirection.UPPER:
            return value
        return -value


@dataclass(frozen=True, slots=True)
class Sample:
    """One sampling operation's outcome.

    Attributes:
        time_index: grid position in units of the default interval ``Id``.
        value: the monitored state value observed by the sampling operation.
    """

    time_index: int
    value: float


@dataclass(frozen=True, slots=True)
class Alert:
    """A detected state violation.

    Attributes:
        time_index: grid position (units of ``Id``) at which the violation
            was observed.
        value: the violating state value.
        threshold: the threshold in force when the alert fired.
    """

    time_index: int
    value: float
    threshold: float


@dataclass(frozen=True, slots=True)
class LocalViolation:
    """A monitor-local threshold crossing reported to the coordinator."""

    monitor_id: int
    time_index: int
    value: float
    local_threshold: float


@dataclass(frozen=True, slots=True)
class GlobalPoll:
    """The coordinator's response to a local violation.

    The coordinator collects the current value from every monitor of the
    task and evaluates the global condition.

    Attributes:
        time_index: grid position of the poll.
        values: value collected from each monitor, ordered by monitor id.
        total: aggregate (sum) of ``values``.
        violated: whether the aggregate crossed the global threshold.
    """

    time_index: int
    values: tuple[float, ...]
    total: float
    violated: bool
