"""Synthetic datacenter workloads (DESIGN.md S11-S13).

Three domains mirror the paper's evaluation:

* network — netflow substrate + traffic-difference metric + SYN floods
  (:mod:`netflow`, :mod:`traffic`, :mod:`ddos`), default interval 15 s;
* system — 66-metric node performance dataset (:mod:`sysmetrics`),
  default interval 5 s;
* application — WorldCup-style web requests (:mod:`weblogs`), default
  interval 1 s.

:mod:`synthetic` provides the generic building blocks, :mod:`thresholds`
the selectivity-based threshold rule, :mod:`zipf` the skew utilities.
"""

from repro.workloads.base import MetricTrace, TraceGenerator, substream
from repro.workloads.ddos import SynFloodAttack, inject_attacks
from repro.workloads.io import load_traces, save_traces
from repro.workloads.netflow import (FlowRecord, NetflowConfig,
                                     NetflowGenerator, map_addresses_to_vms,
                                     window_packet_counts)
from repro.workloads.synthetic import (AR1Generator, CompositeGenerator,
                                       DiurnalGenerator, RandomWalkGenerator,
                                       RegimeSwitchGenerator,
                                       SpikeTrainGenerator)
from repro.workloads.sysmetrics import (SYSTEM_DEFAULT_INTERVAL,
                                        SYSTEM_METRICS, MetricSpec,
                                        SystemMetricsDataset)
from repro.workloads.thresholds import (PAPER_ERROR_ALLOWANCES,
                                        PAPER_SELECTIVITIES,
                                        threshold_for_selectivity,
                                        thresholds_for_violation_rates)
from repro.workloads.traffic import (DEFAULT_SYN_PROBABILITY,
                                     NETWORK_DEFAULT_INTERVAL,
                                     TrafficDifferenceGenerator,
                                     syn_ack_difference_from_flows)
from repro.workloads.weblogs import (APPLICATION_DEFAULT_INTERVAL,
                                     WebWorkloadGenerator)
from repro.workloads.zipf import (sample_zipf_ranks, zipf_hotspot_rates,
                                  zipf_rates, zipf_weights)

__all__ = [
    "APPLICATION_DEFAULT_INTERVAL",
    "AR1Generator",
    "CompositeGenerator",
    "DEFAULT_SYN_PROBABILITY",
    "DiurnalGenerator",
    "FlowRecord",
    "MetricSpec",
    "MetricTrace",
    "NETWORK_DEFAULT_INTERVAL",
    "NetflowConfig",
    "NetflowGenerator",
    "PAPER_ERROR_ALLOWANCES",
    "PAPER_SELECTIVITIES",
    "RandomWalkGenerator",
    "RegimeSwitchGenerator",
    "SpikeTrainGenerator",
    "SYSTEM_DEFAULT_INTERVAL",
    "SYSTEM_METRICS",
    "SynFloodAttack",
    "SystemMetricsDataset",
    "TraceGenerator",
    "TrafficDifferenceGenerator",
    "WebWorkloadGenerator",
    "inject_attacks",
    "load_traces",
    "map_addresses_to_vms",
    "sample_zipf_ranks",
    "save_traces",
    "substream",
    "syn_ack_difference_from_flows",
    "threshold_for_selectivity",
    "thresholds_for_violation_rates",
    "window_packet_counts",
    "zipf_hotspot_rates",
    "zipf_rates",
    "zipf_weights",
]
