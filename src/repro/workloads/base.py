"""Workload substrate: metric traces and trace generators.

All monitoring experiments operate on a :class:`MetricTrace` — one value per
default-interval grid point, plus identity metadata. Generators are seeded
explicitly so every figure is reproducible bit-for-bit.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import TraceError

__all__ = ["MetricTrace", "TraceGenerator", "substream"]


def substream(master_seed: int, namespace: str,
              *parts: object) -> np.random.Generator:
    """Independent generator keyed by ``(master_seed, namespace, parts)``.

    Workload generators take their randomness as an explicit
    ``numpy.random.Generator`` so a scenario is a pure function of its
    seed; this helper is the canonical way to derive one substream per
    entity (task, overlay, VM). The key is folded through SHA-256 —
    stable across processes, platforms and ``PYTHONHASHSEED`` — and parts
    are type-tagged, so ``1`` and ``"1"`` key different streams. Adding
    or removing one entity never reshuffles any sibling's stream.
    """
    digest = hashlib.sha256()
    digest.update(namespace.encode("utf-8"))
    for part in parts:
        digest.update(b"\x00")
        digest.update(type(part).__name__.encode("utf-8"))
        digest.update(b"\x01")
        digest.update(repr(part).encode("utf-8"))
    raw = digest.digest()
    words = [int.from_bytes(raw[i:i + 4], "big") for i in range(0, 16, 4)]
    seed = int(master_seed) & 0xFFFFFFFFFFFFFFFF
    return np.random.default_rng(np.random.SeedSequence([seed] + words))


@dataclass(frozen=True)
class MetricTrace:
    """A full-resolution monitored metric stream.

    Attributes:
        values: one value per default-interval grid point.
        default_interval: ``Id`` in seconds (metadata; the grid is index
            based).
        name: metric identifier, e.g. ``"vm-17/traffic-diff"``.
        unit: human-readable unit, e.g. ``"packets/15s"``.
    """

    values: np.ndarray
    default_interval: float = 1.0
    name: str = ""
    unit: str = ""

    def __post_init__(self) -> None:
        arr = np.asarray(self.values, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise TraceError(
                f"trace must be non-empty and 1-d, got shape {arr.shape}")
        if not np.isfinite(arr).all():
            raise TraceError(f"trace {self.name!r} has non-finite values")
        if self.default_interval <= 0:
            raise TraceError(
                f"default_interval must be > 0, got {self.default_interval}")
        object.__setattr__(self, "values", arr)

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span covered by the trace."""
        return float(self.values.size) * self.default_interval

    def percentile_threshold(self, selectivity_percent: float) -> float:
        """Threshold that makes ``selectivity_percent`` of points violate.

        The paper sets a task's threshold to the ``(100 - k)``-th percentile
        of the metric so that a fraction ``k`` of grid points raise alerts
        (SV-A "Thresholds").
        """
        if not 0.0 < selectivity_percent < 100.0:
            raise TraceError(
                "selectivity must be in (0, 100), got "
                f"{selectivity_percent}")
        return float(np.percentile(self.values,
                                   100.0 - selectivity_percent))


class TraceGenerator:
    """Base class for synthetic metric-stream generators.

    Subclasses implement :meth:`generate` to return raw values; the base
    class wraps them into :class:`MetricTrace` objects via :meth:`trace`.
    """

    #: default ``Id`` metadata attached to produced traces, seconds
    default_interval: float = 1.0
    #: unit metadata attached to produced traces
    unit: str = ""

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        """Produce ``n_steps`` metric values (subclass responsibility)."""
        raise NotImplementedError

    def trace(self, n_steps: int, rng: np.random.Generator,
              name: str = "") -> MetricTrace:
        """Generate and wrap values into a :class:`MetricTrace`."""
        if n_steps < 1:
            raise TraceError(f"n_steps must be >= 1, got {n_steps}")
        values = self.generate(n_steps, rng)
        return MetricTrace(values=values,
                           default_interval=self.default_interval,
                           name=name or type(self).__name__,
                           unit=self.unit)
