"""SYN-flood attack injection (paper SII-A motivating scenario).

A SYN flood sends a growing stream of SYN packets that the victim cannot
answer, so the traffic difference ``rho = Pi - Po`` ramps up and stays high
for the attack's duration. Attacks are injected *additively* into either a
ready-made ``rho`` trace or the raw incoming packet counts of the netflow
substrate, so both generation paths can carry the same ground-truth events.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, TraceError

__all__ = ["SynFloodAttack", "inject_attacks"]


@dataclass(frozen=True, slots=True)
class SynFloodAttack:
    """One SYN-flood episode.

    Attributes:
        start: grid step at which the flood begins.
        ramp_steps: steps over which the flood ramps linearly to its peak
            (real floods grow as the botnet spins up).
        hold_steps: steps the flood holds at peak intensity.
        decay_steps: steps over which it ramps back down (mitigation /
            attacker giving up).
        peak_syn_rate: SYN packets per window at the peak.
    """

    start: int
    peak_syn_rate: float
    ramp_steps: int = 8
    hold_steps: int = 40
    decay_steps: int = 8

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"start must be >= 0, got {self.start}")
        if self.peak_syn_rate <= 0:
            raise ConfigurationError(
                f"peak_syn_rate must be > 0, got {self.peak_syn_rate}")
        if self.ramp_steps < 1 or self.hold_steps < 0 or self.decay_steps < 1:
            raise ConfigurationError(
                "need ramp_steps >= 1, hold_steps >= 0, decay_steps >= 1; "
                f"got {self.ramp_steps}, {self.hold_steps}, "
                f"{self.decay_steps}")

    @property
    def duration(self) -> int:
        """Total footprint of the episode in grid steps."""
        return self.ramp_steps + self.hold_steps + self.decay_steps

    def profile(self, n_steps: int) -> np.ndarray:
        """The flood's additive SYN-excess profile over an n-step grid.

        Zero outside the episode; linear ramp up, flat hold, linear ramp
        down inside. Episodes extending past the grid are truncated.
        """
        if n_steps < 1:
            raise TraceError(f"n_steps must be >= 1, got {n_steps}")
        out = np.zeros(n_steps)
        up = np.linspace(0.0, 1.0, self.ramp_steps, endpoint=False)
        # The decay starts strictly below the peak and ends at zero.
        down = np.linspace(1.0, 0.0, self.decay_steps + 1)[1:]
        shape = np.concatenate([up, np.ones(self.hold_steps), down])
        end = min(self.start + shape.size, n_steps)
        if end > self.start:
            out[self.start:end] = shape[:end - self.start] * self.peak_syn_rate
        return out

    def alert_window(self) -> tuple[int, int]:
        """Grid span ``[start, start + duration)`` the attack occupies."""
        return self.start, self.start + self.duration


def inject_attacks(values: np.ndarray,
                   attacks: list[SynFloodAttack]) -> np.ndarray:
    """Return a copy of ``values`` with the attacks' SYN excess added.

    Args:
        values: a ``rho`` trace (or incoming SYN counts) on the grid.
        attacks: episodes to add.
    """
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise TraceError(f"expected a 1-d trace, got shape {arr.shape}")
    out = arr.copy()
    for attack in attacks:
        out += attack.profile(arr.size)
    return out
