"""Trace persistence: save/load metric traces as ``.npz`` archives.

Experiment artifacts need to outlive the process — a regenerated figure
should be checkable against the exact streams it ran on, and expensive
flow-level generations are worth caching. The format is a plain numpy
archive with a small metadata header, so nothing but numpy is required to
read it back (or to load it from another toolchain).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.exceptions import TraceError
from repro.workloads.base import MetricTrace

__all__ = ["save_traces", "load_traces", "FORMAT_VERSION"]

FORMAT_VERSION = 1
"""On-disk format version (bumped on incompatible changes)."""


def save_traces(path: str | pathlib.Path,
                traces: list[MetricTrace]) -> None:
    """Write traces to an ``.npz`` archive.

    Args:
        path: target file (conventionally ``*.npz``).
        traces: traces to store; names need not be unique (order is
            preserved and used as the key).
    """
    if not traces:
        raise TraceError("nothing to save")
    arrays: dict[str, np.ndarray] = {}
    meta = []
    for i, trace in enumerate(traces):
        arrays[f"trace_{i}"] = trace.values
        meta.append({
            "name": trace.name,
            "unit": trace.unit,
            "default_interval": trace.default_interval,
        })
    header = {"format_version": FORMAT_VERSION, "count": len(traces),
              "traces": meta}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_traces(path: str | pathlib.Path) -> list[MetricTrace]:
    """Read traces back from an archive written by :func:`save_traces`.

    Raises:
        TraceError: when the file is missing, malformed, or from an
            incompatible format version.
    """
    target = pathlib.Path(path)
    if not target.exists():
        raise TraceError(f"no such trace archive: {target}")
    try:
        with np.load(target) as archive:
            if "__meta__" not in archive:
                raise TraceError(f"{target} is not a trace archive")
            header = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
            if header.get("format_version") != FORMAT_VERSION:
                raise TraceError(
                    f"unsupported trace archive version "
                    f"{header.get('format_version')!r}")
            traces = []
            for i, meta in enumerate(header["traces"]):
                traces.append(MetricTrace(
                    values=archive[f"trace_{i}"],
                    default_interval=float(meta["default_interval"]),
                    name=str(meta["name"]),
                    unit=str(meta["unit"]),
                ))
            return traces
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        raise TraceError(f"corrupt trace archive {target}: {exc}") from exc
