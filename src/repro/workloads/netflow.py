"""Internet2-style netflow substrate (paper SV-A, network level).

The paper replays ~42M netflow v5 records from the Internet2 backbone into
the testbed: every recorded flow from address A to B becomes packets from
the VM that A maps to toward the VM that B maps to, each packet carries a
SYN flag with probability ``p = 0.1``, and flow volume is scaled down by
the number of addresses mapped to a VM (``F/n`` packets for a recorded
flow of ``F``).

Without the proprietary archive we generate flows with the same structural
properties: Poisson arrivals with diurnal rate modulation, heavy-tailed
(log-normal) flow sizes, and Zipf-distributed endpoint popularity. The
uniform address->VM mapping and the volume scaling are implemented exactly
as described.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.zipf import zipf_weights

__all__ = ["FlowRecord", "NetflowConfig", "NetflowGenerator",
           "map_addresses_to_vms", "window_packet_counts"]


@dataclass(frozen=True, slots=True)
class FlowRecord:
    """One synthetic netflow v5-style record.

    Attributes:
        src / dst: address indices in the synthetic address space.
        start: flow start time in seconds from trace origin.
        packets: total packets in the flow (already volume-scaled).
        bytes: total bytes (packets x a size draw; informational).
        protocol: IP protocol number (6 = TCP for all generated flows).
    """

    src: int
    dst: int
    start: float
    packets: int
    bytes: int
    protocol: int = 6


@dataclass(frozen=True, slots=True)
class NetflowConfig:
    """Parameters of the synthetic netflow generator.

    Attributes:
        num_addresses: size of the synthetic address space.
        flows_per_second: mean flow arrival rate at the diurnal peak.
        diurnal_period: diurnal cycle length in seconds.
        diurnal_depth: fraction of the rate removed at the diurnal trough
            (0 = flat, 0.8 = nights run at 20% of peak).
        mean_log_packets / sigma_log_packets: log-normal flow-size params.
        popularity_skew: Zipf exponent of endpoint popularity.
        mean_packet_bytes: average packet size for the bytes field.
        addresses_per_vm: ``n`` in the paper's ``F/n`` volume scaling.
    """

    num_addresses: int = 4096
    flows_per_second: float = 40.0
    diurnal_period: float = 86_400.0
    diurnal_depth: float = 0.7
    mean_log_packets: float = 3.0
    sigma_log_packets: float = 1.2
    popularity_skew: float = 1.0
    mean_packet_bytes: int = 600
    addresses_per_vm: int = 8

    def __post_init__(self) -> None:
        if self.num_addresses < 2:
            raise ConfigurationError(
                f"num_addresses must be >= 2, got {self.num_addresses}")
        if self.flows_per_second <= 0:
            raise ConfigurationError(
                f"flows_per_second must be > 0, got {self.flows_per_second}")
        if not 0.0 <= self.diurnal_depth < 1.0:
            raise ConfigurationError(
                f"diurnal_depth must be in [0, 1), got {self.diurnal_depth}")
        if self.addresses_per_vm < 1:
            raise ConfigurationError(
                f"addresses_per_vm must be >= 1, got "
                f"{self.addresses_per_vm}")


class NetflowGenerator:
    """Generate synthetic flow records over a time horizon.

    Flows arrive as an inhomogeneous Poisson process (diurnal rate), source
    and destination addresses are drawn from a Zipf popularity law, and
    per-flow packet counts are log-normal — the canonical heavy-tailed
    shape of backbone traffic.
    """

    def __init__(self, config: NetflowConfig | None = None):
        self._config = config or NetflowConfig()
        self._popularity = zipf_weights(self._config.num_addresses,
                                        self._config.popularity_skew)

    @property
    def config(self) -> NetflowConfig:
        """The generator's configuration."""
        return self._config

    def _rate_at(self, t: float) -> float:
        cfg = self._config
        phase = 2.0 * np.pi * t / cfg.diurnal_period
        # Peaks at mid-cycle; trough removes `diurnal_depth` of the rate.
        modulation = 1.0 - cfg.diurnal_depth * 0.5 * (1.0 + np.cos(phase))
        return cfg.flows_per_second * modulation

    def generate(self, duration: float,
                 rng: np.random.Generator) -> list[FlowRecord]:
        """Generate all flows in ``[0, duration)`` seconds.

        Uses thinning against the peak rate so the diurnal modulation is
        exact; returns flows sorted by start time.
        """
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration}")
        cfg = self._config
        expected = cfg.flows_per_second * duration
        count = rng.poisson(expected)
        starts = np.sort(rng.uniform(0.0, duration, count))
        keep = rng.random(count) < np.array(
            [self._rate_at(t) for t in starts]) / cfg.flows_per_second
        starts = starts[keep]
        n = starts.size

        srcs = rng.choice(cfg.num_addresses, size=n, p=self._popularity)
        dsts = rng.choice(cfg.num_addresses, size=n, p=self._popularity)
        # Self-flows are meaningless; redirect to the next address.
        same = srcs == dsts
        dsts[same] = (dsts[same] + 1) % cfg.num_addresses

        raw_packets = rng.lognormal(cfg.mean_log_packets,
                                    cfg.sigma_log_packets, n)
        # Paper: only F/n packets are generated for a flow of F packets,
        # where n is the number of addresses mapped to a VM.
        packets = np.maximum(
            1, (raw_packets / cfg.addresses_per_vm).astype(int))
        sizes = packets * cfg.mean_packet_bytes

        return [FlowRecord(src=int(srcs[i]), dst=int(dsts[i]),
                           start=float(starts[i]), packets=int(packets[i]),
                           bytes=int(sizes[i]))
                for i in range(n)]


def map_addresses_to_vms(num_addresses: int, num_vms: int) -> np.ndarray:
    """Uniformly map synthetic addresses onto VM indices (paper SV-A).

    Address ``a`` maps to VM ``a % num_vms`` — every VM receives the same
    number of addresses (up to one).
    """
    if num_addresses < 1 or num_vms < 1:
        raise ConfigurationError(
            f"need positive sizes, got {num_addresses}, {num_vms}")
    return np.arange(num_addresses) % num_vms


def window_packet_counts(flows: list[FlowRecord], vm_of_address: np.ndarray,
                         num_vms: int, window_seconds: float,
                         num_windows: int) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate flows into per-VM, per-window packet counts.

    Each flow's packets are attributed to the window containing its start
    time: ``outgoing[vm, w]`` counts packets sent by ``vm`` in window ``w``
    and ``incoming[vm, w]`` packets received.

    Returns:
        ``(incoming, outgoing)`` integer arrays of shape
        ``(num_vms, num_windows)``.
    """
    if window_seconds <= 0 or num_windows < 1:
        raise ConfigurationError(
            f"bad window spec: {window_seconds}s x {num_windows}")
    incoming = np.zeros((num_vms, num_windows), dtype=np.int64)
    outgoing = np.zeros((num_vms, num_windows), dtype=np.int64)
    for flow in flows:
        w = int(flow.start / window_seconds)
        if not 0 <= w < num_windows:
            continue
        src_vm = int(vm_of_address[flow.src])
        dst_vm = int(vm_of_address[flow.dst])
        outgoing[src_vm, w] += flow.packets
        incoming[dst_vm, w] += flow.packets
    return incoming, outgoing
