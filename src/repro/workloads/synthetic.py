"""General-purpose synthetic metric-stream generators.

Building blocks shared by the domain workloads (network, system,
application): autoregressive noise, diurnal modulation, random spikes, and
composition. Each generator is a :class:`~repro.workloads.base.TraceGenerator`
and takes its randomness from an explicit ``numpy`` generator.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.base import TraceGenerator

__all__ = [
    "RandomWalkGenerator",
    "AR1Generator",
    "DiurnalGenerator",
    "SpikeTrainGenerator",
    "CompositeGenerator",
    "RegimeSwitchGenerator",
]


class RandomWalkGenerator(TraceGenerator):
    """A reflected random walk: ``x_t = clip(x_{t-1} + N(drift, sigma))``.

    Args:
        sigma: per-step standard deviation.
        drift: per-step mean change.
        start: initial value.
        lo / hi: reflective clamp bounds (``None`` disables a side).
    """

    def __init__(self, sigma: float = 1.0, drift: float = 0.0,
                 start: float = 0.0, lo: float | None = None,
                 hi: float | None = None):
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        if lo is not None and hi is not None and lo >= hi:
            raise ConfigurationError(f"lo must be < hi, got {lo} >= {hi}")
        self._sigma = sigma
        self._drift = drift
        self._start = start
        self._lo = lo
        self._hi = hi

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        steps = rng.normal(self._drift, self._sigma, n_steps)
        values = self._start + np.cumsum(steps)
        if self._lo is not None or self._hi is not None:
            values = np.clip(values, self._lo, self._hi)
        return values


class AR1Generator(TraceGenerator):
    """Mean-reverting AR(1): ``x_t = mean + phi*(x_{t-1} - mean) + noise``.

    Args:
        mean: long-run level.
        phi: persistence in [0, 1); higher means smoother.
        sigma: innovation standard deviation.
    """

    def __init__(self, mean: float = 0.0, phi: float = 0.9,
                 sigma: float = 1.0):
        if not 0.0 <= phi < 1.0:
            raise ConfigurationError(f"phi must be in [0, 1), got {phi}")
        if sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
        self._mean = mean
        self._phi = phi
        self._sigma = sigma

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        noise = rng.normal(0.0, self._sigma, n_steps)
        values = np.empty(n_steps)
        x = 0.0
        phi = self._phi
        for i in range(n_steps):
            x = phi * x + noise[i]
            values[i] = x
        return values + self._mean


class DiurnalGenerator(TraceGenerator):
    """A day-night sinusoid: ``amp * (1 + sin(2*pi*(t/period + phase)))/2``.

    Produces values in ``[floor, floor + amp]``; ``period`` is expressed in
    grid steps so any default interval works.
    """

    def __init__(self, period: int, amplitude: float = 1.0,
                 floor: float = 0.0, phase: float = 0.0):
        if period < 2:
            raise ConfigurationError(f"period must be >= 2, got {period}")
        if amplitude < 0:
            raise ConfigurationError(
                f"amplitude must be >= 0, got {amplitude}")
        self._period = period
        self._amplitude = amplitude
        self._floor = floor
        self._phase = phase

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(n_steps, dtype=float)
        wave = (1.0 + np.sin(2.0 * np.pi * (t / self._period + self._phase)))
        return self._floor + 0.5 * self._amplitude * wave


class SpikeTrainGenerator(TraceGenerator):
    """Rare spikes with ramp-up/ramp-down shoulders on a zero baseline.

    Spike starts arrive as a Bernoulli process; each spike ramps linearly to
    a log-normal peak, holds, then decays. This is the generic "anomaly"
    shape (DDoS ramps, flash crowds, load bursts): monitored values are
    mostly quiet with occasional large excursions, which is exactly the
    regime where violation-likelihood sampling saves cost.

    Args:
        spike_prob: per-step probability that a new spike starts.
        peak_mean / peak_sigma: parameters of the log-normal peak height.
        ramp_steps: steps to ramp from 0 to peak (and back down).
        hold_steps: steps the spike holds at its peak.
    """

    def __init__(self, spike_prob: float = 0.001, peak_mean: float = 4.0,
                 peak_sigma: float = 0.5, ramp_steps: int = 10,
                 hold_steps: int = 10):
        if not 0.0 <= spike_prob <= 1.0:
            raise ConfigurationError(
                f"spike_prob must be in [0, 1], got {spike_prob}")
        if ramp_steps < 1 or hold_steps < 0:
            raise ConfigurationError(
                f"need ramp_steps >= 1 and hold_steps >= 0, got "
                f"{ramp_steps}, {hold_steps}")
        self._spike_prob = spike_prob
        self._peak_mean = peak_mean
        self._peak_sigma = peak_sigma
        self._ramp = ramp_steps
        self._hold = hold_steps

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        values = np.zeros(n_steps)
        starts = np.flatnonzero(rng.random(n_steps) < self._spike_prob)
        up = np.linspace(0.0, 1.0, self._ramp, endpoint=False)
        shape = np.concatenate([up, np.ones(self._hold), up[::-1]])
        for s in starts:
            peak = rng.lognormal(self._peak_mean, self._peak_sigma)
            end = min(int(s) + shape.size, n_steps)
            seg = shape[:end - int(s)] * peak
            # Jitter the plateau so spikes never produce runs of exactly
            # equal values (strict thresholds would degenerate on ties).
            seg *= rng.normal(1.0, 0.04, seg.size)
            # Overlapping spikes stack via max, not sum: concurrent
            # anomalies do not double the observed magnitude.
            values[int(s):end] = np.maximum(values[int(s):end], seg)
        return values


class CompositeGenerator(TraceGenerator):
    """Pointwise sum of component generators (each with its own RNG draw)."""

    def __init__(self, components: list[TraceGenerator]):
        if not components:
            raise ConfigurationError("need at least one component")
        self._components = list(components)

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        total = np.zeros(n_steps)
        for component in self._components:
            total += component.generate(n_steps, rng)
        return total


class RegimeSwitchGenerator(TraceGenerator):
    """Two-state Markov switching between a quiet and a busy generator.

    Args:
        quiet / busy: generators for the two regimes.
        p_enter_busy: per-step probability of switching quiet -> busy.
        p_exit_busy: per-step probability of switching busy -> quiet.
    """

    def __init__(self, quiet: TraceGenerator, busy: TraceGenerator,
                 p_enter_busy: float = 0.002, p_exit_busy: float = 0.02):
        for name, p in (("p_enter_busy", p_enter_busy),
                        ("p_exit_busy", p_exit_busy)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self._quiet = quiet
        self._busy = busy
        self._p_enter = p_enter_busy
        self._p_exit = p_exit_busy

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        quiet_values = self._quiet.generate(n_steps, rng)
        busy_values = self._busy.generate(n_steps, rng)
        flips = rng.random(n_steps)
        busy = False
        out = np.empty(n_steps)
        for i in range(n_steps):
            if busy:
                if flips[i] < self._p_exit:
                    busy = False
            elif flips[i] < self._p_enter:
                busy = True
            out[i] = busy_values[i] if busy else quiet_values[i]
        return out
