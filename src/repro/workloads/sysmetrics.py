"""System-level performance metric dataset (paper SV-A, system level).

The paper ports a production performance dataset (Zhao et al., ICAC'09)
containing values for 66 OS-level metrics — CPU, memory, vmstat, disk and
network usage — onto its 800 VMs, with a 5-second default sampling
interval. That dataset is not publicly distributable, so
:class:`SystemMetricsDataset` synthesises it: the full 66-metric catalogue
is modelled with per-metric dynamics (mean-reverting level, diurnal load
swing, utilisation bounds, bursty spikes) and every ``(node, metric)``
stream is reproducible from the dataset seed alone.

System metrics are noticeably *less stable between samples* than off-peak
network traffic — the property the paper uses to explain why Fig. 5(b)
saves less than Fig. 5(a) — which the catalogue encodes through higher
relative innovation noise.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.base import MetricTrace

__all__ = ["MetricSpec", "SYSTEM_METRICS", "SystemMetricsDataset",
           "SYSTEM_DEFAULT_INTERVAL"]

SYSTEM_DEFAULT_INTERVAL = 5.0
"""Default sampling interval of system tasks, seconds (paper SV-A)."""


@dataclass(frozen=True, slots=True)
class MetricSpec:
    """Dynamics of one catalogue metric.

    Attributes:
        name: metric identifier (``cpu_user_pct``, ``vm_cs``, ...).
        lo / hi: hard value bounds (percentages clip at [0, 100], rates
            at [0, +large]).
        phi: AR(1) persistence of the fluctuating component.
        noise_frac: innovation std as a fraction of the value range.
        diurnal_frac: diurnal swing amplitude as a fraction of the range.
        spike_prob: per-step probability of a load spike.
        spike_frac: spike magnitude as a fraction of the range.
    """

    name: str
    lo: float
    hi: float
    phi: float = 0.9
    noise_frac: float = 0.01
    diurnal_frac: float = 0.15
    spike_prob: float = 0.0015
    spike_frac: float = 0.35


def _pct(name: str, **kw: float) -> MetricSpec:
    return MetricSpec(name=name, lo=0.0, hi=100.0, **kw)


def _rate(name: str, hi: float, **kw: float) -> MetricSpec:
    return MetricSpec(name=name, lo=0.0, hi=hi, **kw)


SYSTEM_METRICS: tuple[MetricSpec, ...] = (
    # --- CPU (6) ---
    _pct("cpu_user_pct", phi=0.9, noise_frac=0.012, diurnal_frac=0.25),
    _pct("cpu_system_pct", phi=0.85, noise_frac=0.008),
    _pct("cpu_idle_pct", phi=0.9, noise_frac=0.012, diurnal_frac=0.25),
    _pct("cpu_iowait_pct", phi=0.75, noise_frac=0.015, spike_prob=0.004),
    _pct("cpu_nice_pct", phi=0.9, noise_frac=0.004, diurnal_frac=0.05),
    _pct("cpu_steal_pct", phi=0.7, noise_frac=0.006, spike_prob=0.003),
    # --- load (5) ---
    _rate("load_1m", 64.0, phi=0.92, noise_frac=0.012, spike_prob=0.003),
    _rate("load_5m", 64.0, phi=0.97, noise_frac=0.006),
    _rate("load_15m", 64.0, phi=0.99, noise_frac=0.003),
    _rate("runnable_tasks", 128.0, phi=0.75, noise_frac=0.015),
    _rate("blocked_tasks", 32.0, phi=0.6, noise_frac=0.015,
          spike_prob=0.004),
    # --- memory (9) ---
    _pct("mem_used_pct", phi=0.995, noise_frac=0.003, diurnal_frac=0.1),
    _rate("mem_free_mb", 12288.0, phi=0.995, noise_frac=0.004),
    _rate("mem_cached_mb", 8192.0, phi=0.99, noise_frac=0.004),
    _rate("mem_buffers_mb", 2048.0, phi=0.99, noise_frac=0.004),
    _pct("swap_used_pct", phi=0.998, noise_frac=0.002, spike_prob=0.001),
    _rate("swap_in_rate", 5000.0, phi=0.5, noise_frac=0.015,
          spike_prob=0.005),
    _rate("swap_out_rate", 5000.0, phi=0.5, noise_frac=0.015,
          spike_prob=0.005),
    _rate("page_faults_per_s", 50000.0, phi=0.75, noise_frac=0.015),
    _rate("major_faults_per_s", 2000.0, phi=0.6, noise_frac=0.012,
          spike_prob=0.004),
    # --- vmstat (8) ---
    _rate("vm_r", 64.0, phi=0.7, noise_frac=0.018),
    _rate("vm_b", 32.0, phi=0.6, noise_frac=0.015),
    _rate("vm_si", 4096.0, phi=0.5, noise_frac=0.012, spike_prob=0.004),
    _rate("vm_so", 4096.0, phi=0.5, noise_frac=0.012, spike_prob=0.004),
    _rate("vm_bi_kbps", 200000.0, phi=0.75, noise_frac=0.015),
    _rate("vm_bo_kbps", 200000.0, phi=0.75, noise_frac=0.015),
    _rate("vm_interrupts_per_s", 100000.0, phi=0.85, noise_frac=0.01),
    _rate("vm_cs_per_s", 200000.0, phi=0.85, noise_frac=0.01),
    # --- disk (8) ---
    _pct("disk_used_pct", phi=0.999, noise_frac=0.0008, diurnal_frac=0.02,
         spike_prob=0.0),
    _rate("disk_read_kbps", 500000.0, phi=0.75, noise_frac=0.015,
          spike_prob=0.003),
    _rate("disk_write_kbps", 500000.0, phi=0.75, noise_frac=0.015,
          spike_prob=0.003),
    _rate("disk_read_iops", 20000.0, phi=0.75, noise_frac=0.015),
    _rate("disk_write_iops", 20000.0, phi=0.75, noise_frac=0.015),
    _rate("disk_await_ms", 500.0, phi=0.65, noise_frac=0.015,
          spike_prob=0.004),
    _pct("disk_util_pct", phi=0.8, noise_frac=0.015),
    _pct("inode_used_pct", phi=0.999, noise_frac=0.0008, spike_prob=0.0),
    # --- network (10) ---
    _rate("net_rx_kbps", 1000000.0, phi=0.9, noise_frac=0.01,
          diurnal_frac=0.3),
    _rate("net_tx_kbps", 1000000.0, phi=0.9, noise_frac=0.01,
          diurnal_frac=0.3),
    _rate("net_rx_pkts_per_s", 500000.0, phi=0.9, noise_frac=0.01,
          diurnal_frac=0.3),
    _rate("net_tx_pkts_per_s", 500000.0, phi=0.9, noise_frac=0.01,
          diurnal_frac=0.3),
    _rate("net_rx_errs_per_s", 100.0, phi=0.4, noise_frac=0.008,
          spike_prob=0.005),
    _rate("net_tx_errs_per_s", 100.0, phi=0.4, noise_frac=0.008,
          spike_prob=0.005),
    _rate("net_drops_per_s", 1000.0, phi=0.5, noise_frac=0.01,
          spike_prob=0.005),
    _rate("tcp_connections", 20000.0, phi=0.97, noise_frac=0.006,
          diurnal_frac=0.3),
    _rate("tcp_retrans_per_s", 2000.0, phi=0.6, noise_frac=0.012,
          spike_prob=0.005),
    _rate("udp_dgrams_per_s", 100000.0, phi=0.85, noise_frac=0.01),
    # --- processes (5) ---
    _rate("procs_total", 2048.0, phi=0.99, noise_frac=0.003),
    _rate("procs_running", 64.0, phi=0.7, noise_frac=0.015),
    _rate("procs_zombie", 16.0, phi=0.85, noise_frac=0.005,
          spike_prob=0.002),
    _rate("threads_total", 16384.0, phi=0.99, noise_frac=0.003),
    _rate("open_files", 65536.0, phi=0.98, noise_frac=0.005),
    # --- I/O subsystem (3) ---
    _rate("nfs_ops_per_s", 50000.0, phi=0.8, noise_frac=0.012),
    _rate("io_queue_len", 64.0, phi=0.65, noise_frac=0.015,
          spike_prob=0.004),
    _rate("io_svc_time_ms", 200.0, phi=0.65, noise_frac=0.012),
    # --- kernel (2) ---
    _rate("interrupts_per_s", 200000.0, phi=0.85, noise_frac=0.01),
    _rate("softirq_per_s", 100000.0, phi=0.85, noise_frac=0.01),
    # --- application & platform (10) ---
    _pct("gc_time_pct", phi=0.75, noise_frac=0.012, spike_prob=0.004),
    _pct("heap_used_pct", phi=0.98, noise_frac=0.005, diurnal_frac=0.1),
    _rate("rpc_latency_ms", 2000.0, phi=0.8, noise_frac=0.012,
          spike_prob=0.004),
    _rate("rpc_qps", 50000.0, phi=0.92, noise_frac=0.01,
          diurnal_frac=0.35),
    _pct("cache_hit_pct", phi=0.97, noise_frac=0.004),
    _rate("log_lines_per_s", 10000.0, phi=0.85, noise_frac=0.012,
          spike_prob=0.004),
    _rate("temperature_c", 95.0, phi=0.997, noise_frac=0.0012,
          diurnal_frac=0.08, spike_prob=0.0005),
    _rate("fan_rpm", 12000.0, phi=0.995, noise_frac=0.002,
          diurnal_frac=0.08),
    _rate("power_watts", 400.0, phi=0.98, noise_frac=0.004,
          diurnal_frac=0.2),
    _rate("clock_skew_ms", 50.0, phi=0.92, noise_frac=0.006),
)

_METRICS_BY_NAME = {spec.name: spec for spec in SYSTEM_METRICS}

assert len(SYSTEM_METRICS) == 66, "catalogue must match the paper's 66"
assert len(_METRICS_BY_NAME) == 66, "metric names must be unique"


class SystemMetricsDataset:
    """Deterministic synthetic replacement for the ICAC'09 dataset.

    Every ``(node, metric)`` stream is generated from a seed derived from
    ``(dataset seed, node id, metric name)``, so monitors on different VMs
    see different but reproducible data and repeated queries for the same
    stream agree.

    Args:
        num_nodes: how many nodes (VMs) the dataset covers.
        seed: dataset master seed.
        diurnal_period: diurnal cycle in grid steps (default: one day of
            5-second samples).
    """

    def __init__(self, num_nodes: int, seed: int = 0,
                 diurnal_period: int = 17_280):
        if num_nodes < 1:
            raise ConfigurationError(
                f"num_nodes must be >= 1, got {num_nodes}")
        if diurnal_period < 2:
            raise ConfigurationError(
                f"diurnal_period must be >= 2, got {diurnal_period}")
        self._num_nodes = num_nodes
        self._seed = seed
        self._diurnal_period = diurnal_period

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by the dataset."""
        return self._num_nodes

    @staticmethod
    def metric_names() -> list[str]:
        """All 66 catalogue metric names."""
        return [spec.name for spec in SYSTEM_METRICS]

    @staticmethod
    def spec(metric: str) -> MetricSpec:
        """Look up a catalogue metric's dynamics."""
        try:
            return _METRICS_BY_NAME[metric]
        except KeyError:
            raise ConfigurationError(
                f"unknown metric {metric!r}; see metric_names()") from None

    def _rng_for(self, node: int, metric: str) -> np.random.Generator:
        digest = zlib.crc32(metric.encode("utf-8"))
        seq = np.random.SeedSequence([self._seed, node, digest])
        return np.random.default_rng(seq)

    def generate(self, node: int, metric: str, n_steps: int) -> np.ndarray:
        """Raw values for one node/metric stream.

        Args:
            node: node index in ``[0, num_nodes)``.
            metric: catalogue metric name.
            n_steps: stream length in 5-second grid steps.
        """
        if not 0 <= node < self._num_nodes:
            raise ConfigurationError(
                f"node {node} out of range [0, {self._num_nodes})")
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        spec = self.spec(metric)
        rng = self._rng_for(node, metric)
        span = spec.hi - spec.lo

        # Keep the baseline low enough that baseline + diurnal swing +
        # spike headroom rarely saturates the upper bound: a stream
        # pinned at ``hi`` has no usable strict threshold (its high
        # percentiles all equal the bound).
        baseline_hi = max(0.15, 0.85 - spec.spike_frac - spec.diurnal_frac)
        baseline = spec.lo + span * rng.uniform(0.1, baseline_hi)
        phase = rng.uniform(0.0, 1.0)
        t = np.arange(n_steps, dtype=float)
        diurnal = (spec.diurnal_frac * span * 0.5
                   * (1.0 + np.sin(2.0 * np.pi
                                   * (t / self._diurnal_period + phase))))

        noise = rng.normal(0.0, spec.noise_frac * span, n_steps)
        ar = np.empty(n_steps)
        x = 0.0
        for i in range(n_steps):
            x = spec.phi * x + noise[i]
            ar[i] = x

        values = baseline + diurnal + ar
        if spec.spike_prob > 0.0:
            starts = np.flatnonzero(rng.random(n_steps) < spec.spike_prob)
            if starts.size:
                ramp = np.linspace(0.0, 1.0, 6, endpoint=False)
                shape = np.concatenate([ramp, np.ones(12), ramp[::-1]])
                # Overlapping spikes merge via max rather than summing:
                # concurrent load bursts do not double the observed
                # magnitude, and stacking would pin bounded metrics at
                # their ceiling (killing strict percentile thresholds).
                spikes = np.zeros(n_steps)
                for s in starts:
                    magnitude = spec.spike_frac * span * rng.uniform(0.4, 1.0)
                    end = min(int(s) + shape.size, n_steps)
                    seg = shape[:end - int(s)] * magnitude
                    seg *= rng.normal(1.0, 0.04, seg.size)
                    spikes[int(s):end] = np.maximum(spikes[int(s):end], seg)
                values += spikes
        return np.clip(values, spec.lo, spec.hi)

    def trace(self, node: int, metric: str, n_steps: int) -> MetricTrace:
        """Stream wrapped as a :class:`MetricTrace` with identity metadata."""
        return MetricTrace(
            values=self.generate(node, metric, n_steps),
            default_interval=SYSTEM_DEFAULT_INTERVAL,
            name=f"node-{node}/{metric}",
            unit="%" if metric.endswith("_pct") else "",
        )
