"""Selectivity-based threshold assignment (paper SV-A "Thresholds").

The evaluation datasets carry no violation labels, so the paper derives
each task's threshold from the *alert selectivity* ``k``: the threshold is
the ``(100 - k)``-th percentile of the metric's values, making a fraction
``k`` of grid points violate. Small ``k`` models rare-alert tasks (the
common case: one alert per hour at a 15-second interval is k ~ 0.42%).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.types import ThresholdDirection

__all__ = ["threshold_for_selectivity", "thresholds_for_violation_rates",
           "PAPER_SELECTIVITIES", "PAPER_ERROR_ALLOWANCES"]

PAPER_SELECTIVITIES = (6.4, 3.2, 1.6, 0.8, 0.4, 0.2, 0.1)
"""Alert selectivities ``k`` (percent) swept in Fig. 5 (series)."""

PAPER_ERROR_ALLOWANCES = (0.002, 0.004, 0.008, 0.016, 0.032)
"""Error allowances swept on the x-axis of Figs. 5-7."""


def threshold_for_selectivity(values: np.ndarray, selectivity_percent: float,
                              direction: ThresholdDirection = ThresholdDirection.UPPER,
                              ) -> float:
    """Threshold making ``selectivity_percent`` of the values violate.

    For an upper threshold this is the ``(100 - k)``-th percentile; for a
    lower threshold, the ``k``-th.
    """
    if not 0.0 < selectivity_percent < 100.0:
        raise ConfigurationError(
            f"selectivity must be in (0, 100), got {selectivity_percent}")
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise TraceError(f"expected a non-empty 1-d trace, got {arr.shape}")
    if direction is ThresholdDirection.UPPER:
        return float(np.percentile(arr, 100.0 - selectivity_percent))
    return float(np.percentile(arr, selectivity_percent))


def thresholds_for_violation_rates(traces: list[np.ndarray],
                                   rates_percent: np.ndarray,
                                   ) -> list[float]:
    """Per-trace thresholds hitting the requested local violation rates.

    Fig. 8 assigns each monitor a local threshold such that its local
    violation rate follows a Zipf distribution: monitor ``i`` violates on
    ``rates_percent[i]`` percent of its grid points.

    Args:
        traces: one full-resolution trace per monitor.
        rates_percent: target violation rate (percent) per monitor; values
            are clipped into (0, 50] to keep thresholds meaningful.
    """
    rates = np.asarray(rates_percent, dtype=float)
    if len(traces) != rates.size:
        raise ConfigurationError(
            f"{rates.size} rates for {len(traces)} traces")
    clipped = np.clip(rates, 1e-4, 50.0)
    return [threshold_for_selectivity(trace, float(rate))
            for trace, rate in zip(traces, clipped)]
