"""Traffic-difference metric ``rho = Pi - Po`` (paper SII-A, SV-A).

The network monitoring tasks watch, per VM and per 15-second window, the
difference between incoming packets with the SYN flag set (``Pi``) and
outgoing packets with SYN+ACK set (``Po``). Benign traffic keeps the two
nearly balanced (every accepted SYN is answered), so ``rho`` hovers near a
small positive residue; SYN floods and other asymmetric events drive it up.

Two paths produce ``rho`` traces:

* :func:`syn_ack_difference_from_flows` — the faithful path: takes per-VM
  window packet counts from the netflow substrate and applies the paper's
  flag model (every packet carries SYN with probability ``p = 0.1``; the
  flag probability cancels out of ``rho``'s expectation).
* :class:`TrafficDifferenceGenerator` — the fast path used by the large
  Fig. 5(a) sweeps: generates the per-window handshake process directly
  (diurnal Poisson volume, incomplete-handshake residue, rare asymmetric
  bursts) without materialising individual flows.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.base import MetricTrace, TraceGenerator

__all__ = [
    "DEFAULT_SYN_PROBABILITY",
    "NETWORK_DEFAULT_INTERVAL",
    "syn_ack_difference_from_flows",
    "TrafficDifferenceGenerator",
]

DEFAULT_SYN_PROBABILITY = 0.1
"""SYN-flag probability per packet (paper SV-A: ``p = 0.1``)."""

NETWORK_DEFAULT_INTERVAL = 15.0
"""Default sampling interval of network tasks, seconds (paper SV-A)."""


def syn_ack_difference_from_flows(incoming: np.ndarray, outgoing: np.ndarray,
                                  rng: np.random.Generator,
                                  syn_probability: float = DEFAULT_SYN_PROBABILITY,
                                  ) -> np.ndarray:
    """Per-window ``rho`` for one VM from its raw packet counts.

    ``Pi ~ Binomial(incoming, p)`` and ``Po ~ Binomial(outgoing, p)``: each
    packet carries the relevant flag with probability ``p``. The expectation
    of ``rho = Pi - Po`` is ``p * (incoming - outgoing)`` — independent of
    ``p`` up to scale, as the paper notes.

    Args:
        incoming: packets received per window.
        outgoing: packets sent per window.
        rng: randomness source for the flag draws.
        syn_probability: the flag probability ``p``.

    Returns:
        Float array of ``rho`` values, one per window.
    """
    if not 0.0 < syn_probability <= 1.0:
        raise ConfigurationError(
            f"syn_probability must be in (0, 1], got {syn_probability}")
    inc = np.asarray(incoming)
    out = np.asarray(outgoing)
    if inc.shape != out.shape or inc.ndim != 1:
        raise TraceError(
            f"misaligned counts: {inc.shape} vs {out.shape}")
    if (inc < 0).any() or (out < 0).any():
        raise TraceError("packet counts must be non-negative")
    p_in = rng.binomial(inc.astype(np.int64), syn_probability)
    p_out = rng.binomial(out.astype(np.int64), syn_probability)
    return (p_in - p_out).astype(float)


class TrafficDifferenceGenerator(TraceGenerator):
    """Direct generator of per-VM ``rho`` traces.

    Per window the model draws the number of handshakes ``h`` from a
    diurnally modulated Poisson process; ``Po`` answers a fraction
    ``completion_rate`` of them, so benign ``rho`` is the small
    incomplete-handshake residue plus cross-window jitter. Rare asymmetric
    bursts (scanning, flood precursors, and — when injected via
    :mod:`repro.workloads.ddos` — actual attacks) add one-way SYN volume.

    The resulting stream is quiet most of the time with occasional large
    excursions — the regime the paper's thresholds (high percentiles of
    ``rho``) are drawn from.

    Args:
        base_handshakes: mean handshakes per window at the diurnal peak.
        diurnal_depth: fraction of volume removed at the trough.
        diurnal_period: cycle length in grid steps (default: one day of
            15-second windows).
        completion_rate: fraction of SYNs answered within the window.
        burst_prob: per-step probability that an asymmetric burst starts.
        burst_log_peak / burst_log_sigma: log-normal burst peak parameters
            (in packets of one-way SYN excess).
        burst_ramp / burst_hold: burst shape in steps.
        phase: diurnal phase offset in [0, 1) (gives VMs distinct clocks).
    """

    default_interval = NETWORK_DEFAULT_INTERVAL
    unit = "packets/15s"

    def __init__(self, base_handshakes: float = 2000.0,
                 diurnal_depth: float = 0.85, diurnal_period: int = 5760,
                 completion_rate: float = 0.999,
                 burst_prob: float = 0.002, burst_log_peak: float = 5.5,
                 burst_log_sigma: float = 0.9, burst_ramp: int = 12,
                 burst_hold: int = 20, phase: float = 0.0):
        if base_handshakes <= 0:
            raise ConfigurationError(
                f"base_handshakes must be > 0, got {base_handshakes}")
        if not 0.0 <= diurnal_depth < 1.0:
            raise ConfigurationError(
                f"diurnal_depth must be in [0, 1), got {diurnal_depth}")
        if diurnal_period < 2:
            raise ConfigurationError(
                f"diurnal_period must be >= 2, got {diurnal_period}")
        if not 0.0 < completion_rate <= 1.0:
            raise ConfigurationError(
                f"completion_rate must be in (0, 1], got {completion_rate}")
        if not 0.0 <= burst_prob <= 1.0:
            raise ConfigurationError(
                f"burst_prob must be in [0, 1], got {burst_prob}")
        if burst_ramp < 1 or burst_hold < 0:
            raise ConfigurationError(
                f"bad burst shape: ramp={burst_ramp}, hold={burst_hold}")
        self._base = base_handshakes
        self._depth = diurnal_depth
        self._period = diurnal_period
        self._completion = completion_rate
        self._burst_prob = burst_prob
        self._burst_log_peak = burst_log_peak
        self._burst_log_sigma = burst_log_sigma
        self._burst_ramp = burst_ramp
        self._burst_hold = burst_hold
        self._phase = phase

    #: mean data packets carried per handshake (used for packet volumes)
    PACKETS_PER_HANDSHAKE = 10.0

    def generate_with_volume(self, n_steps: int, rng: np.random.Generator,
                             ) -> tuple[np.ndarray, np.ndarray]:
        """Generate ``(rho, packets)`` — the metric plus raw packet volume.

        ``packets[w]`` is the total number of packets the VM's monitor must
        capture and inspect in window ``w`` (handshakes plus data packets);
        the Dom0 CPU cost model consumes it. Burst/flood SYN excess counts
        toward the volume as well.
        """
        rho, handshakes = self._generate_internal(n_steps, rng)
        data = rng.poisson(handshakes * self.PACKETS_PER_HANDSHAKE)
        packets = handshakes + data + np.maximum(rho, 0.0).astype(np.int64)
        return rho, packets.astype(np.int64)

    def generate(self, n_steps: int, rng: np.random.Generator) -> np.ndarray:
        rho, _ = self._generate_internal(n_steps, rng)
        return rho

    def _generate_internal(self, n_steps: int, rng: np.random.Generator,
                           ) -> tuple[np.ndarray, np.ndarray]:
        t = np.arange(n_steps, dtype=float)
        cycle = 2.0 * np.pi * (t / self._period + self._phase)
        lam = self._base * (1.0 - self._depth * 0.5 * (1.0 + np.cos(cycle)))
        handshakes = rng.poisson(lam)
        answered = rng.binomial(handshakes, self._completion)
        rho = (handshakes - answered).astype(float)

        # Cross-window jitter: some SYN-ACKs answer the previous window's
        # SYNs, shifting a little symmetric mass between windows.
        jitter = rng.normal(0.0, np.sqrt(np.maximum(lam, 1.0)) * 0.015)
        rho += jitter

        # Asymmetric bursts: one-way SYN excess with ramp/hold/ramp shape.
        starts = np.flatnonzero(rng.random(n_steps) < self._burst_prob)
        if starts.size:
            up = np.linspace(0.0, 1.0, self._burst_ramp, endpoint=False)
            shape = np.concatenate([up, np.ones(self._burst_hold), up[::-1]])
            for s in starts:
                peak = rng.lognormal(self._burst_log_peak,
                                     self._burst_log_sigma)
                end = min(int(s) + shape.size, n_steps)
                seg = shape[:end - int(s)] * peak
                # Packet counts fluctuate even at a flood's plateau.
                seg *= rng.normal(1.0, 0.04, seg.size)
                # Bursts dominate the background residue rather than
                # stacking on it: the flood's SYN excess is the signal.
                rho[int(s):end] = np.maximum(rho[int(s):end], seg)
        return rho, handshakes

    def trace_for_vm(self, vm_id: int, n_steps: int,
                     rng: np.random.Generator) -> MetricTrace:
        """Named per-VM trace convenience wrapper."""
        return self.trace(n_steps, rng, name=f"vm-{vm_id}/traffic-diff")
