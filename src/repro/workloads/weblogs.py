"""Application-level web workload (paper SV-A, application level).

The paper replays >1 billion HTTP requests from the 1998 World Cup web
site (30 servers); application tasks monitor the access rate of individual
objects (videos, pages) with a 1-second default interval. The defining
characteristics of that trace are a deep diurnal cycle (quiet nights) and
extremely bursty flash crowds around matches — exactly what lets Fig. 5(c)
reach large savings during off-peak times.

:class:`WebWorkloadGenerator` synthesises request streams with those
properties: a site-wide arrival-rate envelope (diurnal x weekly x flash
crowds), Poisson request counts per second, and Zipf-distributed object
popularity; per-object access-rate traces are thinned binomially from the
site stream.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.workloads.base import MetricTrace
from repro.workloads.zipf import zipf_weights

__all__ = ["WebWorkloadGenerator", "APPLICATION_DEFAULT_INTERVAL"]

APPLICATION_DEFAULT_INTERVAL = 1.0
"""Default sampling interval of application tasks, seconds (paper SV-A)."""


class WebWorkloadGenerator:
    """WorldCup-style HTTP request stream with per-object access rates.

    Args:
        peak_rate: site-wide mean requests/second at the diurnal peak.
        num_objects: size of the object catalogue.
        popularity_skew: Zipf exponent of object popularity.
        diurnal_period: diurnal cycle in grid steps (default: one day of
            1-second steps).
        diurnal_depth: fraction of traffic absent at the trough
            (WorldCup nights are nearly idle, hence the deep default).
        flash_prob: per-step probability a flash crowd starts.
        flash_magnitude: multiplicative crowd intensity at its peak
            (log-normal spread applied on top).
        flash_duration: mean crowd duration in steps (exponential).
    """

    def __init__(self, peak_rate: float = 20_000.0, num_objects: int = 512,
                 popularity_skew: float = 1.1, diurnal_period: int = 86_400,
                 diurnal_depth: float = 0.95, flash_prob: float = 0.0002,
                 flash_magnitude: float = 6.0,
                 flash_duration: float = 600.0):
        if peak_rate <= 0:
            raise ConfigurationError(
                f"peak_rate must be > 0, got {peak_rate}")
        if num_objects < 1:
            raise ConfigurationError(
                f"num_objects must be >= 1, got {num_objects}")
        if not 0.0 <= diurnal_depth < 1.0:
            raise ConfigurationError(
                f"diurnal_depth must be in [0, 1), got {diurnal_depth}")
        if diurnal_period < 2:
            raise ConfigurationError(
                f"diurnal_period must be >= 2, got {diurnal_period}")
        if not 0.0 <= flash_prob <= 1.0:
            raise ConfigurationError(
                f"flash_prob must be in [0, 1], got {flash_prob}")
        if flash_magnitude < 1.0:
            raise ConfigurationError(
                f"flash_magnitude must be >= 1, got {flash_magnitude}")
        if flash_duration <= 0:
            raise ConfigurationError(
                f"flash_duration must be > 0, got {flash_duration}")
        self._peak_rate = peak_rate
        self._num_objects = num_objects
        self._popularity = zipf_weights(num_objects, popularity_skew)
        self._period = diurnal_period
        self._depth = diurnal_depth
        self._flash_prob = flash_prob
        self._flash_magnitude = flash_magnitude
        self._flash_duration = flash_duration

    @property
    def num_objects(self) -> int:
        """Size of the object catalogue."""
        return self._num_objects

    def object_popularity(self, object_rank: int) -> float:
        """Fraction of site traffic hitting the object of a given rank."""
        if not 0 <= object_rank < self._num_objects:
            raise ConfigurationError(
                f"object_rank {object_rank} out of range "
                f"[0, {self._num_objects})")
        return float(self._popularity[object_rank])

    def rate_envelope(self, n_steps: int,
                      rng: np.random.Generator,
                      phase: float = 0.0) -> np.ndarray:
        """Site-wide expected requests/second over the grid.

        Diurnal cycle times flash-crowd multipliers; deterministic given
        the RNG state.
        """
        if n_steps < 1:
            raise ConfigurationError(f"n_steps must be >= 1, got {n_steps}")
        t = np.arange(n_steps, dtype=float)
        cycle = 2.0 * np.pi * (t / self._period + phase)
        envelope = self._peak_rate * (
            1.0 - self._depth * 0.5 * (1.0 + np.cos(cycle)))

        multiplier = np.ones(n_steps)
        starts = np.flatnonzero(rng.random(n_steps) < self._flash_prob)
        for s in starts:
            duration = max(10, int(rng.exponential(self._flash_duration)))
            magnitude = self._flash_magnitude * rng.lognormal(0.0, 0.4)
            end = min(int(s) + duration, n_steps)
            ramp_len = max(2, duration // 10)
            seg_len = end - int(s)
            shape = np.ones(seg_len) * magnitude
            ramp = np.linspace(1.0, magnitude, min(ramp_len, seg_len))
            shape[:ramp.size] = ramp
            tail = np.linspace(magnitude, 1.0, min(ramp_len, seg_len))
            shape[seg_len - tail.size:] = np.minimum(
                shape[seg_len - tail.size:], tail)
            multiplier[int(s):end] = np.maximum(multiplier[int(s):end],
                                                shape)
        return envelope * multiplier

    def site_requests(self, n_steps: int,
                      rng: np.random.Generator,
                      phase: float = 0.0) -> np.ndarray:
        """Realised site-wide requests per second (Poisson around the
        envelope)."""
        envelope = self.rate_envelope(n_steps, rng, phase)
        return rng.poisson(envelope).astype(float)

    def access_rate_trace(self, object_rank: int, n_steps: int,
                          rng: np.random.Generator,
                          phase: float = 0.0) -> MetricTrace:
        """Per-object access-rate trace (requests/second for one object).

        Each site request hits this object with its popularity
        probability, so the object stream is a binomial thinning of the
        site stream — bursty when the site bursts, near-zero at night.
        """
        p = self.object_popularity(object_rank)
        site = self.site_requests(n_steps, rng, phase)
        hits = rng.binomial(site.astype(np.int64), p).astype(float)
        return MetricTrace(
            values=hits,
            default_interval=APPLICATION_DEFAULT_INTERVAL,
            name=f"object-{object_rank}/access-rate",
            unit="req/s",
        )
