"""Zipf-distribution utilities (paper SV-B, Fig. 8).

Fig. 8 skews the per-monitor local violation rates according to a Zipf
distribution with varying skewness ``s`` (``s = 0`` is uniform); web-object
popularity in the application workload is Zipf-distributed as well.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["zipf_weights", "zipf_rates", "zipf_hotspot_rates",
           "sample_zipf_ranks"]


def zipf_weights(n: int, skew: float) -> np.ndarray:
    """Normalised Zipf weights ``w_r ∝ 1 / r^skew`` for ranks 1..n.

    Args:
        n: number of ranks.
        skew: Zipf exponent ``s >= 0``; 0 gives a uniform distribution.

    Returns:
        Array of ``n`` weights summing to 1, descending by rank.
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if skew < 0.0:
        raise ConfigurationError(f"skew must be >= 0, got {skew}")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-skew)
    return weights / weights.sum()


def zipf_rates(n: int, skew: float, mean_rate: float) -> np.ndarray:
    """Per-rank rates with a fixed mean, Zipf-skewed across ranks.

    Used by Fig. 8 to assign local violation rates: the total violation mass
    is held constant (``n * mean_rate``) while its distribution across
    monitors goes from uniform (``skew = 0``) to heavily skewed.
    """
    if mean_rate <= 0.0:
        raise ConfigurationError(f"mean_rate must be > 0, got {mean_rate}")
    return zipf_weights(n, skew) * n * mean_rate


def zipf_hotspot_rates(n: int, skew: float, base_rate: float,
                       cap: float = 20.0) -> np.ndarray:
    """Per-rank rates where skew *creates hotspots* above a floor rate.

    The coldest monitor keeps ``base_rate`` while hotter ranks scale up
    Zipf-fashion (``rate_r = base_rate * w_r / w_min``, capped). This is
    the Fig. 8 regime: skewing the load concentrates violations on a few
    monitors, degrading the even allocation scheme.
    """
    if base_rate <= 0.0:
        raise ConfigurationError(f"base_rate must be > 0, got {base_rate}")
    if cap <= 0.0:
        raise ConfigurationError(f"cap must be > 0, got {cap}")
    weights = zipf_weights(n, skew)
    rates = base_rate * weights / weights.min()
    return np.minimum(rates, cap)


def sample_zipf_ranks(n_items: int, skew: float, size: int,
                      rng: np.random.Generator) -> np.ndarray:
    """Draw ``size`` item ranks (0-based) from a Zipf distribution."""
    if size < 0:
        raise ConfigurationError(f"size must be >= 0, got {size}")
    weights = zipf_weights(n_items, skew)
    return rng.choice(n_items, size=size, p=weights)
