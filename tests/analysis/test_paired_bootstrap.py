"""Tests for paired bootstrap scheme comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import paired_bootstrap_diff
from repro.exceptions import ConfigurationError


class TestPairedBootstrapDiff:
    def test_detects_consistent_improvement(self, rng):
        # Scheme b is consistently ~0.02 cheaper with noisy baselines:
        # unpaired comparison would drown in the baseline spread.
        base = rng.uniform(0.3, 0.8, 20)
        a = base
        b = base - 0.02 + rng.normal(0.0, 0.003, 20)
        diff, lower, upper = paired_bootstrap_diff(a, b, rng)
        assert diff == pytest.approx(0.02, abs=0.005)
        assert lower > 0.0, "CI must exclude zero for a consistent gap"

    def test_no_difference_includes_zero(self, rng):
        base = rng.uniform(0.3, 0.8, 20)
        noise = rng.normal(0.0, 0.01, 20)
        diff, lower, upper = paired_bootstrap_diff(base, base + noise, rng)
        assert lower <= 0.0 <= upper

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            paired_bootstrap_diff(np.ones(3), np.ones(4), rng)
        with pytest.raises(ConfigurationError):
            paired_bootstrap_diff(np.array([]), np.array([]), rng)

    def test_fig8_style_usage(self, rng):
        """The intended use: per-seed adaptive vs even cost ratios."""
        from repro.experiments.figures import fig8

        result_a = fig8(skews=(2.0,), num_monitors=4, horizon=6000,
                        repeats=1, seed=0)
        result_b = fig8(skews=(2.0,), num_monitors=4, horizon=6000,
                        repeats=1, seed=1)
        even = np.array([result_a.even_ratios[0], result_b.even_ratios[0]])
        adapt = np.array([result_a.adaptive_ratios[0],
                          result_b.adaptive_ratios[0]])
        diff, lower, upper = paired_bootstrap_diff(even, adapt, rng,
                                                   n_boot=200)
        assert lower <= diff <= upper
