"""Tests for the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.stats import (allocation_convergence, bootstrap_ci,
                                  box_stats)
from repro.exceptions import ConfigurationError


class TestBootstrapCI:
    def test_interval_brackets_mean(self, rng):
        data = rng.normal(10.0, 2.0, 200)
        point, lower, upper = bootstrap_ci(data, rng)
        assert lower <= point <= upper
        assert point == pytest.approx(float(np.mean(data)))
        # The CI should be reasonably tight for n=200.
        assert upper - lower < 1.5

    def test_single_observation_degenerate(self, rng):
        point, lower, upper = bootstrap_ci(np.array([5.0]), rng)
        assert point == lower == upper == 5.0

    def test_custom_statistic(self, rng):
        data = rng.normal(0.0, 1.0, 100)
        point, lower, upper = bootstrap_ci(data, rng, statistic=np.median)
        assert lower <= point <= upper

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.array([]), rng)
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.ones(5), rng, confidence=1.5)
        with pytest.raises(ConfigurationError):
            bootstrap_ci(np.ones(5), rng, n_boot=3)


class TestBoxStats:
    def test_ordering(self, rng):
        stats = box_stats(rng.normal(0.0, 1.0, 500))
        assert stats["min"] <= stats["q25"] <= stats["median"] \
            <= stats["q75"] <= stats["max"]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            box_stats(np.array([]))


class TestAllocationConvergence:
    def test_static_history_converged(self):
        history = [(0.5, 0.5)] * 5
        report = allocation_convergence(history)
        assert report.converged
        assert report.rounds_to_converge == 0
        assert report.max_movement == 0.0

    def test_settling_trajectory(self):
        history = [
            (0.5, 0.5),
            (0.2, 0.8),    # big move
            (0.19, 0.81),  # settled from here on
            (0.185, 0.815),
        ]
        report = allocation_convergence(history, tolerance=0.05)
        assert report.converged
        assert report.rounds_to_converge == 1
        assert report.max_movement == pytest.approx(0.6)

    def test_oscillating_never_converges(self):
        history = [(0.2, 0.8), (0.8, 0.2)] * 4
        report = allocation_convergence(history, tolerance=0.05)
        assert not report.converged
        assert report.rounds_to_converge == -1
        assert report.final_movement == pytest.approx(1.2)

    def test_short_history_trivially_converged(self):
        assert allocation_convergence([(1.0,)]).converged

    def test_real_run_converges_on_stationary_data(self, rng):
        """The paper's claim: stable data -> stable assignment."""
        from repro.core.coordination import AdaptiveAllocation
        from repro.core.task import DistributedTaskSpec
        from repro.experiments.distributed import run_distributed_task

        n = 12_000
        hot = 95.0 + rng.normal(0.0, 2.0, n)      # stuck at I=1
        cold1 = rng.normal(0.0, 0.1, n)            # saturates at Im
        cold2 = rng.normal(0.0, 0.1, n)
        spec = DistributedTaskSpec(global_threshold=300.0,
                                   local_thresholds=(100.0,) * 3,
                                   error_allowance=0.01, max_interval=10)
        result = run_distributed_task([hot, cold1, cold2], spec,
                                      policy=AdaptiveAllocation(),
                                      update_period=500,
                                      keep_allocations=True)
        assert len(result.allocation_history) >= 10
        report = allocation_convergence(list(result.allocation_history),
                                        tolerance=0.25)
        assert report.converged
