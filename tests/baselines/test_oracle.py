"""Tests for the clairvoyant oracle baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.oracle import OracleSampler
from repro.core.sampler import SamplingScheme
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_sampler_on_trace


class TestOracleSampler:
    def test_detects_every_alert(self, bursty_trace):
        threshold = 100.0
        oracle = OracleSampler(bursty_trace, threshold)
        result = run_sampler_on_trace(bursty_trace, oracle, threshold)
        assert result.misdetection_rate == 0.0

    def test_cheaper_than_periodic(self, bursty_trace):
        threshold = 100.0
        oracle = OracleSampler(bursty_trace, threshold)
        result = run_sampler_on_trace(bursty_trace, oracle, threshold)
        assert result.sampling_ratio < 0.1

    def test_no_alerts_skips_everything_without_heartbeat(self):
        values = np.zeros(100)
        oracle = OracleSampler(values, 1.0)
        result = run_sampler_on_trace(values, oracle, 1.0)
        # Only the mandatory first sample.
        assert result.accuracy.samples_taken == 1

    def test_heartbeat_bounds_idle_gaps(self):
        values = np.zeros(100)
        oracle = OracleSampler(values, 1.0, heartbeat=10)
        result = run_sampler_on_trace(values, oracle, 1.0)
        assert result.accuracy.samples_taken == 10
        gaps = np.diff(result.sampled_indices)
        assert (gaps <= 10).all()

    def test_satisfies_protocol(self, bursty_trace):
        assert isinstance(OracleSampler(bursty_trace, 100.0),
                          SamplingScheme)

    def test_rejects_bad_heartbeat(self):
        with pytest.raises(ConfigurationError):
            OracleSampler(np.zeros(10), 1.0, heartbeat=0)
