"""Tests for the periodic sampling baseline."""

from __future__ import annotations

import pytest

from repro.baselines.periodic import PeriodicSampler
from repro.core.sampler import SamplingScheme
from repro.exceptions import ConfigurationError


class TestPeriodicSampler:
    def test_fixed_interval(self):
        sampler = PeriodicSampler(interval=3)
        for t in (0, 3, 6):
            assert sampler.observe(1.0, t).next_interval == 3
        assert sampler.observations == 3

    def test_violation_flag_with_threshold(self):
        sampler = PeriodicSampler(interval=1, threshold=10.0)
        assert not sampler.observe(5.0, 0).violation
        assert sampler.observe(15.0, 1).violation

    def test_no_threshold_never_flags(self):
        sampler = PeriodicSampler(interval=1)
        assert not sampler.observe(1e9, 0).violation

    def test_satisfies_protocol(self):
        assert isinstance(PeriodicSampler(), SamplingScheme)

    def test_rejects_bad_interval(self):
        with pytest.raises(ConfigurationError):
            PeriodicSampler(interval=0)
