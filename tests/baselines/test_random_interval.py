"""Tests for the random-interval baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.random_interval import RandomIntervalSampler
from repro.core.sampler import SamplingScheme
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_sampler_on_trace


class TestRandomIntervalSampler:
    def test_mean_gap_matches_budget(self, rng):
        values = np.zeros(50_000)
        sampler = RandomIntervalSampler(mean_interval=5.0, rng=rng)
        result = run_sampler_on_trace(values, sampler, 1.0)
        assert result.sampling_ratio == pytest.approx(0.2, abs=0.02)

    def test_mean_interval_one_is_periodic(self, rng):
        values = np.zeros(100)
        sampler = RandomIntervalSampler(mean_interval=1.0, rng=rng)
        result = run_sampler_on_trace(values, sampler, 1.0)
        assert result.sampling_ratio == 1.0

    def test_max_interval_cap(self, rng):
        values = np.zeros(20_000)
        sampler = RandomIntervalSampler(mean_interval=50.0, rng=rng,
                                        max_interval=10)
        result = run_sampler_on_trace(values, sampler, 1.0)
        gaps = np.diff(result.sampled_indices)
        assert gaps.max() <= 10

    def test_misses_more_than_volley_at_same_budget(self, rng,
                                                    bursty_trace):
        from repro.core.task import TaskSpec
        from repro.experiments.runner import run_adaptive

        task = TaskSpec(threshold=100.0, error_allowance=0.02,
                        max_interval=10)
        volley = run_adaptive(bursty_trace, task)
        budget = max(1.0 / volley.sampling_ratio, 1.0)
        random_runs = [
            run_sampler_on_trace(
                bursty_trace,
                RandomIntervalSampler(budget, np.random.default_rng(s)),
                100.0)
            for s in range(5)
        ]
        random_miss = np.mean([r.misdetection_rate for r in random_runs])
        # Budget-matched random sampling misses alerts Volley catches.
        assert random_miss > volley.misdetection_rate + 0.1

    def test_satisfies_protocol(self, rng):
        assert isinstance(RandomIntervalSampler(2.0, rng), SamplingScheme)

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            RandomIntervalSampler(0.5, rng)
        with pytest.raises(ConfigurationError):
            RandomIntervalSampler(2.0, rng, max_interval=0)
