"""Shared helpers for the cluster test suite."""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable

from repro.cluster.server import ClusterServer
from repro.config import ClusterConfig
from repro.core.adaptation import AdaptationConfig


def run_cluster(coro_factory: Callable[[ClusterServer], Awaitable[Any]],
                adaptation: AdaptationConfig | None = None,
                **config_kwargs: Any) -> Any:
    """Run one scenario against a fresh cluster and shut it down.

    Defaults to the in-proc backend (fast, single event loop) with two
    workers; pass ``backend="subprocess"`` etc. to override.
    """
    config_kwargs.setdefault("backend", "inproc")
    config_kwargs.setdefault("workers", 2)
    config_kwargs.setdefault("port", 0)

    async def runner():
        server = ClusterServer(ClusterConfig(**config_kwargs),
                               adaptation=adaptation)
        await server.start()
        try:
            return await coro_factory(server)
        finally:
            await server.shutdown()

    return asyncio.run(runner())
