"""Fixtures for the cluster test suite."""

from __future__ import annotations

from typing import Any, Callable

import pytest

from cluster_utils import run_cluster


@pytest.fixture
def cluster_runner() -> Callable[..., Any]:
    return run_cluster
