"""Binary offer path through the cluster front door.

The cluster server negotiates the same protocol as the single-process
runtime, routes decoded columns to workers, and must land on exactly the
state a JSON drive of the same stream produces — the S31 equivalence
contract does not stop at the routing tier.
"""

from __future__ import annotations

import asyncio

import numpy as np
from cluster_utils import run_cluster

from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.protocol import PROTOCOL_BINARY

TASKS = 8
STEPS = 60


def _values() -> np.ndarray:
    rng = np.random.default_rng(17)
    return rng.normal(86.0, 13.0, (STEPS, TASKS))


async def _drive(server, binary: bool) -> dict:
    names = [f"clu-{i:02d}" for i in range(TASKS)]
    values = _values()
    client = AsyncRuntimeClient(port=server.tcp_port)
    try:
        for name in names:
            reply = await client.register_task(
                name, 100.0, error_allowance=0.02, max_interval=8)
            assert reply["ok"], reply
        if binary:
            assert await client.negotiate() == PROTOCOL_BINARY
            idx = np.asarray(await client.intern(names), dtype=np.uint32)
            for step in range(STEPS):
                steps = np.full(TASKS, step, dtype=np.int64)
                reply = await client.offer_columns(idx, steps, values[step])
                assert reply.rejected == 0
        else:
            for step in range(STEPS):
                batch = [[name, step, float(values[step][i])]
                         for i, name in enumerate(names)]
                reply = await client.offer_batch(batch)
                assert reply.get("rejected", 0) == 0
        deadline = asyncio.get_running_loop().time() + 15
        while True:
            stats = await client.stats()
            if stats["totals"]["applied"] >= STEPS * TASKS:
                break
            assert asyncio.get_running_loop().time() < deadline, stats
            await asyncio.sleep(0.01)
        infos = {name: await client.task_info(name) for name in names}
        alerts = {name: await client.alerts(name) for name in names}
        return {"totals": stats["totals"], "infos": infos,
                "alerts": alerts}
    finally:
        await client.close()


class TestClusterBinary:
    def test_negotiate_intern_offer_columns_end_to_end(self):
        async def scenario(server):
            return await _drive(server, binary=True)

        observed = run_cluster(scenario, workers=2)
        assert observed["totals"]["applied"] == STEPS * TASKS
        assert observed["totals"]["rejected"] == 0
        assert sum(len(v) for v in observed["alerts"].values()) > 0

    def test_binary_drive_matches_json_drive(self):
        def run(binary):
            return run_cluster(lambda server: _drive(server, binary),
                               workers=2)

        json_side = run(False)
        bin_side = run(True)
        assert bin_side["totals"]["applied"] \
            == json_side["totals"]["applied"]
        assert bin_side["totals"]["consumed"] \
            == json_side["totals"]["consumed"]
        assert bin_side["totals"]["alerts"] == json_side["totals"]["alerts"]
        assert bin_side["alerts"] == json_side["alerts"]
        for name, info in json_side["infos"].items():
            for key in ("samples_taken", "interval", "next_due",
                        "observations"):
                assert bin_side["infos"][name][key] == info[key], \
                    (name, key)

    def test_unregistered_interned_name_rejected_in_ack(self):
        # The routing tier resolves gids at the front door, so a name
        # with no registered task is rejected in the reply itself (the
        # single-process runtime defers the same rejection to the shard).
        async def scenario(server):
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                await client.register_task("real", 100.0,
                                           error_allowance=0.05)
                await client.negotiate()
                await client.intern(["real", "phantom"])
                reply = await client.offer_columns([0, 1], [0, 0],
                                                   [50.0, 50.0])
                deadline = asyncio.get_running_loop().time() + 15
                while True:
                    totals = (await client.stats())["totals"]
                    if totals["applied"] >= 1:
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                info = await client.task_info("real")
                return reply, totals, info
            finally:
                await client.close()

        reply, totals, info = run_cluster(scenario, workers=2)
        assert reply.accepted == 1
        assert reply.rejected == 1
        assert totals["applied"] == 1
        assert info["samples_taken"] == 1
