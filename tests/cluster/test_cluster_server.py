"""The routing tier must be wire-identical to the single-process server.

Every test here drives a ``ClusterServer`` (in-proc backend) and, where
behaviour could diverge, the same schedule through a ``RuntimeServer``
with the same shard count — op names, reply shapes, validation errors,
sampler decisions and counter accounting must all match, because
existing clients and tooling are pointed at clusters unchanged.
"""

from __future__ import annotations

import asyncio

from cluster_utils import run_cluster

from repro.config import RuntimeConfig
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer

SHARDS = 4

TASKS = [
    {"name": f"task-{i}", "threshold": 40.0, "error_allowance": 0.01,
     "max_interval": 8}
    for i in range(6)
]


def _schedule(steps: int = 80) -> list[list]:
    updates = []
    for step in range(steps):
        for i, task in enumerate(TASKS):
            value = 20.0 + ((step * 7 + i * 13) % 30)
            updates.append([task["name"], step, value])
    return updates


async def _drive(client, coordinator=None, server=None) -> dict:
    """Register TASKS, push the schedule, drain, collect observables."""
    for task in TASKS:
        reply = await client.register_task(**task)
        assert reply["ok"], reply
    schedule = _schedule()
    for i in range(0, len(schedule), 48):
        reply = await client.offer_batch(schedule[i:i + 48])
        assert reply["accepted"] + reply["shed"] + reply["rejected"] \
            == len(schedule[i:i + 48])
    if coordinator is not None:
        await coordinator.drain()
    else:
        await server.drain()
    observed = {"stats": await client.stats()}
    observed["info"] = {t["name"]: await client.task_info(t["name"])
                       for t in TASKS}
    observed["alerts"] = {t["name"]: await client.alerts(t["name"])
                         for t in TASKS}
    return observed


async def _drive_runtime() -> dict:
    server = RuntimeServer(RuntimeConfig(port=0, shards=SHARDS))
    await server.start()
    client = AsyncRuntimeClient(port=server.tcp_port)
    try:
        return await _drive(client, server=server)
    finally:
        await client.close()
        await server.shutdown()


class TestEquivalence:
    def test_cluster_matches_single_process_bit_for_bit(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                return await _drive(client,
                                    coordinator=cluster.coordinator)
            finally:
                await client.close()

        clustered = run_cluster(scenario, workers=2, shards=SHARDS)
        single = asyncio.run(_drive_runtime())
        # Identical sampler decisions: samples, intervals, schedules.
        for name in clustered["info"]:
            c, s = clustered["info"][name], single["info"][name]
            for key in ("shard", "samples_taken", "alerts", "interval",
                        "next_due", "observations"):
                assert c[key] == s[key], (name, key)
        assert clustered["alerts"] == single["alerts"]
        # Identical counter totals (short-key namespace preserved).
        for key in ("offered", "applied", "consumed", "shed", "rejected",
                    "alerts", "tasks"):
            assert clustered["stats"]["totals"][key] \
                == single["stats"]["totals"][key], key
        # Identical per-shard canonical counters.
        for c, s in zip(clustered["stats"]["shards"],
                        single["stats"]["shards"]):
            assert c == s

    def test_validation_errors_match_runtime_server(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                bad_shape = await client.request(
                    {"op": "offer_batch", "updates": [["t", 1]]})
                bad_value = await client.request(
                    {"op": "offer_batch",
                     "updates": [["t", 0, "high"]]})
                too_big = await client.request(
                    {"op": "offer_batch",
                     "updates": [["t", 0, 1.0]] * 20000})
                unknown = await client.request({"op": "resharden"})
                return bad_shape, bad_value, too_big, unknown
            finally:
                await client.close()

        bad_shape, bad_value, too_big, unknown = run_cluster(scenario)
        assert not bad_shape["ok"]
        assert bad_value["code"] == "bad-update"
        assert too_big["code"] == "batch-too-large"
        assert unknown["code"] == "unknown-op"

    def test_unknown_task_updates_are_rejected_in_reply(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task("known", 50.0)
                return await client.offer_batch(
                    [["known", 0, 1.0], ["ghost", 0, 1.0]])
            finally:
                await client.close()

        reply = run_cluster(scenario)
        assert reply["accepted"] == 1 and reply["rejected"] == 1

    def test_cross_shard_trigger_rejected_same_code(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                # task-0 routes to shard 1, task-4 to shard 0 (golden
                # assignments) — correlation gating stays intra-shard.
                for task in TASKS:
                    await client.register_task(**task)
                return await client.request(
                    {"op": "add_trigger", "target": "task-0",
                     "trigger": "task-4", "elevation_level": 0.5})
            finally:
                await client.close()

        reply = run_cluster(scenario, shards=SHARDS)
        assert not reply["ok"] and reply["code"] == "cross-shard-trigger"

    def test_same_shard_trigger_accepted(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for task in TASKS:
                    await client.register_task(**task)
                # task-0 and task-2 both route to shard 1 of 4.
                return await client.request(
                    {"op": "add_trigger", "target": "task-0",
                     "trigger": "task-2", "elevation_level": 0.5})
            finally:
                await client.close()

        assert run_cluster(scenario, shards=SHARDS)["ok"]


class TestClusterOnlyOps:
    def test_placement_reports_workers_and_shards(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                return await client.placement()
            finally:
                await client.close()

        placement = run_cluster(scenario, workers=2, shards=SHARDS)
        assert placement["n_shards"] == SHARDS
        assert set(placement["workers"]) == {"w0", "w1"}
        hosted = sorted(sid for w in placement["workers"].values()
                        for sid in w["shards"])
        assert hosted == list(range(SHARDS))
        assert all(w["alive"] for w in placement["workers"].values())

    def test_migrate_moves_shard_with_fingerprint_match(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for task in TASKS:
                    await client.register_task(**task)
                await client.offer_batch(_schedule(40))
                await cluster.coordinator.drain()
                before = await client.placement()
                # task-0 lives on shard 1; move that shard to the other
                # worker and keep using it.
                source = next(wid for wid, w in before["workers"].items()
                              if 1 in w["shards"])
                target = "w1" if source == "w0" else "w0"
                migrated = await client.migrate(1, target)
                after = await client.placement()
                info = await client.task_info("task-0")
                more = await client.offer_batch(
                    [["task-0", 100, 25.0], ["task-0", 101, 26.0]])
                return migrated, after, info, more, target

            finally:
                await client.close()

        migrated, after, info, more, target = run_cluster(
            scenario, workers=2, shards=SHARDS)
        assert migrated["ok"] and migrated["fingerprint_match"]
        assert migrated["to"] == target
        assert 1 in after["workers"][target]["shards"]
        assert info["ok"] and info["shard"] == 1
        assert more["accepted"] == 2
        assert after["migrations"] == 1

    def test_migrate_to_unknown_worker_fails_cleanly(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                return await client.request(
                    {"op": "migrate", "shard": 0, "worker": "w9"})
            finally:
                await client.close()

        reply = run_cluster(scenario)
        assert not reply["ok"] and "w9" in reply["error"]

    def test_trace_aggregates_worker_sampler_events(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for task in TASKS:
                    await client.register_task(**task)
                # A quiet stream, far below threshold, so the samplers
                # grow their intervals and emit interval_adapted events.
                quiet = [[t["name"], step, 10.0 + (step % 3) * 0.1]
                         for step in range(120) for t in TASKS]
                await client.offer_batch(quiet)
                await cluster.coordinator.drain()
                return await client.trace()
            finally:
                await client.close()

        reply = run_cluster(scenario, shards=SHARDS)
        kinds = {e["kind"] for e in reply["events"]}
        assert "task_registered" in kinds
        assert "interval_adapted" in kinds  # pulled from the workers
        workers = {e.get("worker") for e in reply["events"]
                   if e["kind"] == "interval_adapted"}
        assert workers <= {"w0", "w1"} and workers

    def test_telemetry_merges_fleet_metrics(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for task in TASKS:
                    await client.register_task(**task)
                await client.offer_batch(_schedule(40))
                await cluster.coordinator.drain()
                return await client.telemetry()
            finally:
                await client.close()

        reply = run_cluster(scenario, workers=2, shards=SHARDS)
        metrics = reply["metrics"]
        applied = metrics["volley_updates_applied_total"]
        assert applied["label_names"] == ["worker", "shard"]
        workers = {s["labels"][0] for s in applied["series"]}
        assert workers == {"w0", "w1"}
        total = sum(s["value"] for s in applied["series"])
        assert total == len(_schedule(40))
        # Coordinator families pass through the merge.
        assert "volley_worker_up" in metrics
        assert "volley_migrations_total" in metrics
        # Histograms merge into one summary series.
        hist = metrics["volley_sampling_interval"]
        assert len(hist["series"]) == 1
        assert hist["series"][0]["value"]["count"] > 0
