"""Failure-driven re-placement: worker death must not lose ACKed state.

The coordinator's contract (DESIGN.md): a worker declared dead after
``heartbeat_misses`` missed pings has every shard it hosted rebuilt on a
survivor from the last recovery snapshot. ACKed-and-applied updates that
made it into that snapshot survive; offers racing the crash are *shed*
(honestly counted), never silently dropped — the same at-most-once
contract the single-process runtime states for crash recovery.

The in-proc tests here run in tier 1; the subprocess SIGKILL matrix is
``-m chaos`` (slow: real processes, real heartbeat timing).
"""

from __future__ import annotations

import asyncio
import os

import pytest

from cluster_utils import run_cluster

from repro.cluster.routing import route
from repro.runtime.client import AsyncRuntimeClient
from repro.testkit.invariants import check_no_acked_loss

SHARDS = 4
TASK = "task-0"
TASK_SHARD = route(TASK, SHARDS)

TASK_SPEC = {"name": TASK, "threshold": 60.0, "error_allowance": 0.01,
             "max_interval": 6}

FAST_BEAT = {"heartbeat_interval": 0.05, "heartbeat_misses": 2,
             "heartbeat_timeout": 0.5}


async def _wait_until(predicate, timeout: float = 10.0) -> None:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not met within timeout")
        await asyncio.sleep(0.02)


async def _victim_of(client, shard: int) -> str:
    placement = await client.placement()
    return next(w for w, entry in placement["workers"].items()
                if shard in entry["shards"])


class TestInProcReplacement:
    def test_dead_worker_shards_move_to_survivor_with_state(self):
        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                await client.offer_batch(
                    [[TASK, s, 20.0 + (s % 9)] for s in range(50)])
                await coord.drain()
                before = await client.task_info(TASK)
                # Pin the recovery snapshot at exactly this point.
                await coord.write_checkpoint()
                victim = await _victim_of(client, TASK_SHARD)
                await coord.kill_worker(victim)
                victim_shards = sum(
                    1 for r in coord.routes if r.worker_id == victim)
                await _wait_until(
                    lambda: coord.replacements >= victim_shards)
                await coord.drain()
                after = await client.task_info(TASK)
                placement = await client.placement()
                more = await client.offer_batch([[TASK, 100, 25.0]])
                await coord.drain()
                final = await client.task_info(TASK)
                events = coord.trace.drain(0, 10_000)
                return (victim, before, after, placement, more, final,
                        events)
            finally:
                await client.close()

        victim, before, after, placement, more, final, events = \
            run_cluster(scenario, workers=2, shards=SHARDS, **FAST_BEAT)
        # The shard came back on the survivor with its snapshotted state.
        assert not placement["workers"][victim]["alive"]
        assert placement["workers"][victim]["shards"] == []
        hosted = sorted(s for w in placement["workers"].values()
                        for s in w["shards"])
        assert hosted == list(range(SHARDS))
        assert after["observations"] == before["observations"]
        assert after["samples_taken"] == before["samples_taken"]
        # The recovered shard keeps serving.
        assert more["accepted"] == 1
        assert final["observations"] == before["observations"] + 1
        kinds = {e["kind"] for e in events}
        assert {"worker_lost", "shard_replaced"} <= kinds
        recovered = [e for e in events if e["kind"] == "shard_replaced"
                     and e["shard"] == TASK_SHARD]
        assert recovered and recovered[0]["recovered"] is True

    def test_uncovered_shard_recovers_fresh_with_catalog_tasks(self):
        """No snapshot for the shard → fresh shard, tasks re-registered."""

        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                victim = await _victim_of(client, TASK_SHARD)
                # Kill before any heartbeat snapshotted the shard: the
                # re-placement has nothing to restore from and must fall
                # back to a fresh shard plus catalog re-registration.
                await coord.kill_worker(victim)
                await _wait_until(lambda: coord.replacements >= 1)
                info = await client.task_info(TASK)
                reply = await client.offer_batch([[TASK, 0, 99.0]])
                await coord.drain()
                final = await client.task_info(TASK)
                events = coord.trace.drain(0, 10_000)
                return info, reply, final, events
            finally:
                await client.close()

        info, reply, final, events = run_cluster(
            scenario, workers=2, shards=SHARDS,
            heartbeat_interval=0.3, heartbeat_misses=2,
            heartbeat_timeout=0.5)
        assert info["ok"] and info["observations"] == 0
        assert reply["accepted"] == 1
        assert final["observations"] == 1
        replaced = [e for e in events if e["kind"] == "shard_replaced"
                    and e["shard"] == TASK_SHARD]
        assert replaced and replaced[0]["recovered"] is False

    def test_worker_up_gauge_tracks_death(self):
        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                victim = await _victim_of(client, TASK_SHARD)
                await coord.kill_worker(victim)
                await _wait_until(lambda: coord.replacements >= 1)
                snapshot = coord.registry.snapshot()
                return victim, snapshot
            finally:
                await client.close()

        victim, snapshot = run_cluster(scenario, workers=2, shards=SHARDS,
                                       **FAST_BEAT)
        up = {s["labels"][0]: s["value"]
              for s in snapshot["volley_worker_up"]["series"]}
        assert up[victim] == 0.0
        survivor = "w1" if victim == "w0" else "w0"
        assert up[survivor] == 1.0
        replacements = snapshot["volley_replacements_total"]
        assert replacements["series"][0]["value"] >= 1


class TestSubprocessSmoke:
    def test_subprocess_backend_end_to_end(self):
        """Real worker processes: spawn, route, count, shut down."""

        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                ping = await client.request({"op": "ping"})
                await client.register_task(**TASK_SPEC)
                reply = await client.offer_batch(
                    [[TASK, s, 30.0] for s in range(20)])
                await cluster.coordinator.drain()
                stats = await client.stats()
                info = await client.task_info(TASK)
                placement = await client.placement()
                return ping, reply, stats, info, placement
            finally:
                await client.close()

        ping, reply, stats, info, placement = run_cluster(
            scenario, backend="subprocess", workers=2, shards=SHARDS)
        assert ping["ok"] and ping["workers"] == 2
        assert reply["accepted"] == 20
        assert stats["totals"]["applied"] == 20
        assert info["observations"] == 20
        pids = {w["pid"] for w in placement["workers"].values()}
        assert len(pids) == 2 and os.getpid() not in pids


@pytest.mark.chaos
class TestSubprocessChaos:
    """SIGKILL matrix against real worker processes."""

    def test_sigkill_under_load_keeps_acked_ledger(self):
        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            writer = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                await client.offer_batch(
                    [[TASK, s, 20.0 + (s % 9)] for s in range(50)])
                await coord.drain()
                await coord.write_checkpoint()
                base = (await client.stats())["totals"]["applied"]
                victim = await _victim_of(client, TASK_SHARD)
                await coord.kill_worker(victim)

                # Keep offering through the outage: every batch either
                # ACKs (and must survive) or sheds (honest backpressure).
                acked = 0
                step = 1000
                while coord.replacements == 0:
                    reply = await writer.offer_batch(
                        [[TASK, step + i, 30.0] for i in range(4)])
                    acked += reply["accepted"]
                    step += 4
                    await asyncio.sleep(0.01)
                await coord.drain()
                post = await client.offer_batch([[TASK, step, 31.0]])
                acked += post["accepted"]
                await coord.drain()
                final = (await client.stats())["totals"]["applied"]
                return base, acked, final
            finally:
                await client.close()
                await writer.close()

        base, acked, final = run_cluster(
            scenario, backend="subprocess", workers=2, shards=SHARDS,
            heartbeat_interval=0.1, heartbeat_misses=2,
            heartbeat_timeout=0.5)
        # The applied-update counter is the ledger: ACKed offers that made
        # it past the recovery snapshot must all be applied, shed offers
        # must not be.
        result = check_no_acked_loss(
            expected={TASK: base + acked}, actual={TASK: final},
            scope="since the pre-kill recovery snapshot")
        assert result.passed, result.detail

    def test_sigkill_of_migration_target_aborts_cleanly(self):
        """Migration to a dead worker fails; the source stays whole."""

        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            writer = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                await client.offer_batch(
                    [[TASK, s, 30.0] for s in range(40)])
                await coord.drain()
                source = await _victim_of(client, TASK_SHARD)
                target = "w1" if source == "w0" else "w0"
                # Slow heartbeat: the coordinator has not noticed the
                # target die when the migration tries to restore there.
                await coord.kill_worker(target)

                stop = asyncio.Event()
                acked = 0

                async def pump():
                    nonlocal acked
                    step = 2000
                    while not stop.is_set():
                        reply = await writer.offer_batch(
                            [[TASK, step + i, 30.0] for i in range(4)])
                        acked += reply["accepted"]
                        step += 4
                        await asyncio.sleep(0)

                pump_task = asyncio.create_task(pump())
                await asyncio.sleep(0.02)
                migrated = await client.request(
                    {"op": "migrate", "shard": TASK_SHARD,
                     "worker": target})
                stop.set()
                await pump_task
                await coord.drain()
                applied = (await client.stats())["totals"]["applied"]
                events = coord.trace.drain(0, 10_000)
                return migrated, acked, applied, coord.migrations, events
            finally:
                await client.close()
                await writer.close()

        migrated, acked, applied, migrations, events = run_cluster(
            scenario, backend="subprocess", workers=2, shards=SHARDS,
            heartbeat_interval=5.0, heartbeat_misses=2,
            heartbeat_timeout=0.5)
        assert not migrated["ok"]
        assert migrations == 0
        # Source still authoritative, buffered offers replayed to it.
        result = check_no_acked_loss(
            expected={TASK: 40 + acked}, actual={TASK: applied},
            scope="across the aborted migration")
        assert result.passed, result.detail
        assert any(e["kind"] == "migration_aborted" for e in events)
