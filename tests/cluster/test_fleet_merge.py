"""Unit tests for the coordinator-side fleet telemetry merge.

The merge rules under test: counter/gauge series gain a leading
``worker`` label; histogram series merge sketch-first so fleet quantiles
come from the combined distribution (never from averaging per-worker
quantiles); coordinator families pass through and join merged families
only when the label shape matches.
"""

from __future__ import annotations

from repro.cluster.fleet import merge_fleet_snapshots
from repro.telemetry.exposition import render_prometheus
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.registry import MetricsRegistry


def _worker_snapshot(offered: float, values: list[float]) -> dict:
    registry = MetricsRegistry()
    family = registry.counter("volley_updates_offered_total",
                              "Updates accepted", labels=("shard",))
    family.labels(0).inc(offered)
    hist = registry.histogram("volley_sampling_interval", "Intervals")
    for v in values:
        hist.observe(v)
    return registry.snapshot(raw=True)


class TestCountersAndGauges:
    def test_series_gain_leading_worker_label(self):
        merged = merge_fleet_snapshots({
            "w0": _worker_snapshot(5.0, []),
            "w1": _worker_snapshot(7.0, []),
        })
        family = merged["volley_updates_offered_total"]
        assert family["label_names"] == ["worker", "shard"]
        by_worker = {s["labels"][0]: s["value"] for s in family["series"]}
        assert by_worker == {"w0": 5.0, "w1": 7.0}

    def test_workers_merge_in_sorted_order(self):
        merged = merge_fleet_snapshots({
            "w1": _worker_snapshot(1.0, []),
            "w0": _worker_snapshot(2.0, []),
        })
        series = merged["volley_updates_offered_total"]["series"]
        assert [s["labels"][0] for s in series] == ["w0", "w1"]


class TestHistograms:
    def test_sketches_merge_into_one_series(self):
        merged = merge_fleet_snapshots({
            "w0": _worker_snapshot(0.0, [1.0, 1.0, 1.0]),
            "w1": _worker_snapshot(0.0, [100.0]),
        })
        family = merged["volley_sampling_interval"]
        assert family["label_names"] == []
        assert len(family["series"]) == 1
        value = family["series"][0]["value"]
        assert value["count"] == 4
        assert value["sum"] == 103.0

    def test_fleet_quantiles_come_from_combined_sketch(self):
        # Three quiet workers and one slow one: the combined p99 must be
        # in the slow worker's range, which averaged per-worker p99s
        # would badly underestimate.
        quiet = [1.0] * 33
        merged = merge_fleet_snapshots({
            "w0": _worker_snapshot(0.0, quiet),
            "w1": _worker_snapshot(0.0, quiet),
            "w2": _worker_snapshot(0.0, quiet),
            "w3": _worker_snapshot(0.0, [1000.0]),
        })
        value = merged["volley_sampling_interval"]["series"][0]["value"]
        reference = LogHistogram()
        for v in quiet * 3 + [1000.0]:
            reference.record(v)
        assert value["quantiles"] == reference.quantiles((0.5, 0.9, 0.99))
        assert value["max"] == reference.max

    def test_empty_fleet_histogram_renders(self):
        merged = merge_fleet_snapshots({"w0": _worker_snapshot(0.0, [])})
        value = merged["volley_sampling_interval"]["series"][0]["value"]
        assert value["count"] == 0 and value["min"] == 0.0


class TestBasePassThrough:
    def test_coordinator_families_pass_through(self):
        registry = MetricsRegistry()
        registry.counter("volley_migrations_total", "Migrations").inc(3)
        merged = merge_fleet_snapshots(
            {"w0": _worker_snapshot(1.0, [])}, base=registry.snapshot())
        assert merged["volley_migrations_total"]["series"][0]["value"] == 3

    def test_matching_label_shape_joins_merged_family(self):
        registry = MetricsRegistry()
        shed = registry.counter("volley_updates_offered_total",
                                "Updates accepted",
                                labels=("worker", "shard"))
        shed.labels("router", "-").inc(9)
        merged = merge_fleet_snapshots(
            {"w0": _worker_snapshot(2.0, [])}, base=registry.snapshot())
        series = merged["volley_updates_offered_total"]["series"]
        by_worker = {s["labels"][0]: s["value"] for s in series}
        assert by_worker == {"w0": 2.0, "router": 9.0}

    def test_mismatched_label_shape_is_dropped_not_corrupted(self):
        registry = MetricsRegistry()
        registry.counter("volley_updates_offered_total",
                         "Updates accepted", labels=("source",)
                         ).labels("router").inc(9)
        merged = merge_fleet_snapshots(
            {"w0": _worker_snapshot(2.0, [])}, base=registry.snapshot())
        family = merged["volley_updates_offered_total"]
        assert family["label_names"] == ["worker", "shard"]
        assert len(family["series"]) == 1


class TestExposition:
    def test_merged_snapshot_renders_as_prometheus_text(self):
        merged = merge_fleet_snapshots({
            "w0": _worker_snapshot(5.0, [1.0, 2.0]),
            "w1": _worker_snapshot(7.0, [3.0]),
        })
        text = render_prometheus(merged)
        assert 'volley_updates_offered_total{worker="w0",shard="0"} 5' \
            in text
        assert 'quantile="0.99"' in text
