"""Property tests: live migration must be invisible to monitoring output.

The headline guarantee of the migration protocol (DESIGN.md) is that a
shard migrated mid-stream — at *any* cut point, under either estimator —
produces bit-identical sampler behaviour to a shard that never moved:
the same alerts at the same steps, the same sampled steps, the same
intervals, and a final state fingerprint equal to the unmigrated run's.
Hypothesis drives randomised streams and cut points at both ends and in
the middle; the reference is a single-process ``RuntimeServer`` with the
same shard count.
"""

from __future__ import annotations

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from cluster_utils import run_cluster

from repro.config import RuntimeConfig
from repro.core.adaptation import AdaptationConfig
from repro.runtime.checkpoint import state_fingerprint
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.cluster.routing import route

SHARDS = 4
TASK = "task-0"  # routes to shard 1 of 4 (pinned in test_routing.py)
TASK_SHARD = route(TASK, SHARDS)

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),
    min_size=10, max_size=120)


TASK_SPEC = {"name": TASK, "threshold": 60.0, "error_allowance": 0.01,
             "max_interval": 6}


def _adaptation(estimator: str) -> AdaptationConfig:
    return AdaptationConfig(estimator=estimator, min_samples=5, patience=5)


async def _observe(client) -> dict:
    info = await client.task_info(TASK)
    alerts = await client.alerts(TASK)
    return {"samples": info["samples_taken"], "interval": info["interval"],
            "next_due": info["next_due"],
            "observations": info["observations"], "alerts": alerts}


def _reference(values: list[float], estimator: str) -> tuple[dict, str]:
    """The unmigrated single-process run: observables + fingerprint."""

    async def runner():
        server = RuntimeServer(RuntimeConfig(port=0, shards=SHARDS),
                               adaptation=_adaptation(estimator))
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            await client.register_task(**TASK_SPEC)
            await client.offer_batch(
                [[TASK, step, v] for step, v in enumerate(values)])
            await server.drain()
            observed = await _observe(client)
            snapshot = server._workers[TASK_SHARD].service.snapshot()
            return observed, state_fingerprint(snapshot)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(runner())


class TestMidStreamMigration:
    @given(values=values_strategy,
           cut=st.integers(min_value=0, max_value=120),
           estimator=st.sampled_from(["chebyshev", "gaussian"]))
    @settings(max_examples=15, deadline=None)
    def test_migrated_shard_is_bit_identical(self, values, cut, estimator):
        cut = min(cut, len(values))

        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                updates = [[TASK, step, v]
                           for step, v in enumerate(values)]
                if updates[:cut]:
                    await client.offer_batch(updates[:cut])
                await cluster.coordinator.drain()
                placement = await client.placement()
                source = next(w for w, entry in placement["workers"].items()
                              if TASK_SHARD in entry["shards"])
                target = "w1" if source == "w0" else "w0"
                migrated = await client.migrate(TASK_SHARD, target)
                assert migrated["fingerprint_match"], migrated
                if updates[cut:]:
                    await client.offer_batch(updates[cut:])
                await cluster.coordinator.drain()
                observed = await _observe(client)
                snap = await cluster.coordinator._request(target, {
                    "op": "w_snapshot_shard", "shard": TASK_SHARD})
                return observed, snap["fingerprint"]
            finally:
                await client.close()

        observed, fingerprint = run_cluster(
            scenario, adaptation=_adaptation(estimator),
            workers=2, shards=SHARDS)
        expected, expected_fingerprint = _reference(values, estimator)
        assert observed == expected
        assert fingerprint == expected_fingerprint


class TestMigrationUnderConcurrentLoad:
    def test_offers_during_migration_are_buffered_not_lost(self):
        """Offers racing a migration land exactly once, in order."""

        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            writer = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                await client.offer_batch(
                    [[TASK, s, 30.0] for s in range(50)])
                await cluster.coordinator.drain()

                stop = asyncio.Event()
                acked = 0

                async def pump():
                    nonlocal acked
                    step = 50
                    while not stop.is_set():
                        reply = await writer.offer_batch(
                            [[TASK, step + i, 30.0 + (i % 5)]
                             for i in range(4)])
                        acked += reply["accepted"]
                        step += 4
                        await asyncio.sleep(0)

                pump_task = asyncio.create_task(pump())
                await asyncio.sleep(0.05)
                placement = await client.placement()
                source = next(w for w, e in placement["workers"].items()
                              if TASK_SHARD in e["shards"])
                target = "w1" if source == "w0" else "w0"
                migrated = await client.migrate(TASK_SHARD, target)
                await asyncio.sleep(0.05)
                stop.set()
                await pump_task
                await cluster.coordinator.drain()
                stats = await client.stats()
                return migrated, acked, stats
            finally:
                await client.close()
                await writer.close()

        migrated, acked, stats = run_cluster(scenario, workers=2,
                                             shards=SHARDS)
        assert migrated["ok"] and migrated["fingerprint_match"]
        # Every ACKed offer (including any buffered during the cutover)
        # was applied — nothing lost, nothing duplicated.
        assert stats["totals"]["applied"] == acked + 50
        assert stats["cluster"]["migrations"] == 1

    def test_double_migration_round_trips_home(self):
        async def scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                await client.register_task(**TASK_SPEC)
                placement = await client.placement()
                home = next(w for w, e in placement["workers"].items()
                            if TASK_SHARD in e["shards"])
                away = "w1" if home == "w0" else "w0"
                updates = [[TASK, s, 20.0 + (s % 9)] for s in range(90)]
                await client.offer_batch(updates[:30])
                await client.migrate(TASK_SHARD, away)
                await client.offer_batch(updates[30:60])
                await client.migrate(TASK_SHARD, home)
                await client.offer_batch(updates[60:])
                await cluster.coordinator.drain()
                observed = await _observe(client)
                snap = await cluster.coordinator._request(home, {
                    "op": "w_snapshot_shard", "shard": TASK_SHARD})
                return observed, snap["fingerprint"]
            finally:
                await client.close()

        observed, fingerprint = run_cluster(
            scenario, adaptation=_adaptation("gaussian"),
            workers=2, shards=SHARDS)
        values = [20.0 + (s % 9) for s in range(90)]
        expected, expected_fingerprint = _reference(values, "gaussian")
        assert observed == expected
        assert fingerprint == expected_fingerprint
