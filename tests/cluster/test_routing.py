"""Golden tests pinning the task-to-shard routing function.

``route(task_id, n_shards)`` is a compatibility contract, not an
implementation detail: checkpoints persist ``task_shard`` maps, the
cross-shard-trigger rule depends on which tasks co-locate, and a cluster
restores single-authored state by recomputing the same assignments. If
these pins ever fail, the change silently orphans every existing
checkpoint — bump a checkpoint version instead of editing the values.
"""

from __future__ import annotations

import zlib

from repro.cluster.routing import route
from repro.runtime.shard import shard_for

# Pinned CRC32 assignments. Computed once from the reference
# implementation and frozen; regenerating them from route() itself would
# make the test a tautology.
GOLDEN_4 = {
    "cpu_util@rack1": 1, "cpu_util@rack2": 3, "mem@web-03": 0,
    "disk_io@db-primary": 2, "net_rx@edge-9": 1, "latency_p99@api": 1,
    "qps@frontend": 2, "temp@chassis-17": 0,
    "task-0": 1, "task-1": 3, "task-2": 1, "task-3": 3,
    "task-4": 0, "task-5": 2, "task-6": 0, "task-7": 2,
}
GOLDEN_8 = {
    "cpu_util@rack1": 1, "cpu_util@rack2": 3, "mem@web-03": 4,
    "disk_io@db-primary": 2, "net_rx@edge-9": 5, "latency_p99@api": 5,
    "qps@frontend": 6, "temp@chassis-17": 4,
    "task-0": 1, "task-1": 7, "task-2": 5, "task-3": 3,
    "task-4": 0, "task-5": 6, "task-6": 4, "task-7": 2,
}


class TestGoldenAssignments:
    def test_pinned_assignments_4_shards(self):
        for name, shard in GOLDEN_4.items():
            assert route(name, 4) == shard, name

    def test_pinned_assignments_8_shards(self):
        for name, shard in GOLDEN_8.items():
            assert route(name, 8) == shard, name

    def test_matches_crc32_definition(self):
        for name in GOLDEN_4:
            for n in (1, 2, 3, 4, 7, 8, 16):
                assert route(name, n) == zlib.crc32(name.encode()) % n


class TestSharedWithRuntime:
    def test_runtime_shard_map_delegates_to_route(self):
        # The single-process server and the cluster router must agree on
        # every assignment, or a cluster restoring a single-process
        # catalog would send tasks to the wrong shard.
        for name in GOLDEN_8:
            for n in (2, 4, 8):
                assert shard_for(name, n) == route(name, n)

    def test_unicode_task_ids_route_stably(self):
        assert route("温度@机架-1", 8) == zlib.crc32(
            "温度@机架-1".encode("utf-8")) % 8

    def test_all_shards_reachable(self):
        # Sanity: the hash spreads — with enough tasks every shard of a
        # small cluster gets at least one.
        hit = {route(f"metric-{i}@host-{i % 11}", 8) for i in range(200)}
        assert hit == set(range(8))
