"""Scenario replay through the cluster must score like single-process.

The multi-process runtime is supposed to be a transparent deployment
choice: the same compiled scenario, fed through the routing tier and
sharded across workers, must produce the exact alerts, probe counts and
final intervals the in-process simulation produces. The inproc-backend
test runs in tier 1; the subprocess-backend end-to-end run is ``-m
chaos`` (real worker processes are slow to spawn under pytest-xdist).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (canned_timeline, compile_timeline,
                             replay_scenario, score_scenario,
                             simulate_replay)
from repro.testkit.faults import FaultSpec


@pytest.fixture(scope="module")
def compiled():
    timeline = canned_timeline("entropy-flood").scaled(fleet=0.05,
                                                       horizon=0.5)
    return compile_timeline(timeline, seed=7)


def test_cluster_replay_matches_simulation(compiled):
    live = replay_scenario(compiled, shards=4, cluster_workers=2,
                           cluster_backend="inproc")
    sim = simulate_replay(compiled, mode="volley")
    assert live.alert_steps == sim.alert_steps
    assert live.samples == sim.samples
    assert live.intervals == sim.intervals
    assert live.lost_updates == 0
    assert live.counters["shed"] == 0
    assert live.counters["offered"] == compiled.n_steps * compiled.n_tasks


def test_cluster_replay_scores_like_single_process(compiled):
    single = score_scenario(compiled, replay_scenario(compiled, shards=4))
    cluster = score_scenario(
        compiled, replay_scenario(compiled, shards=4, cluster_workers=2,
                                  cluster_backend="inproc"))
    # Trace events differ legitimately (the cluster reports
    # worker_started); every scored quantity must not.
    for key in ("detection", "misdetection", "cost", "passed"):
        assert single[key] == cluster[key], key


def test_faults_and_cluster_are_mutually_exclusive(compiled):
    spec = FaultSpec(drop_connection_rate=0.01)
    with pytest.raises(ConfigurationError):
        replay_scenario(compiled, fault_spec=spec, cluster_workers=2)


@pytest.mark.chaos
def test_subprocess_cluster_replay_scores_identically(compiled):
    single = score_scenario(compiled, replay_scenario(compiled, shards=4))
    cluster = score_scenario(
        compiled, replay_scenario(compiled, shards=4, cluster_workers=2,
                                  cluster_backend="subprocess"))
    for key in ("detection", "misdetection", "cost", "passed"):
        assert single[key] == cluster[key], key
