"""The coordinator trigger channel (``repro.triggers`` over the wire).

Three contracts:

* **Wire parity** — every ``trigger_*`` op answers byte-identically on a
  :class:`~repro.cluster.server.ClusterServer` and a single-process
  :class:`~repro.runtime.server.RuntimeServer`, including the error
  replies. Clients must not care which kind of server they reached.
* **Migration survival** — a *disarmed* guard's armed flag, watcher
  debounce state and suspension counter ride the shard snapshot across a
  live migration (fingerprint-verified), and the channel keeps routing
  edges to the moved shard afterwards.
* **SIGKILL survival** (``-m chaos``) — worker death restores the armed
  state from the recovery snapshot: a deliberately disarmed guard stays
  disarmed on the survivor and can still be re-armed by its trigger.
"""

from __future__ import annotations

import asyncio

import pytest

from cluster_utils import run_cluster

from repro.cluster.routing import route
from repro.config import RuntimeConfig
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer

SHARDS = 4

TRIGGER = "edge-conns"
# A target on a different shard than its trigger, so every edge crosses
# the coordinator (and, with two workers, usually a process boundary).
TARGET = next(f"dpi-flows-{i:02d}" for i in range(100)
              if route(f"dpi-flows-{i:02d}", SHARDS)
              != route(TRIGGER, SHARDS))

PLAN = {"target": TARGET, "trigger": TRIGGER, "elevation_level": 60.0,
        "suspend_interval": 6, "hysteresis": 0.1, "min_hold": 2}


def _spec(name: str) -> dict:
    return {"name": name, "threshold": 100.0, "error_allowance": 0.05,
            "max_interval": 4}


async def _drive(client, drain) -> list:
    """The parity schedule; returns every reply in order."""
    replies = []
    for name in (TRIGGER, TARGET):
        await client.register_task(**_spec(name))

    # Error surface first: missing plan, unknown task, invalid plan.
    replies.append(await client.request({"op": "trigger_install"}))
    replies.append(await client.request(
        {"op": "trigger_install",
         "plan": {**PLAN, "trigger": "ghost"}}))
    replies.append(await client.request(
        {"op": "trigger_install",
         "plan": {**PLAN, "suspend_interval": 1}}))
    replies.append(await client.request(
        {"op": "trigger_state", "task": "ghost"}))
    replies.append(await client.request(
        {"op": "trigger_arm", "task": "ghost"}))

    # Install (twice: re-install must be idempotent) and initial state.
    replies.append(await client.install_trigger_plan(PLAN))
    replies.append(await client.install_trigger_plan(PLAN))
    replies.append(await client.trigger_state(TARGET))
    replies.append(await client.trigger_state(TRIGGER))

    # Calm trigger stream -> disarm edge; drain before touching the
    # target so the edge has been pumped on both server kinds.
    await client.offer_batch([[TRIGGER, s, 10.0] for s in range(8)])
    await drain()
    replies.append(await client.trigger_plans())
    replies.append(await client.trigger_state(TARGET))

    # The disarmed guard idles at the suspend interval.
    await client.offer_batch([[TARGET, s, 30.0] for s in range(12)])
    await drain()
    replies.append(await client.trigger_plans())

    # Hot trigger -> re-arm; the guard resumes full-rate sampling.
    await client.offer_batch([[TRIGGER, 8 + i, 90.0] for i in range(3)])
    await drain()
    replies.append(await client.trigger_plans())
    replies.append(await client.trigger_state(TARGET))
    await client.offer_batch([[TARGET, 12 + i, 30.0] for i in range(6)])
    await drain()
    replies.append(await client.task_info(TARGET))

    # Explicit operator overrides.
    replies.append(await client.set_trigger_armed(TARGET, False))
    replies.append(await client.set_trigger_armed(TARGET, True))
    replies.append(await client.trigger_plans())
    return replies


class TestTriggerWireParity:
    def test_cluster_replies_match_runtime_byte_for_byte(self):
        async def cluster_scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                return await _drive(client, cluster.coordinator.drain)
            finally:
                await client.close()

        async def runtime_scenario():
            server = RuntimeServer(RuntimeConfig(port=0, shards=SHARDS))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)

            async def drain():
                for worker in server._workers:
                    await worker.drain()

            try:
                return await _drive(client, drain)
            finally:
                await client.close()
                await server.shutdown()

        observed = run_cluster(cluster_scenario, shards=SHARDS)
        expected = asyncio.run(runtime_scenario())
        assert len(observed) == len(expected)
        for i, (obs, exp) in enumerate(zip(observed, expected)):
            assert obs == exp, (i, obs, exp)
        # The schedule actually exercised the channel, not a no-op path.
        final = observed[-1]
        assert final["edges"]["disarm"] >= 2  # watch edge + override
        assert final["edges"]["arm"] >= 2
        assert final["suspensions"] > 0
        assert final["probe_cost_saved"] > 0.0


class TestTriggerMigration:
    def test_disarmed_guard_survives_live_migration(self):
        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for name in (TRIGGER, TARGET):
                    await client.register_task(**_spec(name))
                await client.install_trigger_plan(PLAN)
                await client.offer_batch(
                    [[TRIGGER, s, 10.0] for s in range(8)])
                await coord.drain()
                before = await client.trigger_state(TARGET)

                target_shard = route(TARGET, SHARDS)
                placement = await client.placement()
                source = next(w for w, e in placement["workers"].items()
                              if target_shard in e["shards"])
                dest = next(w for w in placement["workers"]
                            if w != source)
                migrated = await client.migrate(target_shard, dest)
                after = await client.trigger_state(TARGET)

                # The moved guard still defers probes...
                await client.offer_batch(
                    [[TARGET, s, 30.0] for s in range(12)])
                await coord.drain()
                plans_disarmed = await client.trigger_plans()
                # ...and still receives edges from the (unmoved) trigger.
                await client.offer_batch(
                    [[TRIGGER, 8 + i, 90.0] for i in range(3)])
                await coord.drain()
                rearmed = await client.trigger_state(TARGET)
                return migrated, before, after, plans_disarmed, rearmed
            finally:
                await client.close()

        migrated, before, after, plans_disarmed, rearmed = run_cluster(
            scenario, shards=SHARDS)
        assert migrated["ok"] and migrated["fingerprint_match"], migrated
        assert before["state"]["armed"] is False
        # Bit-identical restore: guard flag, suspensions and the armed
        # remote-trigger wiring all survive the move.
        assert after["state"] == before["state"]
        assert plans_disarmed["suspensions"] > 0
        assert rearmed["state"]["armed"] is True


@pytest.mark.chaos
class TestTriggerChaos:
    def test_disarmed_guard_survives_worker_sigkill(self):
        async def scenario(cluster):
            coord = cluster.coordinator
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                for name in (TRIGGER, TARGET):
                    await client.register_task(**_spec(name))
                await client.install_trigger_plan(PLAN)
                await client.offer_batch(
                    [[TRIGGER, s, 10.0] for s in range(8)])
                await coord.drain()
                before = await client.trigger_state(TARGET)
                # Pin the recovery snapshot with the guard disarmed.
                await coord.write_checkpoint()

                target_shard = route(TARGET, SHARDS)
                placement = await client.placement()
                victim = next(w for w, e in placement["workers"].items()
                              if target_shard in e["shards"])
                victim_shards = len(
                    placement["workers"][victim]["shards"])
                await coord.kill_worker(victim)
                deadline = asyncio.get_running_loop().time() + 15.0
                while coord.replacements < victim_shards:
                    if asyncio.get_running_loop().time() > deadline:
                        raise AssertionError("re-placement timed out")
                    await asyncio.sleep(0.02)
                await coord.drain()

                after = await client.trigger_state(TARGET)
                plans = await client.trigger_plans()
                # The restored guard can still be re-armed by its trigger
                # (whichever worker the trigger's shard now lives on).
                await client.offer_batch(
                    [[TRIGGER, 8 + i, 90.0] for i in range(3)])
                await coord.drain()
                rearmed = await client.trigger_state(TARGET)
                return before, after, plans, rearmed
            finally:
                await client.close()

        before, after, plans, rearmed = run_cluster(
            scenario, backend="subprocess", workers=2, shards=SHARDS,
            heartbeat_interval=0.1, heartbeat_misses=2,
            heartbeat_timeout=0.5)
        assert before["state"]["armed"] is False
        assert after["state"]["armed"] is False
        assert after["state"]["trigger"] == TRIGGER
        assert [p["target"] for p in plans["plans"]] == [TARGET]
        assert rearmed["state"]["armed"] is True
