"""Typed tasks through the cluster routing tier.

Quantile/entropy registration goes over the coordinator's JSON control
path and must behave wire-identically to the single-process runtime:
same reply shape (including the ``type`` field), same alerts, same
``task_info`` — the cluster forwards typed config entries verbatim to
whichever worker owns the shard.
"""

from __future__ import annotations

import asyncio

from cluster_utils import run_cluster

from repro.config import RuntimeConfig
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer

SHARDS = 4

TYPED_TASKS = [
    {"name": "p99", "threshold": 80.0, "type": "quantile",
     "quantile": 0.9, "sketch_window": 32, "error_allowance": 0.01,
     "max_interval": 6},
    {"name": "flow-entropy", "threshold": 1.5, "type": "entropy",
     "entropy_window": 16, "bin_width": 1.0, "direction": "lower",
     "error_allowance": 0.01, "max_interval": 6},
]


def _schedule() -> list[list]:
    updates = []
    for step in range(120):
        # Latency: calm at 40 ms, regression to 200 ms from step 60.
        updates.append(["p99", step, 40.0 if step < 60 else 200.0])
        # Source symbols: diverse, then a flood of one symbol.
        updates.append(["flow-entropy", step,
                        float(step % 16) if step < 60 else 7.0])
    return updates


async def _drive(client, drain) -> dict:
    registered = {}
    for task in TYPED_TASKS:
        reply = await client.register_task(**task)
        assert reply["ok"], reply
        registered[task["name"]] = reply["type"]
    for chunk_start in range(0, 240, 48):
        schedule = _schedule()[chunk_start:chunk_start + 48]
        reply = await client.offer_batch(schedule)
        assert reply["rejected"] == 0
    await drain()
    return {
        "types": registered,
        "info": {t["name"]: await client.task_info(t["name"])
                 for t in TYPED_TASKS},
        "alerts": {t["name"]: await client.alerts(t["name"])
                   for t in TYPED_TASKS},
    }


class TestClusterTypedParity:
    def test_typed_tasks_match_single_process_runtime(self):
        async def cluster_scenario(cluster):
            client = AsyncRuntimeClient(port=cluster.tcp_port)
            try:
                return await _drive(client, cluster.drain)
            finally:
                await client.close()

        async def runtime_scenario():
            server = RuntimeServer(RuntimeConfig(port=0, shards=SHARDS))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)

            async def drain():
                for worker in server._workers:
                    await worker.drain()

            try:
                return await _drive(client, drain)
            finally:
                await client.close()
                await server.shutdown()

        observed = run_cluster(cluster_scenario, shards=SHARDS)
        expected = asyncio.run(runtime_scenario())

        assert observed["types"] == {"p99": "quantile",
                                     "flow-entropy": "entropy"}
        assert observed["types"] == expected["types"]
        assert observed["alerts"] == expected["alerts"]
        for name in observed["info"]:
            obs, exp = observed["info"][name], expected["info"][name]
            for key in ("type", "estimate", "samples_taken", "interval",
                        "next_due", "alerts"):
                assert obs[key] == exp[key], (name, key)
        # Both predicates actually fired on their incident halves.
        assert any(step >= 60 for step, *_ in observed["alerts"]["p99"])
        assert any(step >= 60
                   for step, *_ in observed["alerts"]["flow-entropy"])
