"""Unit tests for the worker-side shard container (``WorkerHost``)."""

from __future__ import annotations

import asyncio

from repro.cluster.hosting import WorkerHost
from repro.runtime.checkpoint import state_fingerprint


def run(coro):
    return asyncio.run(coro)


TASK = {"name": "t", "threshold": 50.0, "error_allowance": 0.01,
        "max_interval": 8}


async def _host_with_task(shard_id: int = 3) -> WorkerHost:
    host = WorkerHost("w0", queue_depth=8)
    host.start()
    assert (await host.handle({"op": "w_add_shard",
                               "shard": shard_id}))["ok"]
    assert (await host.handle({"op": "w_register_task", "shard": shard_id,
                               "task": TASK}))["ok"]
    return host


class TestLifecycle:
    def test_ping_reports_hosted_shards(self):
        async def scenario():
            host = await _host_with_task(shard_id=5)
            reply = await host.handle({"op": "w_ping"})
            await host.close()
            return reply

        reply = run(scenario())
        assert reply["ok"] and reply["worker_id"] == "w0"
        assert reply["shards"] == [5]

    def test_duplicate_add_shard_is_an_error(self):
        async def scenario():
            host = await _host_with_task(shard_id=1)
            reply = await host.handle({"op": "w_add_shard", "shard": 1})
            await host.close()
            return reply

        reply = run(scenario())
        assert not reply["ok"] and reply["code"] == "shard-exists"

    def test_unknown_shard_ops_report_unknown_shard(self):
        async def scenario():
            host = WorkerHost("w0")
            host.start()
            replies = [await host.handle({"op": op, "shard": 9, "task": "t"})
                       for op in ("w_snapshot_shard", "w_drop_shard",
                                  "w_register_task", "w_task_info")]
            await host.close()
            return replies

        for reply in run(scenario()):
            assert not reply["ok"]

    def test_unknown_op_is_rejected(self):
        async def scenario():
            host = WorkerHost("w0")
            reply = await host.handle({"op": "launch_missiles"})
            await host.close()
            return reply

        reply = run(scenario())
        assert not reply["ok"] and reply["code"] == "unknown-op"


class TestDataPath:
    def test_offer_applies_and_counts(self):
        async def scenario():
            host = await _host_with_task(shard_id=2)
            offer = await host.handle({
                "op": "w_offer",
                "b": [[2, [["t", s, 10.0] for s in range(6)]]]})
            await host.handle({"op": "w_drain"})
            stats = await host.handle({"op": "w_stats"})
            info = await host.handle({"op": "w_task_info", "shard": 2,
                                      "task": "t"})
            await host.close()
            return offer, stats, info

        offer, stats, info = run(scenario())
        assert offer["accepted"] == 6 and offer["shed"] == 0
        shard = stats["shards"][0]
        assert shard["updates_offered"] == 6
        assert shard["updates_applied"] == 6
        assert "offered" not in shard  # canonical keys only
        assert info["samples_taken"] >= 1

    def test_offer_to_missing_shard_is_rejected_not_shed(self):
        async def scenario():
            host = await _host_with_task(shard_id=0)
            reply = await host.handle({
                "op": "w_offer", "b": [[7, [["t", 0, 1.0]]],
                                       [0, [["t", 0, 1.0]]]]})
            await host.close()
            return reply

        reply = run(scenario())
        assert reply["rejected"] == 1 and reply["accepted"] == 1
        assert reply["shed"] == 0

    def test_alerts_fire_through_hosted_shards(self):
        async def scenario():
            host = WorkerHost("w0")
            host.start()
            await host.handle({"op": "w_add_shard", "shard": 0})
            await host.handle({"op": "w_register_task", "shard": 0,
                               "task": {"name": "hot", "threshold": 10.0,
                                        "error_allowance": 0.0}})
            await host.handle({"op": "w_offer",
                               "b": [[0, [["hot", s, 99.0]
                                          for s in range(4)]]]})
            await host.handle({"op": "w_drain"})
            alerts = await host.handle({"op": "w_alerts", "shard": 0,
                                        "task": "hot"})
            stats = await host.handle({"op": "w_stats"})
            await host.close()
            return alerts, stats

        alerts, stats = run(scenario())
        assert len(alerts["alerts"]) == 4
        assert stats["shards"][0]["alerts_fired"] == 4


class TestSnapshotRestore:
    def test_snapshot_restore_roundtrip_is_bit_identical(self):
        async def scenario():
            source = await _host_with_task(shard_id=4)
            await source.handle({"op": "w_offer",
                                 "b": [[4, [["t", s, 30.0 + s]
                                            for s in range(20)]]]})
            snap = await source.handle({"op": "w_snapshot_shard",
                                        "shard": 4, "drain": True})
            target = WorkerHost("w1")
            target.start()
            restored = await target.handle({
                "op": "w_restore_shard", "shard": 4,
                "snapshot": snap["snapshot"], "counters": snap["counters"]})
            # Counters carried over with the shard.
            stats = await target.handle({"op": "w_stats"})
            await source.close()
            await target.close()
            return snap, restored, stats

        snap, restored, stats = run(scenario())
        assert snap["fingerprint"] == state_fingerprint(snap["snapshot"])
        assert restored["fingerprint"] == snap["fingerprint"]
        assert restored["tasks"] == 1
        assert stats["shards"][0]["updates_offered"] == 20

    def test_restored_shard_keeps_sampling_identically(self):
        async def scenario():
            a = await _host_with_task(shard_id=0)
            b = await _host_with_task(shard_id=0)
            updates = [["t", s, 20.0 + (s % 7)] for s in range(60)]
            # a sees the whole stream; b is snapshotted to c at step 30.
            await a.handle({"op": "w_offer", "b": [[0, updates]]})
            await b.handle({"op": "w_offer", "b": [[0, updates[:30]]]})
            snap = await b.handle({"op": "w_snapshot_shard", "shard": 0,
                                   "drain": True})
            c = WorkerHost("w2")
            c.start()
            await c.handle({"op": "w_restore_shard", "shard": 0,
                            "snapshot": snap["snapshot"],
                            "counters": snap["counters"]})
            await c.handle({"op": "w_offer", "b": [[0, updates[30:]]]})
            final_a = await a.handle({"op": "w_snapshot_shard", "shard": 0,
                                      "drain": True})
            final_c = await c.handle({"op": "w_snapshot_shard", "shard": 0,
                                      "drain": True})
            for host in (a, b, c):
                await host.close()
            return final_a, final_c

        final_a, final_c = run(scenario())
        assert final_a["fingerprint"] == final_c["fingerprint"]

    def test_drop_shard_removes_metric_series(self):
        async def scenario():
            host = await _host_with_task(shard_id=6)
            before = host.registry.snapshot()
            await host.handle({"op": "w_drop_shard", "shard": 6})
            after = host.registry.snapshot()
            await host.close()
            return before, after

        before, after = run(scenario())
        offered = "volley_updates_offered_total"
        assert any(s["labels"] == ["6"]
                   for s in before[offered]["series"])
        assert not any(s["labels"] == ["6"]
                       for s in after[offered]["series"])


class TestTelemetryOps:
    def test_raw_telemetry_carries_mergeable_sketches(self):
        async def scenario():
            host = await _host_with_task(shard_id=0)
            await host.handle({"op": "w_offer",
                               "b": [[0, [["t", s, 20.0]
                                          for s in range(10)]]]})
            await host.handle({"op": "w_drain"})
            reply = await host.handle({"op": "w_telemetry"})
            await host.close()
            return reply

        reply = run(scenario())
        hist = reply["metrics"]["volley_sampling_interval"]
        for series in hist["series"]:
            assert "sketch" in series["value"]

    def test_trace_cursor_drains_incrementally(self):
        async def scenario():
            host = await _host_with_task(shard_id=0)
            await host.handle({"op": "w_offer",
                               "b": [[0, [["t", s, 20.0]
                                          for s in range(40)]]]})
            await host.handle({"op": "w_drain"})
            first = await host.handle({"op": "w_trace", "since": 0})
            second = await host.handle({"op": "w_trace",
                                        "since": first["next_seq"]})
            await host.close()
            return first, second

        first, second = run(scenario())
        assert first["events"]  # interval adaptation emitted something
        assert second["events"] == []
