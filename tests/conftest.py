"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.task import TaskSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator so tests are deterministic."""
    return np.random.default_rng(12345)


@pytest.fixture
def quiet_trace(rng: np.random.Generator) -> np.ndarray:
    """A stable low-noise stream far below any interesting threshold."""
    return 10.0 + rng.normal(0.0, 0.5, 5000)


@pytest.fixture
def bursty_trace(rng: np.random.Generator) -> np.ndarray:
    """A quiet stream with two pronounced excursions above 100."""
    values = 10.0 + rng.normal(0.0, 0.5, 5000)
    for start in (1500, 3500):
        ramp = np.linspace(0.0, 1.0, 20)
        shape = np.concatenate([ramp, np.ones(30), ramp[::-1]])
        shape = shape * (150.0 + rng.normal(0.0, 2.0, shape.size))
        values[start:start + shape.size] = np.maximum(
            values[start:start + shape.size], shape)
    return values


@pytest.fixture
def simple_task() -> TaskSpec:
    """A generic upper-threshold task used across tests."""
    return TaskSpec(threshold=100.0, error_allowance=0.01, max_interval=10)
