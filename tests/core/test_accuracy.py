"""Tests for accuracy accounting against periodic ground truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import (alert_episodes, evaluate_sampling,
                                 truth_alert_indices)
from repro.exceptions import TraceError
from repro.types import ThresholdDirection


class TestTruthAlertIndices:
    def test_upper(self):
        values = np.array([1.0, 5.0, 2.0, 7.0, 7.0])
        assert truth_alert_indices(values, 4.0).tolist() == [1, 3, 4]

    def test_strict_comparison(self):
        values = np.array([4.0, 4.0001])
        assert truth_alert_indices(values, 4.0).tolist() == [1]

    def test_lower_direction(self):
        values = np.array([1.0, 5.0, 2.0, 7.0])
        idx = truth_alert_indices(values, 4.0, ThresholdDirection.LOWER)
        assert idx.tolist() == [0, 2]

    def test_rejects_bad_traces(self):
        with pytest.raises(TraceError):
            truth_alert_indices(np.array([]), 1.0)
        with pytest.raises(TraceError):
            truth_alert_indices(np.array([[1.0, 2.0]]), 1.0)
        with pytest.raises(TraceError):
            truth_alert_indices(np.array([1.0, np.nan]), 1.0)


class TestAlertEpisodes:
    def test_empty(self):
        assert alert_episodes(np.array([], dtype=int)) == []

    def test_single_episode(self):
        assert alert_episodes(np.array([3, 4, 5])) == [(3, 5)]

    def test_multiple_episodes(self):
        assert alert_episodes(np.array([1, 2, 7, 9, 10])) == [
            (1, 2), (7, 7), (9, 10)]


class TestEvaluateSampling:
    def test_full_sampling_detects_everything(self):
        values = np.array([0.0, 10.0, 0.0, 10.0, 10.0])
        result = evaluate_sampling(values, 5.0, list(range(5)))
        assert result.misdetection_rate == 0.0
        assert result.sampling_ratio == 1.0
        assert result.truth_alerts == 3
        assert result.detected_alerts == 3
        assert result.truth_episodes == 2
        assert result.detected_episodes == 2

    def test_missed_alerts_counted(self):
        values = np.array([0.0, 10.0, 10.0, 0.0])
        # Sampling skips index 1; detects only index 2.
        result = evaluate_sampling(values, 5.0, [0, 2])
        assert result.truth_alerts == 2
        assert result.detected_alerts == 1
        assert result.misdetection_rate == pytest.approx(0.5)
        assert result.detected_episodes == 1
        assert result.mean_detection_delay == pytest.approx(1.0)

    def test_no_truth_alerts_means_zero_misdetection(self):
        values = np.zeros(10)
        result = evaluate_sampling(values, 5.0, [0, 5])
        assert result.truth_alerts == 0
        assert result.misdetection_rate == 0.0
        assert result.cost_saving == pytest.approx(0.8)

    def test_duplicate_samples_deduplicated(self):
        values = np.array([0.0, 10.0])
        result = evaluate_sampling(values, 5.0, [0, 0, 1, 1])
        assert result.samples_taken == 2

    def test_out_of_bounds_sample_rejected(self):
        values = np.zeros(5)
        with pytest.raises(TraceError):
            evaluate_sampling(values, 1.0, [0, 5])
        with pytest.raises(TraceError):
            evaluate_sampling(values, 1.0, [-1])

    def test_lower_direction(self):
        values = np.array([5.0, 1.0, 5.0])
        result = evaluate_sampling(values, 2.0, [0, 1, 2],
                                   ThresholdDirection.LOWER)
        assert result.truth_alerts == 1
        assert result.detected_alerts == 1

    def test_episode_detection_delay(self):
        values = np.zeros(20)
        values[10:16] = 10.0  # one 6-step episode
        result = evaluate_sampling(values, 5.0, [0, 13, 19])
        assert result.truth_episodes == 1
        assert result.detected_episodes == 1
        assert result.mean_detection_delay == pytest.approx(3.0)
        assert result.detected_alerts == 1
        assert result.truth_alerts == 6
