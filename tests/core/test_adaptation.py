"""Tests for the monitor-level violation-likelihood adaptation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.types import ThresholdDirection


def drive(sampler, values, start=0):
    """Feed values on the grid the sampler asks for; return sampled steps."""
    t = start
    sampled = []
    n = len(values)
    while t < n:
        sampled.append(t)
        decision = sampler.observe(float(values[t]), t)
        t += max(1, decision.next_interval)
    return sampled


class TestAdaptationConfig:
    @pytest.mark.parametrize("kwargs", [
        dict(slack_ratio=-0.1),
        dict(slack_ratio=1.0),
        dict(patience=0),
        dict(min_samples=1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptationConfig(**kwargs)

    def test_paper_defaults(self):
        config = AdaptationConfig()
        assert config.slack_ratio == 0.2
        assert config.patience == 20
        assert config.stats_restart == 1000


class TestWarmup:
    def test_stays_at_default_until_min_samples(self, simple_task):
        sampler = ViolationLikelihoodSampler(
            simple_task, AdaptationConfig(min_samples=10))
        for t in range(9):
            decision = sampler.observe(1.0, t)
            assert decision.next_interval == 1
            assert decision.misdetection_bound == 1.0


class TestGrowth:
    def test_grows_after_patience_on_stable_stream(self, simple_task):
        config = AdaptationConfig(patience=5, min_samples=5)
        sampler = ViolationLikelihoodSampler(simple_task, config)
        # Constant stream at 1.0 vs threshold 100: beta ~ 0 once warm.
        for t in range(60):
            sampler.observe(1.0, t)
        assert sampler.interval > 1
        assert sampler.grow_events >= 1

    def test_never_exceeds_max_interval(self):
        task = TaskSpec(threshold=100.0, error_allowance=0.05,
                        max_interval=3)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=2, min_samples=5))
        t = 0
        for _ in range(200):
            decision = sampler.observe(1.0, t)
            t += max(1, decision.next_interval)
        assert sampler.interval <= 3

    def test_zero_error_allowance_is_periodic(self, rng):
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        sampler = ViolationLikelihoodSampler(task)
        values = rng.normal(0.0, 0.001, 300)
        sampled = drive(sampler, values)
        assert sampled == list(range(300))


class TestReset:
    def test_resets_when_value_approaches_threshold(self):
        task = TaskSpec(threshold=100.0, error_allowance=0.01,
                        max_interval=10)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=3, min_samples=5))
        t = 0
        for _ in range(100):
            decision = sampler.observe(1.0, t)
            t += max(1, decision.next_interval)
        assert sampler.interval > 1
        # A jump right next to the threshold must force the default rate.
        decision = sampler.observe(99.5, t)
        assert decision.next_interval == 1
        assert decision.reset
        assert sampler.reset_events >= 1

    def test_violation_flag(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        assert not sampler.observe(50.0, 0).violation
        assert sampler.observe(150.0, 1).violation


class TestLowerThreshold:
    def test_lower_direction_adapts_and_flags(self):
        task = TaskSpec(threshold=0.0, error_allowance=0.05,
                        direction=ThresholdDirection.LOWER,
                        max_interval=10)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=3, min_samples=5))
        t = 0
        for _ in range(100):
            decision = sampler.observe(100.0, t)
            t += max(1, decision.next_interval)
        assert sampler.interval > 1
        decision = sampler.observe(-1.0, t)
        assert decision.violation


class TestBookkeeping:
    def test_time_must_advance(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        sampler.observe(1.0, 5)
        with pytest.raises(ValueError):
            sampler.observe(1.0, 5)
        with pytest.raises(ValueError):
            sampler.observe(1.0, 3)

    def test_error_allowance_setter_validates(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        sampler.error_allowance = 0.5
        assert sampler.error_allowance == 0.5
        with pytest.raises(ConfigurationError):
            sampler.error_allowance = -0.1
        with pytest.raises(ConfigurationError):
            sampler.error_allowance = 1.1

    def test_observation_counter(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        for t in range(7):
            sampler.observe(1.0, t)
        assert sampler.observations == 7


class TestCoordinationStats:
    def test_drain_returns_none_when_empty(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        assert sampler.drain_coordination_stats() is None

    def test_drain_resets_accumulation(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        for t in range(30):
            sampler.observe(1.0, t)
        stats = sampler.drain_coordination_stats()
        assert stats is not None
        assert stats.observations == 30
        assert stats.avg_error_needed > 0.0
        assert sampler.drain_coordination_stats() is None

    def test_marginal_reduction_zero_at_cap(self):
        task = TaskSpec(threshold=1000.0, error_allowance=0.1,
                        max_interval=1)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=2, min_samples=5))
        for t in range(40):
            sampler.observe(1.0, t)
        stats = sampler.drain_coordination_stats()
        assert stats is not None
        # max_interval=1 means the monitor can never grow: r_i must be 0.
        assert stats.avg_cost_reduction == 0.0
        assert stats.yield_per_error == 0.0

    def test_yield_infinite_when_error_needed_zero(self):
        from repro.core.adaptation import CoordinationStats
        stats = CoordinationStats(avg_cost_reduction=0.5,
                                  avg_error_needed=0.0, observations=10)
        assert stats.yield_per_error == float("inf")


class TestStatisticsIntegration:
    def test_delta_estimate_uses_elapsed_steps(self, simple_task):
        sampler = ViolationLikelihoodSampler(simple_task)
        sampler.observe(0.0, 0)
        sampler.observe(10.0, 5)  # delta_hat = 10/5 = 2
        assert sampler.stats.mean == pytest.approx(2.0)

    def test_stats_restart_respected(self):
        task = TaskSpec(threshold=1e9, error_allowance=0.01)
        config = AdaptationConfig(stats_restart=100, min_samples=5)
        sampler = ViolationLikelihoodSampler(task, config)
        for t in range(150):
            sampler.observe(float(t % 3), t)
        assert sampler.stats.restarts >= 1
