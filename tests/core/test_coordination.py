"""Tests for error-allowance allocation policies."""

from __future__ import annotations

import pytest

from repro.core.adaptation import CoordinationStats
from repro.core.coordination import (AdaptiveAllocation, AllocationPolicy,
                                     EvenAllocation)
from repro.exceptions import ConfigurationError, CoordinationError


def report(r=0.25, e=0.001, n=100):
    return CoordinationStats(avg_cost_reduction=r, avg_error_needed=e,
                             observations=n)


class TestInitial:
    def test_even_initial_split(self):
        policy = EvenAllocation()
        alloc = policy.initial(4, 0.01)
        assert alloc == (0.0025, 0.0025, 0.0025, 0.0025)

    def test_initial_rejects_zero_monitors(self):
        with pytest.raises(ConfigurationError):
            EvenAllocation().initial(0, 0.01)

    def test_base_class_reallocate_not_implemented(self):
        with pytest.raises(NotImplementedError):
            AllocationPolicy().reallocate((0.01,), [report()], 0.01)


class TestEvenAllocation:
    def test_always_even(self):
        policy = EvenAllocation()
        current = (0.001, 0.009)
        update = policy.reallocate(current, [report(), report()], 0.01)
        assert update.allocations == (0.005, 0.005)
        assert not update.reallocated

    def test_mismatched_reports_raise(self):
        with pytest.raises(CoordinationError):
            EvenAllocation().reallocate((0.01,), [report(), report()], 0.01)


class TestAdaptiveAllocation:
    def test_single_monitor_gets_everything(self):
        policy = AdaptiveAllocation()
        update = policy.reallocate((0.01,), [report()], 0.01)
        assert update.allocations == (0.01,)

    def test_silent_monitor_keeps_allocation(self):
        policy = AdaptiveAllocation()
        current = (0.004, 0.006)
        update = policy.reallocate(current, [report(), None], 0.01)
        assert update.allocations == current
        assert not update.reallocated

    def test_uniform_yields_throttle(self):
        policy = AdaptiveAllocation(uniform_spread=0.1)
        current = (0.004, 0.006)
        reports = [report(r=0.25, e=0.002), report(r=0.25, e=0.002)]
        update = policy.reallocate(current, reports, 0.01)
        assert not update.reallocated
        assert update.allocations == current

    def test_allowance_flows_to_higher_yield(self):
        policy = AdaptiveAllocation(step=1.0, uniform_spread=0.0)
        current = (0.005, 0.005)
        # Monitor 0 needs err ~0.004 to grow (binding); monitor 1 is
        # hopeless (needs 0.5). Allowance must shift toward monitor 0.
        reports = [report(r=0.5, e=0.004), report(r=0.5, e=0.5)]
        update = policy.reallocate(current, reports, 0.01)
        assert update.reallocated
        assert update.allocations[0] > update.allocations[1]
        assert sum(update.allocations) == pytest.approx(0.01)

    def test_gradual_step(self):
        full = AdaptiveAllocation(step=1.0, uniform_spread=0.0)
        slow = AdaptiveAllocation(step=0.1, uniform_spread=0.0)
        current = (0.005, 0.005)
        reports = [report(r=0.5, e=0.004), report(r=0.5, e=0.5)]
        target = full.reallocate(current, reports, 0.01).allocations
        step = slow.reallocate(current, reports, 0.01).allocations
        # One slow round moves exactly 10% of the way to the target.
        assert step[0] == pytest.approx(0.005 + 0.1 * (target[0] - 0.005))

    def test_floor_respected(self):
        policy = AdaptiveAllocation(step=1.0, uniform_spread=0.0,
                                    min_share_fraction=0.01)
        current = (0.005, 0.005)
        reports = [report(r=0.5, e=0.004), report(r=0.0, e=0.5)]
        update = policy.reallocate(current, reports, 0.01)
        assert min(update.allocations) >= 0.01 * 0.01 - 1e-12

    def test_tiny_error_needed_does_not_blow_up(self):
        policy = AdaptiveAllocation(step=1.0, uniform_spread=0.0)
        current = (0.005, 0.005)
        # Monitor 0's bound underflowed to ~0; its yield must stay finite
        # and must not capture the entire budget.
        reports = [report(r=0.01, e=1e-15), report(r=0.5, e=0.004)]
        update = policy.reallocate(current, reports, 0.01)
        assert update.allocations[1] > update.allocations[0]

    def test_zero_yields_keep_current(self):
        policy = AdaptiveAllocation()
        current = (0.004, 0.006)
        reports = [report(r=0.0), report(r=0.0)]
        update = policy.reallocate(current, reports, 0.01)
        assert update.allocations == current
        assert not update.reallocated

    def test_zero_budget(self):
        policy = AdaptiveAllocation()
        update = policy.reallocate((0.0, 0.0), [report(), report()], 0.0)
        assert update.allocations == (0.0, 0.0)

    def test_conserves_total(self):
        policy = AdaptiveAllocation(step=1.0, uniform_spread=0.0)
        current = (0.002, 0.003, 0.005)
        reports = [report(r=0.5, e=0.001), report(r=0.2, e=0.01),
                   report(r=0.05, e=0.2)]
        update = policy.reallocate(current, reports, 0.01)
        assert sum(update.allocations) == pytest.approx(0.01, rel=1e-6)

    @pytest.mark.parametrize("kwargs", [
        dict(min_share_fraction=0.0),
        dict(min_share_fraction=1.0),
        dict(uniform_spread=-0.1),
        dict(step=0.0),
        dict(step=1.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptiveAllocation(**kwargs)
