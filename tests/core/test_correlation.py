"""Tests for multi-task state correlation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.correlation import (CorrelationDetector, CorrelationPlanner,
                                    TaskProfile, TriggeredSampler)
from repro.core.task import TaskSpec
from repro.baselines.periodic import PeriodicSampler
from repro.exceptions import ConfigurationError, CorrelationError


def correlated_pair(rng, n=4000, n_events=5):
    """Build (trigger, target) streams where the trigger leads violations.

    The trigger (think: response time) rises during every event; the
    target (think: traffic difference) violates only during events.
    Events occupy well under the detector's elevation quantile so the
    elevation level separates baseline from event values.
    """
    trigger = 10.0 + rng.normal(0.0, 0.5, n)
    target = 5.0 + rng.normal(0.0, 0.5, n)
    starts = np.linspace(100, n - 100, n_events).astype(int)
    for s in starts:
        trigger[s:s + 60] += 30.0
        target[s + 5:s + 55] += 100.0
    return trigger, target


class TestCorrelationDetector:
    def test_detects_necessary_condition(self, rng):
        trigger, target = correlated_pair(rng)
        detector = CorrelationDetector(elevation_quantile=0.9,
                                       min_support=10)
        evidence = detector.analyze(trigger, target, target_threshold=50.0)
        assert evidence.necessary_condition_score > 0.95
        assert evidence.support > 100
        assert evidence.pearson > 0.5
        assert 0.0 < evidence.elevated_fraction < 0.5

    def test_uncorrelated_scores_low(self, rng):
        trigger = rng.normal(0.0, 1.0, 4000)
        target = np.zeros(4000)
        target[rng.choice(4000, size=50, replace=False)] = 100.0
        detector = CorrelationDetector(elevation_quantile=0.9,
                                       min_support=10)
        evidence = detector.analyze(trigger, target, 50.0)
        # The trigger is elevated ~10% of the time, so by chance the score
        # should be near 0.1, far from a necessary condition.
        assert evidence.necessary_condition_score < 0.5

    def test_lag_window_catches_leading_trigger(self, rng):
        n = 2000
        trigger = rng.normal(1.0, 0.1, n)
        target = np.zeros(n)
        for s in (300, 900, 1500):
            trigger[s:s + 10] = 100.0
            target[s + 12:s + 22] = 100.0  # violates after trigger cooled
        strict = CorrelationDetector(elevation_quantile=0.95,
                                     min_support=5, lag_window=0)
        lagged = CorrelationDetector(elevation_quantile=0.95,
                                     min_support=5, lag_window=15)
        s0 = strict.analyze(trigger, target, 50.0)
        s1 = lagged.analyze(trigger, target, 50.0)
        assert s1.necessary_condition_score > s0.necessary_condition_score

    def test_insufficient_support(self, rng):
        trigger = rng.normal(0.0, 1.0, 100)
        target = np.zeros(100)
        target[5] = 10.0
        detector = CorrelationDetector(min_support=10)
        with pytest.raises(CorrelationError):
            detector.analyze(trigger, target, 5.0)

    def test_misaligned_histories(self):
        detector = CorrelationDetector()
        with pytest.raises(CorrelationError):
            detector.analyze(np.zeros(10), np.zeros(11), 1.0)

    @pytest.mark.parametrize("kwargs", [
        dict(elevation_quantile=0.0),
        dict(elevation_quantile=1.0),
        dict(min_support=0),
        dict(lag_window=-1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CorrelationDetector(**kwargs)


class TestCorrelationPlanner:
    def test_plans_cheap_trigger_for_expensive_target(self, rng):
        trigger, target = correlated_pair(rng)
        tasks = [
            TaskProfile(task_id="response-time", values=trigger,
                        threshold=35.0, cost_per_sample=1.0),
            TaskProfile(task_id="ddos", values=target, threshold=50.0,
                        cost_per_sample=50.0),
        ]
        planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1)
        rules = planner.plan(tasks)
        assert len(rules) == 1
        rule = rules[0]
        assert rule.target_id == "ddos"
        assert rule.trigger_id == "response-time"
        assert rule.expected_saving > 0.0
        assert rule.estimated_loss <= 0.1

    def test_no_rule_for_uncorrelated_tasks(self, rng):
        tasks = [
            TaskProfile(task_id="a", values=rng.normal(0, 1, 2000),
                        threshold=3.0, cost_per_sample=1.0),
            TaskProfile(task_id="b",
                        values=np.where(rng.random(2000) < 0.02, 10.0, 0.0),
                        threshold=5.0, cost_per_sample=10.0),
        ]
        planner = CorrelationPlanner(min_score=0.95)
        assert planner.plan(tasks) == []

    def test_trigger_must_be_cheaper(self, rng):
        trigger, target = correlated_pair(rng)
        tasks = [
            TaskProfile(task_id="t", values=trigger, threshold=35.0,
                        cost_per_sample=50.0),
            TaskProfile(task_id="g", values=target, threshold=50.0,
                        cost_per_sample=50.0),
        ]
        assert CorrelationPlanner(min_score=0.9).plan(tasks) == []

    @pytest.mark.parametrize("kwargs", [
        dict(min_score=0.0),
        dict(min_score=1.5),
        dict(loss_budget=-0.1),
        dict(suspend_interval=1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            CorrelationPlanner(**kwargs)


class TestTriggeredSampler:
    def test_suspends_when_trigger_cold(self):
        inner = PeriodicSampler(interval=1)
        sampler = TriggeredSampler(inner, elevation_level=50.0,
                                   suspend_interval=10)
        decision = sampler.observe(1.0, 0, trigger_value=10.0)
        assert decision.next_interval == 10
        assert sampler.suspended_steps == 1

    def test_resumes_when_trigger_hot(self):
        inner = PeriodicSampler(interval=1)
        sampler = TriggeredSampler(inner, elevation_level=50.0,
                                   suspend_interval=10)
        decision = sampler.observe(1.0, 0, trigger_value=80.0)
        assert decision.next_interval == 1

    def test_missing_trigger_counts_as_hot(self):
        inner = PeriodicSampler(interval=1)
        sampler = TriggeredSampler(inner, elevation_level=50.0)
        decision = sampler.observe(1.0, 0, trigger_value=None)
        assert decision.next_interval == 1

    def test_inner_statistics_stay_warm(self, simple_task):
        from repro.core.adaptation import ViolationLikelihoodSampler
        inner = ViolationLikelihoodSampler(
            simple_task, AdaptationConfig(min_samples=5))
        sampler = TriggeredSampler(inner, elevation_level=50.0,
                                   suspend_interval=10)
        t = 0
        for _ in range(20):
            decision = sampler.observe(1.0, t, trigger_value=0.0)
            t += max(1, decision.next_interval)
        assert inner.stats.count > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TriggeredSampler(PeriodicSampler(), 1.0, suspend_interval=0)
