"""Additional edge cases for the correlation machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.correlation import (CorrelationDetector, CorrelationPlanner,
                                    TaskProfile)
from repro.core.task import TaskSpec
from repro.core.windowed import (AggregateKind, WindowedTaskSpec,
                                 run_windowed_adaptive)


class TestDetectorEdges:
    def test_anti_correlated_trigger_scores_near_zero(self, rng):
        n = 4000
        trigger = 10.0 + rng.normal(0.0, 0.5, n)
        target = 5.0 + rng.normal(0.0, 0.5, n)
        starts = np.linspace(100, n - 100, 5).astype(int)
        for s in starts:
            trigger[s:s + 60] -= 8.0    # trigger DROPS during events
            target[s + 5:s + 55] += 100.0
        detector = CorrelationDetector(elevation_quantile=0.9,
                                       min_support=10)
        evidence = detector.analyze(trigger, target, 50.0)
        assert evidence.necessary_condition_score < 0.3
        assert evidence.pearson < 0.0

    def test_constant_trigger_has_zero_pearson(self, rng):
        n = 2000
        trigger = np.full(n, 3.0)
        target = rng.normal(0.0, 1.0, n)
        target[::100] = 50.0
        detector = CorrelationDetector(min_support=5)
        evidence = detector.analyze(trigger, target, 10.0)
        assert evidence.pearson == 0.0

    def test_short_history_rejected(self):
        from repro.exceptions import CorrelationError

        detector = CorrelationDetector()
        with pytest.raises(CorrelationError):
            detector.analyze(np.array([1.0]), np.array([1.0]), 0.0)


class TestPlannerEdges:
    def test_best_of_multiple_triggers_wins(self, rng):
        """Two candidate triggers; the one idle more often saves more and
        must be chosen."""
        n = 6000
        target = 5.0 + rng.normal(0.0, 0.5, n)
        tight = 10.0 + rng.normal(0.0, 0.5, n)   # elevated rarely
        loose = 10.0 + rng.normal(0.0, 0.5, n)   # elevated often
        starts = np.linspace(200, n - 200, 6).astype(int)
        for s in starts:
            target[s + 5:s + 55] += 100.0
            tight[s:s + 60] += 30.0
        for s in range(0, n, 120):               # loose fires all the time
            loose[s:s + 60] += 30.0
        for s in starts:
            loose[s:s + 60] += 30.0

        planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1)
        rules = planner.plan([
            TaskProfile(task_id="tight", values=tight, threshold=25.0,
                        cost_per_sample=1.0),
            TaskProfile(task_id="loose", values=loose, threshold=25.0,
                        cost_per_sample=1.0),
            TaskProfile(task_id="target", values=target, threshold=50.0,
                        cost_per_sample=40.0),
        ])
        target_rules = [r for r in rules if r.target_id == "target"]
        assert target_rules
        assert target_rules[0].trigger_id == "tight"


class TestWindowedKinds:
    def test_sum_and_min_kinds_run_end_to_end(self, rng):
        raw = 10.0 + rng.normal(0.0, 1.0, 4000)
        raw[3000:3050] += 50.0
        for kind, direction_threshold in (
                (AggregateKind.SUM, 200.0),
                (AggregateKind.MIN, 100.0)):
            spec = WindowedTaskSpec(
                task=TaskSpec(threshold=direction_threshold,
                              error_allowance=0.01, max_interval=10),
                window=10, kind=kind)
            result = run_windowed_adaptive(raw, spec)
            assert 0.0 < result.sampling_ratio <= 1.0
            assert result.aggregated.size == raw.size
