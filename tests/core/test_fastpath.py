"""Deterministic equivalence tests for the fused fast path (DESIGN.md S27).

The sampler, the service and the runtime shard each expose a reference
surface (``observe`` / ``offer``) and an optimised twin (``observe_fast``
/ ``run_trace`` / ``offer_fast``). These tests drive both surfaces over
the same inputs and require identical decision streams and identical
final state; the property suite (``tests/properties``) explores the same
contract under randomised traces and mid-run retuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.correlation import TriggeredSampler
from repro.core.online_stats import WindowedStatistics
from repro.core.task import TaskSpec
from repro.experiments.runner import run_adaptive, run_sampler_on_trace
from repro.service import MonitoringService


def _trace(n: int = 4_000, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    base = np.cumsum(rng.normal(0.0, 0.4, n)) * 0.05 + 10.0
    spikes = np.zeros(n)
    spikes[rng.integers(0, n, n // 100)] = rng.uniform(5.0, 15.0, n // 100)
    return base + spikes


def _task(threshold: float = 14.0, err: float = 0.05) -> TaskSpec:
    return TaskSpec(threshold=threshold, error_allowance=err,
                    max_interval=8, name="fastpath")


class TestObserveFastEquivalence:
    @pytest.mark.parametrize("estimator", ["chebyshev", "gaussian"])
    def test_streams_identical_at_every_grid_point(self, estimator):
        trace = _trace()
        config = AdaptationConfig(estimator=estimator)
        ref = ViolationLikelihoodSampler(_task(), config)
        fast = ViolationLikelihoodSampler(_task(), config)
        for t, value in enumerate(trace.tolist()):
            decision = ref.observe(value, t)
            interval = fast.observe_fast(value, t)
            assert interval == decision.next_interval
            assert fast.last_misdetection_bound == \
                decision.misdetection_bound
            assert fast.last_grew == decision.grew
            assert fast.last_reset == decision.reset
            assert fast.last_violation == decision.violation
        assert ref.state_dict() == fast.state_dict()

    def test_streams_identical_on_schedule(self):
        trace = _trace()
        config = AdaptationConfig()
        ref = ViolationLikelihoodSampler(_task(), config)
        fast = ViolationLikelihoodSampler(_task(), config)
        values = trace.tolist()
        t = 0
        while t < trace.size:
            decision = ref.observe(values[t], t)
            assert fast.observe_fast(values[t], t) == decision.next_interval
            t += max(1, decision.next_interval)
        assert ref.state_dict() == fast.state_dict()

    def test_observe_reports_last_outcome_too(self):
        sampler = ViolationLikelihoodSampler(_task())
        decision = sampler.observe(20.0, 0)
        assert decision.violation and sampler.last_violation
        assert sampler.last_misdetection_bound == \
            decision.misdetection_bound

    def test_mixing_surfaces_is_allowed(self):
        trace = _trace()
        values = trace.tolist()
        mixed = ViolationLikelihoodSampler(_task())
        ref = ViolationLikelihoodSampler(_task())
        for t, value in enumerate(values[:500]):
            ref.observe(value, t)
            if t % 2:
                mixed.observe(value, t)
            else:
                mixed.observe_fast(value, t)
        assert mixed.state_dict() == ref.state_dict()

    def test_time_must_advance(self):
        sampler = ViolationLikelihoodSampler(_task())
        sampler.observe_fast(1.0, 5)
        with pytest.raises(ValueError):
            sampler.observe_fast(1.0, 5)

    def test_no_dict_allocated(self):
        sampler = ViolationLikelihoodSampler(_task())
        assert not hasattr(sampler, "__dict__")


class TestRunTraceEquivalence:
    @pytest.mark.parametrize("estimator", ["chebyshev", "gaussian"])
    def test_matches_reference_driver(self, estimator):
        trace = _trace()
        task = _task()
        config = AdaptationConfig(estimator=estimator)
        reference = run_sampler_on_trace(
            trace, ViolationLikelihoodSampler(task, config), task.threshold,
            task.direction)
        fast = run_adaptive(trace, task, config)
        assert np.array_equal(reference.sampled_indices,
                              fast.sampled_indices)
        assert np.array_equal(reference.intervals, fast.intervals)
        assert reference.accuracy == fast.accuracy

    def test_matches_stepwise_observe_fast(self):
        trace = _trace()
        values = trace.tolist()
        batch = ViolationLikelihoodSampler(_task())
        stepwise = ViolationLikelihoodSampler(_task())
        sampled, intervals = batch.run_trace(values)
        expect_sampled, expect_intervals = [], []
        t = 0
        while t < len(values):
            expect_sampled.append(t)
            step = max(1, stepwise.observe_fast(values[t], t))
            expect_intervals.append(step)
            t += step
        assert sampled == expect_sampled
        assert intervals == expect_intervals
        assert batch.state_dict() == stepwise.state_dict()

    def test_record_intervals_off(self):
        values = _trace().tolist()
        sampler = ViolationLikelihoodSampler(_task())
        sampled, intervals = sampler.run_trace(values,
                                               record_intervals=False)
        assert intervals == []
        assert sampled[0] == 0

    def test_restartable_mid_trace(self):
        # Driving two half traces through run_trace equals one full drive.
        values = _trace().tolist()
        half = len(values) // 2
        whole = ViolationLikelihoodSampler(_task())
        split = ViolationLikelihoodSampler(_task())
        sampled_w, _ = whole.run_trace(values)
        sampled_a, _ = split.run_trace(values[:half])
        # Resume exactly where the first drive would sample next.
        resume = sampled_a[-1] + max(1, split.interval)
        sampled_b, _ = split.run_trace(values, start=resume)
        assert sampled_a + sampled_b == sampled_w
        assert whole.state_dict() == split.state_dict()

    def test_custom_stats_fall_back_to_stepwise(self):
        # A non-OnlineStatistics estimator must still drive correctly.
        values = _trace().tolist()[:800]
        task = _task()
        batch = ViolationLikelihoodSampler(task,
                                           stats=WindowedStatistics(64))
        stepwise = ViolationLikelihoodSampler(task,
                                              stats=WindowedStatistics(64))
        sampled, intervals = batch.run_trace(values)
        t = 0
        expect = []
        while t < len(values):
            expect.append(t)
            t += max(1, stepwise.observe_fast(values[t], t))
        assert sampled == expect

    def test_non_finite_value_raises_and_state_matches(self):
        values = [1.0, 2.0, float("nan"), 3.0]
        batch = ViolationLikelihoodSampler(_task())
        stepwise = ViolationLikelihoodSampler(_task())
        with pytest.raises(ValueError):
            batch.run_trace(values)
        with pytest.raises(ValueError):
            for t, v in enumerate(values):
                stepwise.observe_fast(v, t)
        assert batch.state_dict() == stepwise.state_dict()


class TestTriggeredFastEquivalence:
    def test_triggered_sampler_fast_matches_reference(self):
        trace = _trace()
        trigger = _trace(seed=11) - 2.0
        task = _task()
        ref_inner = ViolationLikelihoodSampler(task)
        fast_inner = ViolationLikelihoodSampler(task)
        ref = TriggeredSampler(ref_inner, elevation_level=10.0,
                               suspend_interval=6)
        fast = TriggeredSampler(fast_inner, elevation_level=10.0,
                                suspend_interval=6)
        values, trig = trace.tolist(), trigger.tolist()
        t = 0
        while t < trace.size:
            decision = ref.observe(values[t], t, trig[t])
            interval = fast.observe_fast(values[t], t, trig[t])
            assert interval == decision.next_interval
            t += max(1, decision.next_interval)
        assert ref_inner.state_dict() == fast_inner.state_dict()


class TestServiceOfferFast:
    def _service_pair(self):
        return MonitoringService(), MonitoringService()

    def test_offer_fast_matches_offer(self):
        ref_svc, fast_svc = self._service_pair()
        task = _task()
        for svc in (ref_svc, fast_svc):
            svc.add_task("cpu", task, window=3)
        trace = _trace(1_500).tolist()
        for step, value in enumerate(trace):
            decision = ref_svc.offer("cpu", value, step)
            interval = fast_svc.offer_fast("cpu", value, step)
            if decision is None:
                assert interval is None
            else:
                assert interval == decision.next_interval
        assert ref_svc.samples_taken("cpu") == fast_svc.samples_taken("cpu")
        assert ref_svc.interval("cpu") == fast_svc.interval("cpu")
        assert [a.time_index for a in ref_svc.alerts("cpu")] == \
            [a.time_index for a in fast_svc.alerts("cpu")]

    def test_offer_fast_with_trigger_gating(self):
        ref_svc, fast_svc = self._service_pair()
        for svc in (ref_svc, fast_svc):
            svc.add_task("net", _task(threshold=1e9))
            svc.add_task("disk", _task())
            svc.add_trigger("disk", "net", elevation_level=12.0,
                            suspend_interval=5)
        trace = _trace(1_200).tolist()
        trigger = _trace(1_200, seed=9).tolist()
        for step in range(len(trace)):
            ref_svc.offer("net", trigger[step], step)
            fast_svc.offer_fast("net", trigger[step], step)
            decision = ref_svc.offer("disk", trace[step], step)
            interval = fast_svc.offer_fast("disk", trace[step], step)
            assert (interval is None) == (decision is None)
            if decision is not None:
                assert interval == decision.next_interval
        assert ref_svc.next_due("disk") == fast_svc.next_due("disk")
        assert ref_svc.samples_taken("disk") == \
            fast_svc.samples_taken("disk")

    def test_offer_fast_snapshots_identical(self):
        ref_svc, fast_svc = self._service_pair()
        for svc in (ref_svc, fast_svc):
            svc.add_task("mem", _task())
        for step, value in enumerate(_trace(800).tolist()):
            ref_svc.offer("mem", value, step)
            fast_svc.offer_fast("mem", value, step)
        assert ref_svc.snapshot() == fast_svc.snapshot()


class TestShardApplyFastPath:
    def test_apply_counts_consumed_and_rejected(self):
        from repro.runtime.shard import ShardWorker

        service = MonitoringService()
        service.add_task("cpu", _task())
        worker = ShardWorker(0, service, queue_depth=4)
        updates = [["cpu", 0, 10.0], ["cpu", 1, 10.5],
                   ["nope", 2, 1.0], ["cpu", "bad-step", 1.0]]
        worker.apply(updates)
        assert worker.applied == 2
        assert worker.consumed >= 1
        assert worker.rejected == 2
        assert service.samples_taken("cpu") == worker.consumed

    def test_apply_matches_reference_offer(self):
        from repro.runtime.shard import ShardWorker

        fast_svc = MonitoringService()
        fast_svc.add_task("cpu", _task())
        worker = ShardWorker(0, fast_svc, queue_depth=4)
        ref_svc = MonitoringService()
        ref_svc.add_task("cpu", _task())
        trace = _trace(1_000).tolist()
        worker.apply([["cpu", step, value]
                      for step, value in enumerate(trace)])
        for step, value in enumerate(trace):
            ref_svc.offer("cpu", value, step)
        assert ref_svc.snapshot() == fast_svc.snapshot()
