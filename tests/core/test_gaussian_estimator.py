"""Tests for the Gaussian estimator variant (estimator ablation)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.likelihood import (gaussian_misdetection_estimate,
                                   gaussian_step_violation_estimate,
                                   misdetection_bound,
                                   step_violation_bound)
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError

finite = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)
positive_std = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)


class TestGaussianStepEstimate:
    def test_known_value_at_zero_gap(self):
        # gap == 0 means the threshold equals the mean extrapolation:
        # exactly half the normal mass violates.
        p = gaussian_step_violation_estimate(0.0, 0.0, 0.0, 1.0, 1)
        assert p == pytest.approx(0.5)

    def test_three_sigma(self):
        p = gaussian_step_violation_estimate(0.0, 3.0, 0.0, 1.0, 1)
        assert p == pytest.approx(0.00135, abs=1e-4)

    def test_zero_std_degenerate(self):
        assert gaussian_step_violation_estimate(0.0, 10.0, 1.0, 0.0, 5) \
            == 0.0
        assert gaussian_step_violation_estimate(0.0, 10.0, 1.0, 0.0, 10) \
            == 1.0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            gaussian_step_violation_estimate(0.0, 1.0, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            gaussian_step_violation_estimate(0.0, 1.0, 0.0, -1.0, 1)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           steps=st.integers(min_value=1, max_value=20))
    @settings(max_examples=150, deadline=None)
    def test_property_chebyshev_dominates_gaussian(self, value, threshold,
                                                   mean, std, steps):
        """Cantelli is a valid bound for the normal: always >= the tail."""
        bound = step_violation_bound(value, threshold, mean, std, steps)
        exact = gaussian_step_violation_estimate(value, threshold, mean,
                                                 std, steps)
        assert bound >= exact - 1e-12

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           interval=st.integers(min_value=1, max_value=10))
    @settings(max_examples=100, deadline=None)
    def test_property_misdetection_dominance_and_range(self, value,
                                                       threshold, mean,
                                                       std, interval):
        exact = gaussian_misdetection_estimate(value, threshold, mean, std,
                                               interval)
        bound = misdetection_bound(value, threshold, mean, std, interval)
        assert 0.0 <= exact <= 1.0
        assert bound >= exact - 1e-12


class TestGaussianSampler:
    def test_config_accepts_estimator(self):
        config = AdaptationConfig(estimator="gaussian")
        assert config.estimator == "gaussian"
        with pytest.raises(ConfigurationError):
            AdaptationConfig(estimator="cauchy")

    def test_gaussian_is_more_aggressive(self, rng):
        values = 10.0 + rng.normal(0.0, 1.0, 4000)
        task = TaskSpec(threshold=40.0, error_allowance=0.01,
                        max_interval=10)

        def samples(estimator):
            sampler = ViolationLikelihoodSampler(
                task, AdaptationConfig(estimator=estimator))
            t, count = 0, 0
            while t < values.size:
                decision = sampler.observe(float(values[t]), t)
                t += max(1, decision.next_interval)
                count += 1
            return count

        assert samples("gaussian") <= samples("chebyshev")
