"""Unit and property tests for violation-likelihood estimation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.likelihood import (cantelli_upper_bound, misdetection_bound,
                                   misdetection_bound_profile,
                                   step_violation_bound)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive_std = st.floats(min_value=1e-6, max_value=1e4,
                         allow_nan=False, allow_infinity=False)


class TestCantelli:
    def test_vacuous_for_non_positive_k(self):
        assert cantelli_upper_bound(0.0) == 1.0
        assert cantelli_upper_bound(-3.0) == 1.0

    def test_known_values(self):
        assert cantelli_upper_bound(1.0) == pytest.approx(0.5)
        assert cantelli_upper_bound(3.0) == pytest.approx(0.1)

    def test_decreasing_in_k(self):
        ks = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
        bounds = [cantelli_upper_bound(k) for k in ks]
        assert bounds == sorted(bounds, reverse=True)


class TestStepViolationBound:
    def test_far_below_threshold_is_small(self):
        bound = step_violation_bound(value=0.0, threshold=100.0,
                                     mean=0.0, std=1.0, steps=1)
        assert bound == pytest.approx(1.0 / (1.0 + 100.0 ** 2))

    def test_above_threshold_is_one(self):
        assert step_violation_bound(150.0, 100.0, 0.0, 1.0, 1) == 1.0

    def test_zero_std_deterministic(self):
        # Extrapolation stays below the threshold: impossible to violate.
        assert step_violation_bound(0.0, 10.0, 1.0, 0.0, 5) == 0.0
        # Extrapolation reaches the threshold: certain under the model.
        assert step_violation_bound(0.0, 10.0, 1.0, 0.0, 10) == 1.0

    def test_positive_drift_raises_bound(self):
        no_drift = step_violation_bound(0.0, 50.0, 0.0, 2.0, 5)
        drift = step_violation_bound(0.0, 50.0, 5.0, 2.0, 5)
        assert drift > no_drift

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            step_violation_bound(0.0, 1.0, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            step_violation_bound(0.0, 1.0, 0.0, -1.0, 1)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           steps=st.integers(min_value=1, max_value=50))
    @settings(max_examples=150, deadline=None)
    def test_property_in_unit_interval(self, value, threshold, mean, std,
                                       steps):
        bound = step_violation_bound(value, threshold, mean, std, steps)
        assert 0.0 <= bound <= 1.0

    @given(value=finite, threshold=finite, mean=finite, std=positive_std)
    @settings(max_examples=100, deadline=None)
    def test_property_more_steps_not_tighter_without_drift(
            self, value, threshold, mean, std):
        # With zero drift the uncertainty only grows with horizon.
        b1 = step_violation_bound(value, threshold, 0.0, std, 1)
        b5 = step_violation_bound(value, threshold, 0.0, std, 5)
        assert b5 >= b1 - 1e-12


class TestMisdetectionBound:
    def test_increases_with_interval(self):
        bounds = [misdetection_bound(0.0, 50.0, 0.0, 2.0, i)
                  for i in range(1, 11)]
        for earlier, later in zip(bounds, bounds[1:]):
            assert later >= earlier

    def test_interval_one_equals_step_bound(self):
        b = misdetection_bound(0.0, 50.0, 0.5, 2.0, 1)
        s = step_violation_bound(0.0, 50.0, 0.5, 2.0, 1)
        assert b == pytest.approx(s)

    def test_certain_when_any_step_is_certain(self):
        # Drift carries the value over the threshold within the interval.
        assert misdetection_bound(0.0, 10.0, 2.0, 0.0, 10) == 1.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            misdetection_bound(0.0, 1.0, 0.0, 1.0, 0)

    def test_profile_matches_individual_bounds(self):
        profile = misdetection_bound_profile(0.0, 50.0, 0.2, 2.0, 8)
        assert len(profile) == 8
        for i, value in enumerate(profile, start=1):
            assert value == pytest.approx(
                misdetection_bound(0.0, 50.0, 0.2, 2.0, i))

    def test_profile_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            misdetection_bound_profile(0.0, 1.0, 0.0, 1.0, 0)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           interval=st.integers(min_value=1, max_value=20))
    @settings(max_examples=150, deadline=None)
    def test_property_in_unit_interval_and_monotone(self, value, threshold,
                                                    mean, std, interval):
        bound = misdetection_bound(value, threshold, mean, std, interval)
        assert 0.0 <= bound <= 1.0
        if interval > 1:
            smaller = misdetection_bound(value, threshold, mean, std,
                                         interval - 1)
            assert bound >= smaller - 1e-12

    @given(std=positive_std, interval=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_property_farther_threshold_never_larger(self, std, interval):
        near = misdetection_bound(0.0, 10.0, 0.0, std, interval)
        far = misdetection_bound(0.0, 1000.0, 0.0, std, interval)
        assert far <= near + 1e-12
