"""Unit and property tests for violation-likelihood estimation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.likelihood import (cantelli_upper_bound,
                                   gaussian_misdetection_estimate,
                                   gaussian_misdetection_estimate_fused,
                                   max_admissible_interval,
                                   misdetection_bound,
                                   misdetection_bound_fused,
                                   misdetection_bound_profile,
                                   step_violation_bound)

finite = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
positive_std = st.floats(min_value=1e-6, max_value=1e4,
                         allow_nan=False, allow_infinity=False)


class TestCantelli:
    def test_vacuous_for_non_positive_k(self):
        assert cantelli_upper_bound(0.0) == 1.0
        assert cantelli_upper_bound(-3.0) == 1.0

    def test_known_values(self):
        assert cantelli_upper_bound(1.0) == pytest.approx(0.5)
        assert cantelli_upper_bound(3.0) == pytest.approx(0.1)

    def test_decreasing_in_k(self):
        ks = [0.1, 0.5, 1.0, 2.0, 5.0, 10.0]
        bounds = [cantelli_upper_bound(k) for k in ks]
        assert bounds == sorted(bounds, reverse=True)


class TestStepViolationBound:
    def test_far_below_threshold_is_small(self):
        bound = step_violation_bound(value=0.0, threshold=100.0,
                                     mean=0.0, std=1.0, steps=1)
        assert bound == pytest.approx(1.0 / (1.0 + 100.0 ** 2))

    def test_above_threshold_is_one(self):
        assert step_violation_bound(150.0, 100.0, 0.0, 1.0, 1) == 1.0

    def test_zero_std_deterministic(self):
        # Extrapolation stays below the threshold: impossible to violate.
        assert step_violation_bound(0.0, 10.0, 1.0, 0.0, 5) == 0.0
        # Extrapolation reaches the threshold: certain under the model.
        assert step_violation_bound(0.0, 10.0, 1.0, 0.0, 10) == 1.0

    def test_positive_drift_raises_bound(self):
        no_drift = step_violation_bound(0.0, 50.0, 0.0, 2.0, 5)
        drift = step_violation_bound(0.0, 50.0, 5.0, 2.0, 5)
        assert drift > no_drift

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            step_violation_bound(0.0, 1.0, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            step_violation_bound(0.0, 1.0, 0.0, -1.0, 1)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           steps=st.integers(min_value=1, max_value=50))
    @settings(max_examples=150, deadline=None)
    def test_property_in_unit_interval(self, value, threshold, mean, std,
                                       steps):
        bound = step_violation_bound(value, threshold, mean, std, steps)
        assert 0.0 <= bound <= 1.0

    @given(value=finite, threshold=finite, mean=finite, std=positive_std)
    @settings(max_examples=100, deadline=None)
    def test_property_more_steps_not_tighter_without_drift(
            self, value, threshold, mean, std):
        # With zero drift the uncertainty only grows with horizon.
        b1 = step_violation_bound(value, threshold, 0.0, std, 1)
        b5 = step_violation_bound(value, threshold, 0.0, std, 5)
        assert b5 >= b1 - 1e-12


class TestMisdetectionBound:
    def test_increases_with_interval(self):
        bounds = [misdetection_bound(0.0, 50.0, 0.0, 2.0, i)
                  for i in range(1, 11)]
        for earlier, later in zip(bounds, bounds[1:]):
            assert later >= earlier

    def test_interval_one_equals_step_bound(self):
        b = misdetection_bound(0.0, 50.0, 0.5, 2.0, 1)
        s = step_violation_bound(0.0, 50.0, 0.5, 2.0, 1)
        assert b == pytest.approx(s)

    def test_certain_when_any_step_is_certain(self):
        # Drift carries the value over the threshold within the interval.
        assert misdetection_bound(0.0, 10.0, 2.0, 0.0, 10) == 1.0

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            misdetection_bound(0.0, 1.0, 0.0, 1.0, 0)

    def test_profile_matches_individual_bounds(self):
        profile = misdetection_bound_profile(0.0, 50.0, 0.2, 2.0, 8)
        assert len(profile) == 8
        for i, value in enumerate(profile, start=1):
            assert value == pytest.approx(
                misdetection_bound(0.0, 50.0, 0.2, 2.0, i))

    def test_profile_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            misdetection_bound_profile(0.0, 1.0, 0.0, 1.0, 0)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           interval=st.integers(min_value=1, max_value=20))
    @settings(max_examples=150, deadline=None)
    def test_property_in_unit_interval_and_monotone(self, value, threshold,
                                                    mean, std, interval):
        bound = misdetection_bound(value, threshold, mean, std, interval)
        assert 0.0 <= bound <= 1.0
        if interval > 1:
            smaller = misdetection_bound(value, threshold, mean, std,
                                         interval - 1)
            assert bound >= smaller - 1e-12

    @given(std=positive_std, interval=st.integers(min_value=1, max_value=10))
    @settings(max_examples=50, deadline=None)
    def test_property_farther_threshold_never_larger(self, std, interval):
        near = misdetection_bound(0.0, 10.0, 0.0, std, interval)
        far = misdetection_bound(0.0, 1000.0, 0.0, std, interval)
        assert far <= near + 1e-12


class TestFusedKernels:
    """The fused kernels must be bit-for-bit equal to the reference."""

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           interval=st.integers(min_value=1, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_chebyshev_fused_bit_equal(self, value, threshold, mean, std,
                                       interval):
        reference = misdetection_bound(value, threshold, mean, std, interval)
        fused = misdetection_bound_fused(value, threshold, mean, std,
                                         interval)
        assert fused == reference  # exact, not approx

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           interval=st.integers(min_value=1, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_gaussian_fused_bit_equal(self, value, threshold, mean, std,
                                      interval):
        reference = gaussian_misdetection_estimate(value, threshold, mean,
                                                   std, interval)
        fused = gaussian_misdetection_estimate_fused(value, threshold, mean,
                                                     std, interval)
        assert fused == reference

    @given(value=finite, threshold=finite, mean=finite,
           interval=st.integers(min_value=1, max_value=20))
    @settings(max_examples=100, deadline=None)
    def test_zero_std_bit_equal(self, value, threshold, mean, interval):
        assert misdetection_bound_fused(value, threshold, mean, 0.0,
                                        interval) == \
            misdetection_bound(value, threshold, mean, 0.0, interval)

    def test_fused_rejects_bad_args(self):
        with pytest.raises(ValueError):
            misdetection_bound_fused(0.0, 1.0, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            misdetection_bound_fused(0.0, 1.0, 0.0, -1.0, 1)
        with pytest.raises(ValueError):
            gaussian_misdetection_estimate_fused(0.0, 1.0, 0.0, 1.0, 0)
        with pytest.raises(ValueError):
            gaussian_misdetection_estimate_fused(0.0, 1.0, 0.0, -1.0, 1)


class TestProfilePinning:
    def test_pins_to_exactly_one_after_saturation(self):
        # Positive drift reaches the threshold deterministically: once a
        # step's bound hits 1 the profile must be exactly 1.0 from there on.
        profile = misdetection_bound_profile(0.0, 10.0, 5.0, 1e-9, 8)
        assert any(v == 1.0 for v in profile)
        first_one = profile.index(1.0)
        assert profile[first_one:] == [1.0] * (len(profile) - first_one)

    def test_profile_stays_in_unit_interval(self):
        profile = misdetection_bound_profile(0.0, 3.0, 1.0, 0.5, 12)
        assert all(0.0 <= v <= 1.0 for v in profile)

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           max_interval=st.integers(min_value=1, max_value=15))
    @settings(max_examples=100, deadline=None)
    def test_profile_matches_point_queries_exactly(self, value, threshold,
                                                   mean, std, max_interval):
        profile = misdetection_bound_profile(value, threshold, mean, std,
                                             max_interval)
        for i, entry in enumerate(profile, start=1):
            assert entry == misdetection_bound(value, threshold, mean, std, i)


class TestMaxAdmissibleInterval:
    def _oracle(self, value, threshold, mean, std, err, max_interval):
        """Largest I with beta(I) <= err by exhaustive point queries."""
        best = 0
        for i in range(1, max_interval + 1):
            if misdetection_bound(value, threshold, mean, std, i) <= err:
                best = i
        return best

    @given(value=finite, threshold=finite, mean=finite, std=positive_std,
           err=st.floats(min_value=0.0, max_value=0.999, allow_nan=False),
           max_interval=st.integers(min_value=1, max_value=15))
    @settings(max_examples=200, deadline=None)
    def test_matches_probing_oracle(self, value, threshold, mean, std, err,
                                    max_interval):
        got = max_admissible_interval(value, threshold, mean, std, err,
                                      max_interval)
        assert got == self._oracle(value, threshold, mean, std, err,
                                   max_interval)

    @given(value=finite, threshold=finite, mean=finite, err=st.floats(
        min_value=0.0, max_value=0.999, allow_nan=False),
        max_interval=st.integers(min_value=1, max_value=15))
    @settings(max_examples=100, deadline=None)
    def test_matches_probing_oracle_zero_std(self, value, threshold, mean,
                                             err, max_interval):
        got = max_admissible_interval(value, threshold, mean, 0.0, err,
                                      max_interval)
        assert got == self._oracle(value, threshold, mean, 0.0, err,
                                   max_interval)

    def test_violating_value_returns_zero(self):
        assert max_admissible_interval(5.0, 5.0, 0.0, 1.0, 0.1, 10) == 0
        assert max_admissible_interval(9.0, 5.0, 0.0, 1.0, 0.1, 10) == 0

    def test_err_one_admits_everything_up_to_cap(self):
        assert max_admissible_interval(0.0, 10.0, 0.0, 1.0, 1.0, 7) == 7
        with pytest.raises(ValueError):
            max_admissible_interval(0.0, 10.0, 0.0, 1.0, 1.0, None)

    def test_unbounded_deterministic_trace_raises(self):
        # std == 0, non-positive drift: never violates, no finite answer.
        with pytest.raises(ValueError):
            max_admissible_interval(0.0, 10.0, -1.0, 0.0, 0.1, None)

    def test_unbounded_with_drift_is_finite(self):
        # std == 0, positive drift: crossing at gap0/mean.
        got = max_admissible_interval(0.0, 10.0, 2.0, 0.0, 0.1, None)
        assert got == 4  # gap0 - 5*2 = 0, not > 0 -> last admissible is 4

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            max_admissible_interval(0.0, 1.0, 0.0, -1.0, 0.1, 10)
        with pytest.raises(ValueError):
            max_admissible_interval(0.0, 1.0, 0.0, 1.0, 1.5, 10)
        with pytest.raises(ValueError):
            max_admissible_interval(0.0, 1.0, 0.0, 1.0, 0.1, 0)
