"""Unit and property tests for the online delta statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.online_stats import OnlineStatistics, WindowedStatistics
from repro.exceptions import ConfigurationError


class TestOnlineStatistics:
    def test_empty_state(self):
        stats = OnlineStatistics()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.std == 0.0

    def test_single_observation(self):
        stats = OnlineStatistics()
        stats.update(5.0)
        assert stats.count == 1
        assert stats.mean == 5.0
        assert stats.variance == 0.0

    def test_matches_numpy_population_moments(self, rng):
        data = rng.normal(3.0, 2.0, 400)
        stats = OnlineStatistics(restart_after=None)
        for x in data:
            stats.update(float(x))
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data)))
        assert stats.std == pytest.approx(float(np.std(data)))

    def test_restart_after_threshold(self):
        stats = OnlineStatistics(restart_after=100, min_fresh=5)
        for i in range(101):
            stats.update(float(i % 7))
        assert stats.restarts == 1
        assert stats.count == 0
        assert stats.total_count == 101

    def test_stale_estimates_served_after_restart(self):
        stats = OnlineStatistics(restart_after=50, min_fresh=10)
        for _ in range(51):
            stats.update(4.0)
        # Freshly restarted: stale mean still served.
        assert stats.count == 0
        assert stats.mean == pytest.approx(4.0)
        assert stats.effective_count == 51
        # A couple of fresh samples do not yet displace the stale value.
        stats.update(100.0)
        assert stats.mean == pytest.approx(4.0)
        # After min_fresh samples the fresh statistics take over.
        for _ in range(9):
            stats.update(100.0)
        assert stats.mean == pytest.approx(100.0)
        assert stats.effective_count == 10

    def test_reset_clears_everything(self):
        stats = OnlineStatistics(restart_after=10)
        for _ in range(25):
            stats.update(1.0)
        stats.reset()
        assert stats.count == 0
        assert stats.total_count == 0
        assert stats.mean == 0.0

    def test_rejects_non_finite(self):
        stats = OnlineStatistics()
        with pytest.raises(ValueError):
            stats.update(float("nan"))
        with pytest.raises(ValueError):
            stats.update(float("inf"))

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            OnlineStatistics(restart_after=1)
        with pytest.raises(ConfigurationError):
            OnlineStatistics(min_fresh=0)

    def test_variance_never_negative(self):
        stats = OnlineStatistics(restart_after=None)
        # Nearly identical values provoke floating-point cancellation.
        for _ in range(1000):
            stats.update(1e9 + 1e-7)
        assert stats.variance >= 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=2, max_size=200))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_reference(self, data):
        stats = OnlineStatistics(restart_after=None)
        for x in data:
            stats.update(x)
        assert math.isclose(stats.mean, float(np.mean(data)),
                            rel_tol=1e-9, abs_tol=1e-6)
        assert math.isclose(stats.variance, float(np.var(data)),
                            rel_tol=1e-6, abs_tol=1e-3)


class TestWindowedStatistics:
    def test_window_eviction(self):
        stats = WindowedStatistics(window=3)
        for x in (1.0, 2.0, 3.0, 4.0):
            stats.update(x)
        assert stats.count == 3
        assert stats.mean == pytest.approx(3.0)

    def test_matches_numpy_over_window(self, rng):
        data = rng.normal(0.0, 1.0, 100)
        stats = WindowedStatistics(window=32)
        for x in data:
            stats.update(float(x))
        tail = data[-32:]
        assert stats.mean == pytest.approx(float(np.mean(tail)))
        assert stats.variance == pytest.approx(float(np.var(tail)),
                                               abs=1e-9)

    def test_empty_window(self):
        stats = WindowedStatistics(window=4)
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_reset(self):
        stats = WindowedStatistics(window=4)
        stats.update(10.0)
        stats.reset()
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            WindowedStatistics(window=1)

    def test_rejects_non_finite(self):
        stats = WindowedStatistics(window=4)
        with pytest.raises(ValueError):
            stats.update(float("nan"))
