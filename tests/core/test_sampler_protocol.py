"""Protocol conformance: every sampler is interchangeable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (OracleSampler, PeriodicSampler,
                             RandomIntervalSampler)
from repro.core.adaptation import ViolationLikelihoodSampler
from repro.core.correlation import TriggeredSampler
from repro.core.sampler import SamplingScheme
from repro.core.task import TaskSpec
from repro.experiments.runner import run_sampler_on_trace


def all_schemes(rng):
    task = TaskSpec(threshold=10.0, error_allowance=0.01, max_interval=5)
    values = np.zeros(50)
    return [
        ViolationLikelihoodSampler(task),
        PeriodicSampler(interval=2),
        OracleSampler(values, 10.0, heartbeat=5),
        RandomIntervalSampler(3.0, rng),
        TriggeredSampler(PeriodicSampler(), elevation_level=1.0),
    ]


def test_every_scheme_satisfies_protocol(rng):
    for scheme in all_schemes(rng):
        assert isinstance(scheme, SamplingScheme), type(scheme)


def test_every_scheme_drives_the_runner(rng):
    values = np.zeros(50)
    for scheme in all_schemes(rng):
        result = run_sampler_on_trace(values, scheme, 10.0)
        assert result.sampled_indices[0] == 0
        assert (np.diff(result.sampled_indices) >= 1).all()


def test_decisions_report_positive_intervals(rng):
    for scheme in all_schemes(rng):
        decision = scheme.observe(0.0, 0)
        assert decision.next_interval >= 1
        assert 0.0 <= decision.misdetection_bound <= 1.0


def test_oracle_supports_lower_direction():
    from repro.types import ThresholdDirection

    values = np.full(30, 5.0)
    values[20] = -1.0
    oracle = OracleSampler(values, 0.0,
                           direction=ThresholdDirection.LOWER)
    result = run_sampler_on_trace(values, oracle, 0.0,
                                  ThresholdDirection.LOWER)
    assert result.misdetection_rate == 0.0
    assert 20 in result.sampled_indices
    assert result.accuracy.samples_taken <= 3


def test_protocol_rejects_non_samplers():
    class NotASampler:
        pass

    assert not isinstance(NotASampler(), SamplingScheme)
