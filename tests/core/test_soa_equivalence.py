"""Bit-equivalence of the SoA sampler engine against the scalar sampler.

Formalises the DESIGN.md S31 contract at test scale: a service running
columnar (``soa=True``, :meth:`MonitoringService.offer_columns`) must end
in exactly the state — snapshots, alert logs, counters — of a service
stepping the same stream through the scalar
:class:`ViolationLikelihoodSampler` path. The 1M+-point version of the
same check is ``python -m repro.experiments.bench_soa`` (CI gate).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.experiments.bench_soa import (ESTIMATORS, _alert_log,
                                         _task_counters, run_equivalence)
from repro.service import MonitoringService

POINTS = 24_000
TASKS = 64


class TestStreamEquivalence:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_round_robin_stream_is_bit_identical(self, estimator):
        result = run_equivalence(POINTS, TASKS, estimator, batch=1024)
        assert result["snapshots_equal"], estimator
        assert result["alerts_equal"], estimator
        assert result["counters_equal"], estimator
        assert result["identical"]
        # The stream must actually exercise alerting for the check to
        # mean anything.
        assert result["alerts"] > 0

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_uneven_batches_do_not_change_state(self, estimator):
        # Batch boundaries are an implementation detail: odd-sized
        # batches land on the same final state as the reference split.
        even = run_equivalence(6_000, 16, estimator, batch=512)
        odd = run_equivalence(6_000, 16, estimator, batch=777)
        assert even["identical"] and odd["identical"]
        assert even["alerts"] == odd["alerts"]


def _service(estimator="chebyshev", soa=False, tasks=4):
    service = MonitoringService(AdaptationConfig(estimator=estimator),
                                soa=soa)
    for i in range(tasks):
        name = f"mix-{i}"
        service.add_task(name, TaskSpec(threshold=100.0,
                                        error_allowance=0.02,
                                        max_interval=8, name=name))
    return service


class TestMixedPaths:
    def test_interleaved_offer_fast_and_offer_columns(self):
        # One service fed through both entry points must match a scalar
        # service fed the identical stream: offer_fast on an SoA-backed
        # task routes into the engine row, so the two are one state.
        rng = np.random.default_rng(11)
        values = rng.normal(85.0, 12.0, 400)
        scalar = _service(soa=False)
        mixed = _service(soa=True)
        rows = np.asarray([mixed.soa_row_for(f"mix-{i}")
                           for i in range(4)], dtype=np.int64)
        assert (rows >= 0).all()
        for lo in range(0, 400, 40):
            chunk = values[lo:lo + 40]
            step0 = lo // 4
            for j, value in enumerate(chunk[:20].tolist()):
                scalar.offer_fast(f"mix-{j % 4}", value, step0 + j // 4)
                mixed.offer_fast(f"mix-{j % 4}", value, step0 + j // 4)
            tail = chunk[20:]
            positions = np.arange(20, 40, dtype=np.int64)
            steps = step0 + positions // 4
            for j, value in enumerate(tail.tolist()):
                scalar.offer_fast(f"mix-{(20 + j) % 4}", value,
                                  int(steps[j]))
            applied, _, rejected, _ = mixed.offer_columns(
                rows[positions % 4], steps, tail, names=None)
            assert applied == 20 and rejected == 0
        assert scalar.snapshot() == mixed.snapshot()
        assert _alert_log(scalar) == _alert_log(mixed)
        assert _task_counters(scalar) == _task_counters(mixed)

    def test_offer_columns_requires_soa_service(self):
        with pytest.raises(ConfigurationError, match="SoA"):
            _service(soa=False).offer_columns([0], [0], [1.0])

    def test_negative_rows_fall_back_by_name(self):
        service = _service(soa=True)
        applied, _, rejected, _ = service.offer_columns(
            [-1, -1], [0, 0], [50.0, 60.0],
            names=["mix-0", "no-such-task"])
        assert applied == 1
        assert rejected == 1
        assert service.observations("mix-0") == 1


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_snapshot_restore_continuation_stays_identical(self, estimator):
        # Run half the stream, snapshot the SoA service, restore it both
        # ways, finish the stream on all three — every continuation must
        # land on the same final state. This is the "checkpoints stay
        # v2-compatible" half of the S31 contract.
        rng = np.random.default_rng(23)
        values = rng.normal(82.0, 15.0, 2_000)
        tasks = 8
        scalar = _service(estimator, soa=False, tasks=tasks)
        vector = _service(estimator, soa=True, tasks=tasks)

        def drive(service, lo, hi, columnar):
            if columnar:
                rows = np.asarray(
                    [service.soa_row_for(f"mix-{i}") for i in range(tasks)],
                    dtype=np.int64)
                positions = np.arange(lo, hi, dtype=np.int64)
                service.offer_columns(rows[positions % tasks],
                                      positions // tasks,
                                      values[lo:hi], names=None)
            else:
                for i, value in enumerate(values[lo:hi].tolist(), lo):
                    service.offer_fast(f"mix-{i % tasks}", value, i // tasks)

        drive(scalar, 0, 1_000, columnar=False)
        drive(vector, 0, 1_000, columnar=True)
        snap = vector.snapshot()
        assert snap == scalar.snapshot()

        restored_soa = MonitoringService.restore(snap, soa=True)
        restored_scalar = MonitoringService.restore(snap, soa=False)
        drive(scalar, 1_000, 2_000, columnar=False)
        drive(vector, 1_000, 2_000, columnar=True)
        drive(restored_soa, 1_000, 2_000, columnar=True)
        drive(restored_scalar, 1_000, 2_000, columnar=False)

        final = scalar.snapshot()
        assert vector.snapshot() == final
        assert restored_soa.snapshot() == final
        assert restored_scalar.snapshot() == final
        assert (_task_counters(restored_soa)
                == _task_counters(restored_scalar)
                == _task_counters(scalar))


class TestEligibility:
    def test_trigger_wiring_evicts_rows_and_stays_equivalent(self):
        # add_trigger pulls both ends out of the engine; behaviour after
        # eviction must still match a never-SoA service.
        rng = np.random.default_rng(5)
        values = rng.normal(90.0, 10.0, 240)
        scalar = _service(soa=False)
        vector = _service(soa=True)
        assert vector.soa_row_for("mix-0") >= 0
        for service in (scalar, vector):
            service.add_trigger("mix-0", "mix-1", elevation_level=2.0)
        assert vector.soa_row_for("mix-0") == -1
        assert vector.soa_row_for("mix-1") == -1
        assert vector.soa_row_for("mix-2") >= 0
        for i, value in enumerate(values.tolist()):
            scalar.offer_fast(f"mix-{i % 4}", value, i // 4)
            vector.offer_fast(f"mix-{i % 4}", value, i // 4)
        assert scalar.snapshot() == vector.snapshot()
        assert _alert_log(scalar) == _alert_log(vector)

    def test_windowed_task_never_adopted(self):
        service = MonitoringService(AdaptationConfig(), soa=True)
        service.add_task("win", TaskSpec(threshold=100.0,
                                         error_allowance=0.05, name="win"),
                         window=3)
        assert service.soa_row_for("win") == -1
