"""Unit tests for the sketch-backed task-type substrates.

Covers construction validation, epoch rotation, exceedance/entropy
arithmetic against exact references, the checkpoint contract
(``state_dict`` -> ``from_state_dict`` answers every query
bit-identically) and the testkit sketch-factory seam.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.substrates import (DEFAULT_ENTROPY_WINDOW,
                                   DEFAULT_SKETCH_WINDOW, EntropyEstimator,
                                   QuantileEstimator, TASK_TYPES)
from repro.exceptions import ConfigurationError
from repro.telemetry.histogram import LogHistogram


class TestTaskTypes:
    def test_catalogue(self):
        assert TASK_TYPES == ("value", "quantile", "entropy")
        assert DEFAULT_SKETCH_WINDOW >= 1
        assert DEFAULT_ENTROPY_WINDOW >= 2


class TestQuantileEstimatorConstruction:
    @pytest.mark.parametrize("q", [0.0, 1.0, -0.1, 1.5])
    def test_quantile_must_be_open_interval(self, q):
        with pytest.raises(ConfigurationError):
            QuantileEstimator(q)

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            QuantileEstimator(0.99, window=0)

    def test_defaults(self):
        est = QuantileEstimator(0.99)
        assert est.window == DEFAULT_SKETCH_WINDOW
        assert est.count == 0
        assert est.exceedance(10.0) == 0.0


class TestQuantileEstimatorRotation:
    def test_epoch_rotation_bounds_the_window(self):
        est = QuantileEstimator(0.9, window=10)
        for i in range(35):
            est.update(float(i))
        # Queries span sealed + current: between window and 2*window.
        assert 10 <= est.count <= 20
        assert est.count == 15  # 3 full epochs sealed/discarded + 5

    def test_old_epochs_are_forgotten(self):
        est = QuantileEstimator(0.9, window=5)
        for _ in range(10):
            est.update(1000.0)
        # Two full epochs of regime change push the old tail out.
        for _ in range(10):
            est.update(1.0)
        assert est.exceedance(500.0) == 0.0

    def test_exceedance_matches_exact_fraction(self):
        # Values far from the threshold: sketch bucket resolution can
        # never blur which side they fall on.
        est = QuantileEstimator(0.9, window=100)
        for v in [10.0] * 70 + [200.0] * 30:
            est.update(v)
        assert est.exceedance(100.0) == pytest.approx(0.3)

    def test_exceedance_sums_sealed_and_current(self):
        est = QuantileEstimator(0.9, window=4)
        for v in (200.0, 200.0, 1.0, 1.0):   # sealed epoch: 2/4 above
            est.update(v)
        est.update(200.0)                    # current epoch: 1/1 above
        assert est.exceedance(100.0) == pytest.approx(3.0 / 5.0)

    def test_quantile_value_tracks_the_tail(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(3.0, 0.5, 200)
        est = QuantileEstimator(0.99, window=200)
        for v in values:
            est.update(float(v))
        exact = float(np.sort(values)[int(0.99 * (len(values) - 1))])
        assert est.quantile_value() == pytest.approx(exact, rel=0.03)


class TestQuantileEstimatorCheckpoint:
    def test_state_roundtrips_bit_identically(self):
        rng = np.random.default_rng(11)
        est = QuantileEstimator(0.95, window=16)
        for v in rng.lognormal(2.0, 0.4, 40):
            est.update(float(v))
        state = json.loads(json.dumps(est.state_dict()))
        clone = QuantileEstimator.from_state_dict(state)
        assert clone.state_dict() == est.state_dict()
        for v in rng.lognormal(2.0, 0.4, 40):
            est.update(float(v))
            clone.update(float(v))
            assert clone.exceedance(9.0) == est.exceedance(9.0)
            assert clone.quantile_value() == est.quantile_value()
        assert clone.state_dict() == est.state_dict()

    def test_planted_factory_resets_and_sticks(self):
        est = QuantileEstimator(0.9, window=4)
        for _ in range(6):
            est.update(500.0)
        built = []

        def factory():
            sketch = LogHistogram()
            built.append(sketch)
            return sketch

        est.plant_sketch_factory(factory)
        assert est.count == 0  # planting resets the window
        for _ in range(9):
            est.update(500.0)
        # Initial sketch + two rotations, all from the planted factory.
        assert len(built) == 3


class TestEntropyEstimatorConstruction:
    def test_window_must_be_at_least_two(self):
        with pytest.raises(ConfigurationError):
            EntropyEstimator(window=1)

    @pytest.mark.parametrize("width", [0.0, -1.0])
    def test_bin_width_must_be_positive(self, width):
        with pytest.raises(ConfigurationError):
            EntropyEstimator(bin_width=width)

    def test_empty_entropy_is_zero(self):
        assert EntropyEstimator().entropy() == 0.0


class TestEntropyEstimatorArithmetic:
    def test_uniform_symbols_hit_log2_k(self):
        est = EntropyEstimator(window=16, bin_width=1.0)
        for i in range(16):
            est.update(float(i % 4))
        assert est.entropy() == pytest.approx(2.0)

    def test_constant_stream_has_zero_entropy(self):
        est = EntropyEstimator(window=8, bin_width=1.0)
        for _ in range(20):
            est.update(3.25)
        assert est.entropy() == pytest.approx(0.0, abs=1e-12)

    def test_binning_floors_to_bin_width(self):
        est = EntropyEstimator(window=4, bin_width=10.0)
        for v in (1.0, 9.9, 12.0, 19.0):  # bins 0, 0, 1, 1
            est.update(v)
        assert est.entropy() == pytest.approx(1.0)

    def test_window_evicts_oldest(self):
        est = EntropyEstimator(window=4, bin_width=1.0)
        for v in (0.0, 1.0, 2.0, 3.0):
            est.update(v)
        assert est.entropy() == pytest.approx(2.0)
        for _ in range(4):
            est.update(7.0)  # collapse: the diverse prefix evicted
        assert est.count == 4
        assert est.entropy() == pytest.approx(0.0, abs=1e-12)

    def test_matches_exact_empirical_entropy(self):
        rng = np.random.default_rng(3)
        values = rng.normal(50.0, 20.0, 200)
        est = EntropyEstimator(window=64, bin_width=8.0)
        for v in values:
            est.update(float(v))
        tail = [int(math.floor(v / 8.0)) for v in values[-64:]]
        counts = {}
        for s in tail:
            counts[s] = counts.get(s, 0) + 1
        exact = -sum((c / 64) * math.log2(c / 64) for c in counts.values())
        assert est.entropy() == pytest.approx(exact, abs=1e-9)


class TestEntropyEstimatorCheckpoint:
    def test_state_roundtrips_bit_identically(self):
        rng = np.random.default_rng(19)
        est = EntropyEstimator(window=12, bin_width=4.0)
        for v in rng.normal(30.0, 15.0, 30):
            est.update(float(v))
        state = json.loads(json.dumps(est.state_dict()))
        clone = EntropyEstimator.from_state_dict(state)
        assert clone.state_dict() == est.state_dict()
        for v in rng.normal(30.0, 15.0, 30):
            est.update(float(v))
            clone.update(float(v))
            assert clone.entropy() == est.entropy()
        assert clone.state_dict() == est.state_dict()
