"""Tests for task specifications."""

from __future__ import annotations

import pytest

from repro.core.task import DistributedTaskSpec, TaskSpec
from repro.exceptions import ConfigurationError
from repro.types import ThresholdDirection


class TestTaskSpec:
    def test_defaults(self):
        task = TaskSpec(threshold=10.0, error_allowance=0.01)
        assert task.default_interval == 1.0
        assert task.max_interval == 10
        assert task.direction is ThresholdDirection.UPPER

    def test_violated_upper(self):
        task = TaskSpec(threshold=10.0, error_allowance=0.01)
        assert task.violated(10.5)
        assert not task.violated(10.0)  # strict comparison
        assert not task.violated(9.0)

    def test_violated_lower(self):
        task = TaskSpec(threshold=10.0, error_allowance=0.01,
                        direction=ThresholdDirection.LOWER)
        assert task.violated(9.0)
        assert not task.violated(10.0)
        assert not task.violated(11.0)

    def test_oriented_frames(self):
        upper = TaskSpec(threshold=10.0, error_allowance=0.0)
        sign, threshold = upper.oriented()
        assert (sign, threshold) == (1.0, 10.0)
        lower = TaskSpec(threshold=10.0, error_allowance=0.0,
                         direction=ThresholdDirection.LOWER)
        sign, threshold = lower.oriented()
        assert (sign, threshold) == (-1.0, -10.0)
        # Violation logic is preserved in the oriented frame.
        assert (sign * 9.0 > threshold) == lower.violated(9.0)
        assert (sign * 11.0 > threshold) == lower.violated(11.0)

    def test_with_error_allowance(self):
        task = TaskSpec(threshold=10.0, error_allowance=0.01, name="x")
        copy = task.with_error_allowance(0.05)
        assert copy.error_allowance == 0.05
        assert copy.threshold == task.threshold
        assert copy.name == "x"
        assert task.error_allowance == 0.01

    @pytest.mark.parametrize("kwargs", [
        dict(threshold=1.0, error_allowance=-0.1),
        dict(threshold=1.0, error_allowance=1.5),
        dict(threshold=1.0, error_allowance=0.1, default_interval=0.0),
        dict(threshold=1.0, error_allowance=0.1, max_interval=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TaskSpec(**kwargs)


class TestDistributedTaskSpec:
    def test_even_split(self):
        spec = DistributedTaskSpec.with_even_thresholds(
            global_threshold=100.0, num_monitors=4, error_allowance=0.01)
        assert spec.num_monitors == 4
        assert spec.local_thresholds == (25.0, 25.0, 25.0, 25.0)

    def test_local_spec(self):
        spec = DistributedTaskSpec.with_even_thresholds(
            100.0, 4, 0.01, name="t")
        local = spec.local_spec(2, 0.0025)
        assert local.threshold == 25.0
        assert local.error_allowance == 0.0025
        assert "monitor2" in local.name

    def test_local_spec_out_of_range(self):
        spec = DistributedTaskSpec.with_even_thresholds(100.0, 4, 0.01)
        with pytest.raises(ConfigurationError):
            spec.local_spec(4, 0.01)
        with pytest.raises(ConfigurationError):
            spec.local_spec(-1, 0.01)

    def test_local_thresholds_may_undershoot_global(self):
        # sum(T_i) < T is safe (local silence still implies global silence).
        spec = DistributedTaskSpec(global_threshold=100.0,
                                   local_thresholds=(30.0, 30.0, 30.0),
                                   error_allowance=0.01)
        assert spec.num_monitors == 3

    def test_local_thresholds_must_not_exceed_global(self):
        with pytest.raises(ConfigurationError):
            DistributedTaskSpec(global_threshold=100.0,
                                local_thresholds=(60.0, 60.0),
                                error_allowance=0.01)

    def test_empty_thresholds_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedTaskSpec(global_threshold=1.0, local_thresholds=(),
                                error_allowance=0.01)

    def test_bad_monitor_count(self):
        with pytest.raises(ConfigurationError):
            DistributedTaskSpec.with_even_thresholds(10.0, 0, 0.01)

    def test_bad_error_allowance(self):
        with pytest.raises(ConfigurationError):
            DistributedTaskSpec(global_threshold=10.0,
                                local_thresholds=(5.0, 5.0),
                                error_allowance=2.0)
