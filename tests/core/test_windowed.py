"""Tests for aggregation-time-window tasks (paper SVII extension)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.task import TaskSpec
from repro.core.windowed import (AggregateKind, WindowedTaskSpec,
                                 aggregate_trace, run_windowed_adaptive)
from repro.exceptions import ConfigurationError, TraceError
from repro.experiments.runner import run_adaptive


class TestAggregateTrace:
    def test_window_one_is_identity(self):
        values = np.array([3.0, 1.0, 4.0])
        out = aggregate_trace(values, 1, AggregateKind.MEAN)
        assert np.array_equal(out, values)
        assert out is not values  # caller's array is never aliased

    def test_mean(self):
        values = np.array([2.0, 4.0, 6.0, 8.0])
        out = aggregate_trace(values, 2, AggregateKind.MEAN)
        assert out.tolist() == [2.0, 3.0, 5.0, 7.0]

    def test_sum(self):
        values = np.array([1.0, 1.0, 1.0, 1.0])
        out = aggregate_trace(values, 3, AggregateKind.SUM)
        assert out.tolist() == [1.0, 2.0, 3.0, 3.0]

    def test_max_min(self):
        values = np.array([1.0, 5.0, 2.0, 0.0, 3.0])
        assert aggregate_trace(values, 3, AggregateKind.MAX).tolist() == \
            [1.0, 5.0, 5.0, 5.0, 3.0]
        assert aggregate_trace(values, 3, AggregateKind.MIN).tolist() == \
            [1.0, 1.0, 1.0, 0.0, 0.0]

    def test_leading_edge_partial_window(self):
        values = np.array([10.0, 0.0])
        out = aggregate_trace(values, 5, AggregateKind.MEAN)
        assert out[0] == 10.0
        assert out[1] == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            aggregate_trace(np.ones(3), 0)
        with pytest.raises(TraceError):
            aggregate_trace(np.array([]), 2)

    @given(window=st.integers(min_value=1, max_value=20),
           data=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                   allow_nan=False),
                         min_size=1, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_naive_mean(self, window, data):
        values = np.asarray(data)
        out = aggregate_trace(values, window, AggregateKind.MEAN)
        for t in range(values.size):
            lo = max(0, t - window + 1)
            assert out[t] == pytest.approx(values[lo:t + 1].mean(),
                                           rel=1e-9, abs=1e-6)

    @given(window=st.integers(min_value=1, max_value=20),
           data=st.lists(st.floats(min_value=-1e6, max_value=1e6,
                                   allow_nan=False),
                         min_size=1, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_property_matches_naive_max(self, window, data):
        values = np.asarray(data)
        out = aggregate_trace(values, window, AggregateKind.MAX)
        for t in range(values.size):
            lo = max(0, t - window + 1)
            assert out[t] == values[lo:t + 1].max()


class TestWindowedTaskSpec:
    def test_validation(self):
        task = TaskSpec(threshold=1.0, error_allowance=0.01)
        with pytest.raises(ConfigurationError):
            WindowedTaskSpec(task=task, window=0)


class TestRunWindowedAdaptive:
    def test_aggregation_smooths_and_saves(self, rng):
        # A noisy stream whose 20-step mean is much smoother: the windowed
        # task should sample less than the instantaneous task at the same
        # allowance.
        raw = 50.0 + rng.normal(0.0, 5.0, 20_000)
        threshold_raw = float(np.percentile(raw, 99.6))
        instant = run_adaptive(raw, TaskSpec(threshold=threshold_raw,
                                             error_allowance=0.01,
                                             max_interval=10))

        aggregated = aggregate_trace(raw, 20, AggregateKind.MEAN)
        threshold_win = float(np.percentile(aggregated, 99.6))
        spec = WindowedTaskSpec(
            task=TaskSpec(threshold=threshold_win, error_allowance=0.01,
                          max_interval=10),
            window=20)
        windowed = run_windowed_adaptive(raw, spec)
        assert windowed.sampling_ratio < instant.sampling_ratio

    def test_detects_sustained_violation(self, rng):
        raw = 10.0 + rng.normal(0.0, 0.5, 5000)
        raw[3000:3100] = 60.0  # sustained burst
        spec = WindowedTaskSpec(
            task=TaskSpec(threshold=30.0, error_allowance=0.01,
                          max_interval=10),
            window=10)
        result = run_windowed_adaptive(raw, spec)
        assert result.accuracy.truth_alerts > 0
        assert result.misdetection_rate <= 0.2
        assert result.aggregated.size == raw.size

    def test_window_one_equals_instant_task(self, bursty_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.01,
                        max_interval=10)
        instant = run_adaptive(bursty_trace, task)
        windowed = run_windowed_adaptive(
            bursty_trace, WindowedTaskSpec(task=task, window=1))
        assert np.array_equal(instant.sampled_indices,
                              windowed.sampled_indices)
