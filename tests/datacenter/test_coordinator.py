"""Tests for the coordinator node."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.coordination import AdaptiveAllocation
from repro.core.task import DistributedTaskSpec
from repro.datacenter.coordinator import CoordinatorNode
from repro.datacenter.cost import FlatSamplingCostModel
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.network import VirtualNetwork
from repro.datacenter.server import Dom0CpuAccount
from repro.datacenter.vm import TraceAgent, VirtualMachine
from repro.exceptions import CoordinationError
from repro.simulation.engine import SimulationEngine


def build_task(traces, err=0.01, thresholds=None, policy=None,
               update_period=1000):
    traces = [np.asarray(t, dtype=float) for t in traces]
    horizon = len(traces[0])
    if thresholds is None:
        thresholds = [100.0] * len(traces)
    engine = SimulationEngine()
    network = VirtualNetwork()
    spec = DistributedTaskSpec(
        global_threshold=float(sum(thresholds)),
        local_thresholds=tuple(thresholds),
        error_allowance=err, max_interval=10)
    coordinator = CoordinatorNode(spec, engine, network, policy=policy,
                                  update_period_steps=update_period)
    dom0 = Dom0CpuAccount(window_seconds=1.0, num_windows=horizon)
    monitors = []
    for i, trace in enumerate(traces):
        vm = VirtualMachine(i, 0, TraceAgent(values=trace))
        monitor = MonitorDaemon(
            monitor_id=i, vm=vm, task=spec.local_spec(i, err / len(traces)),
            engine=engine, cost_model=FlatSamplingCostModel(), dom0=dom0,
            horizon_steps=horizon,
            config=AdaptationConfig(patience=3, min_samples=5),
            coordinator=coordinator)
        coordinator.register(monitor)
        monitors.append(monitor)
    return engine, coordinator, monitors, network


class TestRegistration:
    def test_requires_all_monitors_before_start(self):
        engine = SimulationEngine()
        spec = DistributedTaskSpec(global_threshold=200.0,
                                   local_thresholds=(100.0, 100.0),
                                   error_allowance=0.01)
        coordinator = CoordinatorNode(spec, engine, VirtualNetwork())
        with pytest.raises(CoordinationError):
            coordinator.start()

    def test_rejects_extra_monitors(self):
        traces = [np.zeros(10), np.zeros(10)]
        engine, coordinator, monitors, _ = build_task(traces)
        with pytest.raises(CoordinationError):
            coordinator.register(monitors[0])

    def test_no_registration_after_start(self):
        traces = [np.zeros(10), np.zeros(10)]
        engine, coordinator, monitors, _ = build_task(traces)
        coordinator.start()
        with pytest.raises(CoordinationError):
            coordinator.register(monitors[0])

    def test_bad_update_period(self):
        spec = DistributedTaskSpec(global_threshold=1.0,
                                   local_thresholds=(1.0,),
                                   error_allowance=0.01)
        with pytest.raises(CoordinationError):
            CoordinatorNode(spec, SimulationEngine(), VirtualNetwork(),
                            update_period_steps=0)


class TestGlobalPolls:
    def test_local_violation_triggers_poll(self):
        a = np.zeros(20)
        a[5] = 150.0  # local violation on monitor 0 only
        b = np.zeros(20)
        engine, coordinator, monitors, network = build_task([a, b])
        coordinator.start()
        for m in monitors:
            m.start()
        engine.run_until(20.0)
        assert len(coordinator.polls) == 1
        poll = coordinator.polls[0]
        assert poll.time_index == 5
        assert poll.values == (150.0, 0.0)
        assert not poll.violated          # 150 < 200 global threshold
        assert coordinator.alerts == ()
        assert network.messages_of("violation-report") == 1
        assert network.messages_of("poll-request") == 2

    def test_global_alert_when_sum_crosses(self):
        a = np.zeros(20)
        b = np.zeros(20)
        a[5] = 150.0
        b[5] = 120.0  # both violate locally; sum 270 > 200
        engine, coordinator, monitors, network = build_task([a, b])
        coordinator.start()
        for m in monitors:
            m.start()
        engine.run_until(20.0)
        assert len(coordinator.polls) == 1  # deduped per step
        assert len(coordinator.alerts) == 1
        alert = coordinator.alerts[0]
        assert alert.time_index == 5
        assert alert.value == pytest.approx(270.0)

    def test_poll_forces_samples_on_idle_monitors(self):
        # Monitor 1 idles at a long interval; monitor 0's violation must
        # force it to produce a value for the poll. The violation is a
        # plateau so monitor 0 cannot step entirely over it.
        a = np.ones(300)
        a[240:260] = 150.0
        b = np.ones(300)
        engine, coordinator, monitors, _ = build_task([a, b], err=0.05)
        coordinator.start()
        for m in monitors:
            m.start()
        engine.run_until(300.0)
        poll_steps = [p.time_index for p in coordinator.polls]
        assert any(240 <= s < 260 for s in poll_steps)
        forced = [s for s in poll_steps if s in monitors[1].sampled_steps]
        assert forced, "idle monitor was never polled into sampling"


class TestAllocationUpdates:
    def test_periodic_reallocation_with_adaptive_policy(self):
        rng = np.random.default_rng(0)
        # Heterogeneous streams: one near its threshold, one far below.
        hot = 95.0 + rng.normal(0.0, 2.0, 400)
        cold = rng.normal(0.0, 0.1, 400)
        engine, coordinator, monitors, _ = build_task(
            [hot, cold], err=0.01, policy=AdaptiveAllocation(),
            update_period=100)
        coordinator.start()
        for m in monitors:
            m.start()
        engine.run_until(400.0)
        assert coordinator.reallocations >= 1
        allocations = coordinator.allocations
        assert sum(allocations) == pytest.approx(0.01, rel=1e-6)
        assert min(allocations) >= 0.01 * 0.01 - 1e-12  # floor respected
        # The hot monitor is hopeless (values hover at its threshold) and
        # must stay at the default interval; the cold one must have grown.
        assert monitors[0].sampler.interval == 1
        assert monitors[1].sampler.interval > 1

    def test_monitor_allowance_follows_allocation(self):
        traces = [np.zeros(250), np.zeros(250)]
        engine, coordinator, monitors, _ = build_task(
            traces, err=0.02, update_period=100)
        coordinator.start()
        for m in monitors:
            m.start()
        engine.run_until(250.0)
        for monitor, err in zip(monitors, coordinator.allocations):
            assert monitor.sampler.error_allowance == pytest.approx(err)
