"""Accessor and message-accounting details of the coordinator."""

from __future__ import annotations

import numpy as np

from repro.core.coordination import AdaptiveAllocation
from repro.core.task import DistributedTaskSpec
from repro.datacenter.coordinator import CoordinatorNode
from repro.datacenter.cost import FlatSamplingCostModel
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.network import VirtualNetwork
from repro.datacenter.server import Dom0CpuAccount
from repro.datacenter.vm import TraceAgent, VirtualMachine
from repro.simulation.engine import SimulationEngine


def build(traces, policy=None, update_period=100, err=0.01):
    engine = SimulationEngine()
    network = VirtualNetwork()
    horizon = len(traces[0])
    spec = DistributedTaskSpec(
        global_threshold=100.0 * len(traces),
        local_thresholds=(100.0,) * len(traces),
        error_allowance=err, max_interval=10)
    coordinator = CoordinatorNode(spec, engine, network, policy=policy,
                                  update_period_steps=update_period)
    dom0 = Dom0CpuAccount(1.0, horizon)
    for i, trace in enumerate(traces):
        monitor = MonitorDaemon(
            monitor_id=i, vm=VirtualMachine(i, 0, TraceAgent(trace)),
            task=spec.local_spec(i, err / len(traces)), engine=engine,
            cost_model=FlatSamplingCostModel(), dom0=dom0,
            horizon_steps=horizon, coordinator=coordinator)
        coordinator.register(monitor)
    return engine, coordinator, network


def test_accessors_before_and_after_start():
    traces = [np.zeros(200), np.zeros(200)]
    engine, coordinator, _ = build(traces)
    assert coordinator.spec.num_monitors == 2
    assert len(coordinator.monitors) == 2
    assert coordinator.polls == ()
    assert coordinator.alerts == ()
    assert sum(coordinator.allocations) == 0.01
    coordinator.start()
    for monitor in coordinator.monitors:
        monitor.start()
    engine.run_until(200.0)
    assert coordinator.reallocations == 0  # nothing interesting happened


def test_allowance_update_messages_counted():
    rng = np.random.default_rng(1)
    hot = 95.0 + rng.normal(0.0, 2.0, 400)
    cold = rng.normal(0.0, 0.1, 400)
    engine, coordinator, network = build([hot, cold],
                                         policy=AdaptiveAllocation(),
                                         update_period=100)
    coordinator.start()
    for monitor in coordinator.monitors:
        monitor.start()
    engine.run_until(400.0)
    if coordinator.reallocations:
        expected = 2 * coordinator.reallocations
        assert network.messages_of("allowance-update") == expected


def test_poll_values_ordered_by_monitor_slot():
    a = np.zeros(50)
    b = np.full(50, 7.0)
    a[10] = 150.0
    engine, coordinator, _ = build([a, b], err=0.0)
    coordinator.start()
    for monitor in coordinator.monitors:
        monitor.start()
    engine.run_until(50.0)
    poll = coordinator.polls[0]
    assert poll.values == (150.0, 7.0)
