"""Tests for the sampling cost models."""

from __future__ import annotations

import pytest

from repro.datacenter.cost import (FlatSamplingCostModel, MonetaryCostModel,
                                   NetworkSamplingCostModel)
from repro.exceptions import ConfigurationError


class TestNetworkSamplingCostModel:
    def test_scales_with_packets(self):
        model = NetworkSamplingCostModel(fixed_seconds=0.04,
                                         per_packet_seconds=3e-6)
        assert model.cpu_seconds(0) == pytest.approx(0.04)
        assert model.cpu_seconds(20_000) == pytest.approx(0.1)

    def test_paper_calibration_band(self):
        """40 VMs at peak-hour volume keep Dom0 in the paper's CPU band."""
        model = NetworkSamplingCostModel()
        peak_packets = 22_000  # per VM per 15-second window at peak
        utilisation = 100.0 * 40 * model.cpu_seconds(peak_packets) / 15.0
        assert 20.0 < utilisation < 34.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            NetworkSamplingCostModel(fixed_seconds=-1.0)
        model = NetworkSamplingCostModel()
        with pytest.raises(ConfigurationError):
            model.cpu_seconds(-1)


class TestFlatSamplingCostModel:
    def test_constant(self):
        model = FlatSamplingCostModel(seconds_per_sample=0.01)
        assert model.cpu_seconds() == 0.01
        assert model.cpu_seconds(10**9) == 0.01

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            FlatSamplingCostModel(seconds_per_sample=-0.1)


class TestMonetaryCostModel:
    def test_accumulates(self):
        model = MonetaryCostModel(price_per_sample=2.0,
                                  price_per_message=0.5)
        model.charge_sample(3)
        model.charge_message(4)
        assert model.samples == 3
        assert model.messages == 4
        assert model.total_cost == pytest.approx(8.0)

    def test_default_single_charge(self):
        model = MonetaryCostModel()
        model.charge_sample()
        model.charge_message()
        assert (model.samples, model.messages) == (1, 1)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            MonetaryCostModel(price_per_sample=-1.0)
        model = MonetaryCostModel()
        with pytest.raises(ConfigurationError):
            model.charge_sample(-1)
