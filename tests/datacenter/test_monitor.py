"""Tests for the monitor daemon on the simulation engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.datacenter.cost import FlatSamplingCostModel
from repro.datacenter.monitor import MonitorDaemon
from repro.datacenter.server import Dom0CpuAccount
from repro.datacenter.vm import TraceAgent, VirtualMachine
from repro.exceptions import SimulationError
from repro.simulation.engine import SimulationEngine


def make_monitor(values, err=0.01, interval=1.0, horizon=None,
                 coordinator=None, packets=None):
    engine = SimulationEngine()
    horizon = horizon if horizon is not None else len(values)
    dom0 = Dom0CpuAccount(window_seconds=interval, num_windows=horizon)
    agent = TraceAgent(values=np.asarray(values, dtype=float),
                       packets=packets)
    vm = VirtualMachine(0, 0, agent)
    task = TaskSpec(threshold=100.0, error_allowance=err,
                    default_interval=interval, max_interval=10)
    monitor = MonitorDaemon(
        monitor_id=0, vm=vm, task=task, engine=engine,
        cost_model=FlatSamplingCostModel(0.01), dom0=dom0,
        horizon_steps=horizon,
        config=AdaptationConfig(patience=3, min_samples=5),
        coordinator=coordinator)
    return engine, monitor, dom0


class TestMonitorDaemon:
    def test_periodic_when_zero_allowance(self):
        values = np.zeros(50)
        engine, monitor, _ = make_monitor(values, err=0.0)
        monitor.start()
        engine.run_until(50.0)
        assert monitor.samples_taken == 50
        assert monitor.sampled_steps == list(range(50))

    def test_adaptation_reduces_samples(self):
        values = np.ones(300)
        engine, monitor, _ = make_monitor(values, err=0.05)
        monitor.start()
        engine.run_until(300.0)
        assert monitor.samples_taken < 200

    def test_cost_charged_per_sample(self):
        values = np.zeros(20)
        engine, monitor, dom0 = make_monitor(values, err=0.0)
        monitor.start()
        engine.run_until(20.0)
        # 0.01 cpu-seconds per 1-second window = 1% per window.
        assert np.allclose(dom0.utilization(), 1.0)

    def test_double_start_rejected(self):
        engine, monitor, _ = make_monitor(np.zeros(5))
        monitor.start()
        with pytest.raises(SimulationError):
            monitor.start()

    def test_horizon_must_fit_agent(self):
        values = np.zeros(5)
        with pytest.raises(SimulationError):
            make_monitor(values, horizon=10)

    def test_poll_returns_current_value_without_resampling(self):
        values = np.arange(10.0)
        engine, monitor, _ = make_monitor(values, err=0.0)
        monitor.start()
        engine.run_until(3.0)  # samples at steps 0..3
        before = monitor.samples_taken
        assert monitor.poll(3) == 3.0
        assert monitor.samples_taken == before

    def test_poll_forces_sample_when_idle(self):
        values = np.ones(300)
        engine, monitor, _ = make_monitor(values, err=0.05)
        monitor.start()
        engine.run_until(250.0)
        assert monitor.sampler.interval > 1  # grown by now
        last = monitor.sampled_steps[-1]
        target = last + 1
        before = monitor.samples_taken
        value = monitor.poll(target)
        assert value == 1.0
        assert monitor.samples_taken == before + 1
        assert target in monitor.sampled_steps

    def test_poll_into_past_rejected(self):
        values = np.zeros(10)
        engine, monitor, _ = make_monitor(values, err=0.0)
        monitor.start()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            monitor.poll(2)

    def test_poll_beyond_horizon_rejected(self):
        values = np.zeros(10)
        engine, monitor, _ = make_monitor(values, err=0.0)
        monitor.start()
        with pytest.raises(SimulationError):
            monitor.poll(10)

    def test_reports_local_violations(self):
        class Sink:
            def __init__(self):
                self.reports = []

            def on_local_violation(self, monitor, step):
                self.reports.append(step)

        values = np.zeros(20)
        values[7] = 150.0
        sink = Sink()
        engine, monitor, _ = make_monitor(values, err=0.0,
                                          coordinator=sink)
        monitor.start()
        engine.run_until(20.0)
        assert sink.reports == [7]
