"""Tests for the virtual coordination network."""

from __future__ import annotations

import pytest

from repro.datacenter.network import VirtualNetwork
from repro.exceptions import ConfigurationError


def test_counts_by_kind():
    net = VirtualNetwork(bytes_per_message=100)
    net.send("poll-request", 3)
    net.send("poll-response", 3)
    net.send("violation-report")
    assert net.total_messages == 7
    assert net.total_bytes == 700
    assert net.messages_of("poll-request") == 3
    assert net.messages_of("unknown") == 0
    assert net.breakdown() == {"poll-request": 3, "poll-response": 3,
                               "violation-report": 1}


def test_validation():
    with pytest.raises(ConfigurationError):
        VirtualNetwork(bytes_per_message=0)
    net = VirtualNetwork()
    with pytest.raises(ConfigurationError):
        net.send("x", -1)
