"""Tests for servers and Dom0 CPU accounting."""

from __future__ import annotations

import pytest

from repro.datacenter.server import Dom0CpuAccount, PhysicalServer
from repro.exceptions import ConfigurationError, SimulationError


class TestDom0CpuAccount:
    def test_utilization_per_window(self):
        account = Dom0CpuAccount(window_seconds=15.0, num_windows=3)
        account.charge(0, 1.5)
        account.charge(0, 1.5)
        account.charge(2, 7.5)
        util = account.utilization()
        assert util.tolist() == [20.0, 0.0, 50.0]

    def test_stats(self):
        account = Dom0CpuAccount(window_seconds=10.0, num_windows=4)
        for w, busy in enumerate((1.0, 2.0, 3.0, 4.0)):
            account.charge(w, busy)
        stats = account.utilization_stats()
        assert stats["min"] == 10.0
        assert stats["max"] == 40.0
        assert stats["median"] == pytest.approx(25.0)
        assert stats["mean"] == pytest.approx(25.0)

    def test_out_of_horizon_rejected(self):
        account = Dom0CpuAccount(window_seconds=1.0, num_windows=2)
        with pytest.raises(SimulationError):
            account.charge(2, 0.1)
        with pytest.raises(SimulationError):
            account.charge(-1, 0.1)

    def test_negative_cpu_rejected(self):
        account = Dom0CpuAccount(window_seconds=1.0, num_windows=2)
        with pytest.raises(SimulationError):
            account.charge(0, -0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Dom0CpuAccount(window_seconds=0.0, num_windows=1)
        with pytest.raises(ConfigurationError):
            Dom0CpuAccount(window_seconds=1.0, num_windows=0)


class TestPhysicalServer:
    def test_attach_vms(self):
        server = PhysicalServer(0, window_seconds=15.0, num_windows=10)
        server.attach_vm(3)
        server.attach_vm(4)
        assert server.vm_ids == (3, 4)

    def test_duplicate_vm_rejected(self):
        server = PhysicalServer(0, 15.0, 10)
        server.attach_vm(3)
        with pytest.raises(ConfigurationError):
            server.attach_vm(3)

    def test_bad_id(self):
        with pytest.raises(ConfigurationError):
            PhysicalServer(-1, 15.0, 10)
