"""Tests for the testbed builder."""

from __future__ import annotations

import pytest

from repro.datacenter.testbed import (PAPER_SCALE, Testbed, TestbedConfig,
                                      build_testbed)
from repro.exceptions import ConfigurationError


class TestTestbedConfig:
    def test_derived_sizes(self):
        config = TestbedConfig(num_servers=7, vms_per_server=4,
                               servers_per_coordinator=5)
        assert config.num_vms == 28
        assert config.num_coordinators == 2

    def test_paper_scale_constant(self):
        assert PAPER_SCALE["num_servers"] * PAPER_SCALE["vms_per_server"] \
            == 800

    @pytest.mark.parametrize("kwargs", [
        dict(num_servers=0),
        dict(vms_per_server=0),
        dict(servers_per_coordinator=0),
        dict(horizon_steps=5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TestbedConfig(**kwargs)


class TestPerVmMode:
    @pytest.fixture(scope="class")
    def testbed(self) -> Testbed:
        tb = build_testbed(TestbedConfig(num_servers=2, vms_per_server=4,
                                         horizon_steps=600,
                                         error_allowance=0.02))
        tb.run()
        return tb

    def test_topology(self, testbed):
        assert len(testbed.servers) == 2
        assert len(testbed.vms) == 8
        assert len(testbed.monitors) == 8
        assert testbed.coordinators == []
        assert testbed.servers[0].vm_ids == (0, 1, 2, 3)

    def test_savings(self, testbed):
        assert 0.0 < testbed.sampling_ratio < 1.0

    def test_dom0_accounting(self, testbed):
        stats = testbed.dom0_utilization_stats()
        assert len(stats) == 2
        assert all(s["mean"] > 0.0 for s in stats)

    def test_accuracy_summary(self, testbed):
        accuracy = testbed.monitor_accuracy()
        assert len(accuracy) == 8
        assert all(0.0 <= a.misdetection_rate <= 1.0 for a in accuracy)

    def test_cannot_run_twice(self, testbed):
        with pytest.raises(ConfigurationError):
            testbed.run()


class TestDistributedMode:
    def test_wiring_and_run(self):
        tb = build_testbed(TestbedConfig(num_servers=2, vms_per_server=4,
                                         servers_per_coordinator=1,
                                         horizon_steps=600,
                                         error_allowance=0.01,
                                         distributed=True))
        assert len(tb.coordinators) == 2
        for coordinator in tb.coordinators:
            assert coordinator.spec.num_monitors == 4
        tb.run()
        assert tb.total_samples > 0
        # Coordination traffic exists whenever local violations occurred.
        reports = tb.network.messages_of("violation-report")
        polls = sum(len(c.polls) for c in tb.coordinators)
        assert (reports == 0) == (polls == 0)

    def test_periodic_reference_ratio_is_one(self):
        tb = build_testbed(TestbedConfig(num_servers=1, vms_per_server=2,
                                         horizon_steps=300,
                                         error_allowance=0.0))
        tb.run()
        assert tb.sampling_ratio == pytest.approx(1.0)
