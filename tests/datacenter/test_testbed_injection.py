"""Failure/attack injection at the testbed level (trace hooks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter.testbed import TestbedConfig, build_testbed
from repro.workloads import SynFloodAttack, inject_attacks


def flood_hook(attack, vm_ids):
    def hook(vm_id, rho, packets):
        if vm_id in vm_ids:
            rho = inject_attacks(rho, [attack])
            packets = packets + attack.profile(packets.size).astype(int)
        return rho, packets
    return hook


class TestAttackInjection:
    def test_coordinated_flood_raises_global_alerts(self):
        attack = SynFloodAttack(start=700, peak_syn_rate=3000.0,
                                ramp_steps=8, hold_steps=40)
        config = TestbedConfig(num_servers=2, vms_per_server=4,
                               servers_per_coordinator=1,
                               horizon_steps=1000, error_allowance=0.01,
                               distributed=True, seed=2)
        group0 = set(range(4))  # VMs of coordinator group 0
        testbed = build_testbed(config,
                                trace_hook=flood_hook(attack, group0))
        testbed.run()
        attacked, clean = testbed.coordinators
        assert len(attacked.alerts) > 0, "coordinated flood must alert"
        assert len(clean.alerts) == 0
        # Alerts land inside the attack's footprint.
        start, end = attack.alert_window()
        assert all(start <= a.time_index < end for a in attacked.alerts)

    def test_thresholds_calibrated_on_clean_stream(self):
        """The hook must not inflate the victim's threshold."""
        attack = SynFloodAttack(start=400, peak_syn_rate=5000.0,
                                ramp_steps=8, hold_steps=40)
        config = TestbedConfig(num_servers=1, vms_per_server=2,
                               horizon_steps=800, error_allowance=0.01,
                               seed=5)
        clean = build_testbed(config)
        attacked = build_testbed(config, trace_hook=flood_hook(attack, {0}))
        assert attacked.monitors[0].task.threshold == \
            clean.monitors[0].task.threshold

    def test_single_vm_flood_detected_by_its_monitor(self):
        attack = SynFloodAttack(start=500, peak_syn_rate=5000.0,
                                ramp_steps=8, hold_steps=40)
        config = TestbedConfig(num_servers=1, vms_per_server=4,
                               horizon_steps=800, error_allowance=0.01,
                               seed=7)
        testbed = build_testbed(config, trace_hook=flood_hook(attack, {1}))
        testbed.run()
        victim = testbed.monitors[1]
        start, end = attack.alert_window()
        hits = [s for s in victim.sampled_steps
                if start <= s < end
                and victim.vm.agent.value_at(s) > victim.task.threshold]
        assert hits, "flood must be sampled above threshold"


class TestMonetaryBill:
    def test_bill_reflects_samples_and_messages(self):
        config = TestbedConfig(num_servers=1, vms_per_server=4,
                               servers_per_coordinator=1,
                               horizon_steps=500, error_allowance=0.01,
                               distributed=True, seed=1)
        testbed = build_testbed(config)
        testbed.run()
        bill = testbed.monetary_bill(price_per_sample=1.0,
                                     price_per_message=0.5)
        assert bill.samples == testbed.total_samples
        assert bill.messages == testbed.network.total_messages
        assert bill.total_cost == pytest.approx(
            testbed.total_samples + 0.5 * testbed.network.total_messages)

    def test_adaptive_bill_below_periodic(self):
        base = dict(num_servers=1, vms_per_server=4, horizon_steps=500,
                    seed=1)
        periodic = build_testbed(TestbedConfig(error_allowance=0.0, **base))
        periodic.run()
        adaptive = build_testbed(TestbedConfig(error_allowance=0.02,
                                               **base))
        adaptive.run()
        assert adaptive.monetary_bill().total_cost < \
            periodic.monetary_bill().total_cost
