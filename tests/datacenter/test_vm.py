"""Tests for VMs and trace agents."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter.vm import TraceAgent, VirtualMachine
from repro.exceptions import ConfigurationError, SimulationError


class TestTraceAgent:
    def test_serves_values(self):
        agent = TraceAgent(values=np.array([1.0, 2.0, 3.0]))
        assert agent.horizon == 3
        assert agent.value_at(1) == 2.0
        assert agent.packets_at(1) == 0

    def test_serves_packets(self):
        agent = TraceAgent(values=np.zeros(3),
                           packets=np.array([10, 20, 30]))
        assert agent.packets_at(2) == 30

    def test_out_of_horizon(self):
        agent = TraceAgent(values=np.zeros(3), packets=np.zeros(3, int))
        with pytest.raises(SimulationError):
            agent.value_at(3)
        with pytest.raises(SimulationError):
            agent.packets_at(-1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TraceAgent(values=np.array([]))
        with pytest.raises(ConfigurationError):
            TraceAgent(values=np.zeros(3), packets=np.zeros(4, int))
        with pytest.raises(ConfigurationError):
            TraceAgent(values=np.zeros(2), packets=np.array([-1, 0]))


class TestVirtualMachine:
    def test_identity(self):
        agent = TraceAgent(values=np.zeros(2))
        vm = VirtualMachine(vm_id=7, server_id=1, agent=agent)
        assert vm.vm_id == 7
        assert vm.server_id == 1
        assert vm.agent is agent

    def test_bad_ids(self):
        agent = TraceAgent(values=np.zeros(2))
        with pytest.raises(ConfigurationError):
            VirtualMachine(vm_id=-1, server_id=0, agent=agent)
