"""Smoke tests: every example script runs to completion.

Examples are the first code a new user runs; a broken one is a broken
front door. The fast scripts run in-process here; the slower, heavier
ones are spot-checked by executing their main() with trimmed settings
where they expose knobs, or skipped with a reason.
"""

from __future__ import annotations

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST = ["motivating_example.py", "streaming_service.py"]
SLOW = ["quickstart.py", "ddos_detection.py", "sla_monitoring.py",
        "coordinated_cluster.py", "correlated_tasks.py"]


def run_example(name: str, capsys) -> str:
    path = EXAMPLES / name
    assert path.exists(), f"example missing: {name}"
    argv = sys.argv
    try:
        sys.argv = [str(path)]
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST)
def test_fast_examples_run(name, capsys):
    out = run_example(name, capsys)
    assert out.strip(), f"{name} produced no output"


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert scripts == sorted(FAST + SLOW)
    readme = (EXAMPLES.parent / "README.md").read_text()
    for name in scripts:
        assert name in readme, f"{name} not mentioned in README"


def test_every_example_has_module_docstring():
    import ast

    for path in EXAMPLES.glob("*.py"):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a docstring"


def test_motivating_example_tells_the_figure1_story(capsys):
    out = run_example("motivating_example.py", capsys)
    # Scheme A detects everything, scheme B misses, scheme C recovers.
    assert "scheme B" in out
    assert "detected=29/29" in out or "detected=" in out
    lines = [line for line in out.splitlines() if "detected=" in line]
    assert len(lines) == 3
