"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import (ALIASES, EXTENSIONS, FIGURES, main,
                                        run_figure, write_csv)
from repro.experiments.figures import fig6


def test_figures_list_complete():
    assert FIGURES == ("fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8")
    assert EXTENSIONS == ("monetary", "delay", "multitask", "reliability")
    assert ALIASES == {"fig5": "fig5a"}


def test_extension_experiments_run():
    text, result = run_figure("monetary", seed=0)
    assert "Monetary cost" in text
    assert result.saving > 0


def test_unknown_figure_rejected():
    with pytest.raises(ValueError):
        run_figure("fig99", seed=0)


def test_main_runs_one_figure(monkeypatch, capsys):
    # Shrink the driver so the CLI test stays fast.
    import repro.experiments.__main__ as cli

    def tiny(name, seed, **kwargs):
        assert name == "fig6"
        return "TINY-REPORT", object()

    monkeypatch.setattr(cli, "run_figure", tiny)
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "TINY-REPORT" in out
    assert "scale factor" in out


def test_main_forwards_workers_and_cache_flags(monkeypatch, capsys,
                                               tmp_path):
    import repro.experiments.__main__ as cli

    seen = {}

    def tiny(name, seed, *, workers, cache, streams, horizon):
        seen.update(name=name, seed=seed, workers=workers, cache=cache,
                    streams=streams, horizon=horizon)
        return "TINY-REPORT", object()

    monkeypatch.setattr(cli, "run_figure", tiny)
    assert main(["fig5", "--workers", "3", "--seed", "7",
                 "--streams", "2", "--horizon", "500",
                 "--cache-dir", str(tmp_path)]) == 0
    assert seen["name"] == "fig5"
    assert seen["seed"] == 7
    assert seen["workers"] == 3
    assert seen["streams"] == 2
    assert seen["horizon"] == 500
    assert seen["cache"] is not None
    assert seen["cache"].directory == tmp_path


def test_main_no_cache_disables_cache(monkeypatch, capsys):
    import repro.experiments.__main__ as cli

    seen = {}

    def tiny(name, seed, **kwargs):
        seen.update(kwargs)
        return "TINY-REPORT", object()

    monkeypatch.setattr(cli, "run_figure", tiny)
    assert main(["fig6", "--no-cache"]) == 0
    assert seen["cache"] is None


def test_main_prints_sweep_stats(monkeypatch, capsys):
    import repro.experiments.__main__ as cli

    result = fig6(error_allowances=(0.032,), num_servers=1,
                  vms_per_server=2, horizon=200, workers=1)
    assert result.sweep_stats is not None
    monkeypatch.setattr(cli, "run_figure",
                        lambda name, seed, **kwargs: ("R", result))
    assert main(["fig6", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "[sweep]" in out
    assert "wall" in out


def test_fig5_alias_runs_network_panel(monkeypatch):
    import repro.experiments.__main__ as cli

    calls = {}

    def tiny_fig5(domain, **kwargs):
        calls["domain"] = domain
        return cli.fig6(error_allowances=(0.032,), num_servers=1,
                        vms_per_server=2, horizon=200, workers=1)

    monkeypatch.setattr(cli, "fig5", tiny_fig5)
    run_figure("fig5", seed=0)
    assert calls["domain"] == "network"


def test_main_writes_csv(monkeypatch, capsys, tmp_path):
    import repro.experiments.__main__ as cli

    result = fig6(error_allowances=(0.0, 0.032), num_servers=1,
                  vms_per_server=2, horizon=200, workers=1)
    monkeypatch.setattr(cli, "run_figure",
                        lambda name, seed, **kwargs: ("R", result))
    assert main(["fig6", "--csv", str(tmp_path), "--no-cache"]) == 0
    csv_file = tmp_path / "fig6.csv"
    assert csv_file.exists()
    content = csv_file.read_text()
    assert content.startswith("error_allowance,")
    assert len(content.splitlines()) == 3  # header + 2 allowances


def test_write_csv_creates_directories(tmp_path):
    result = fig6(error_allowances=(0.032,), num_servers=1,
                  vms_per_server=2, horizon=200, workers=1)
    target = tmp_path / "nested" / "dir"
    write_csv(target, "fig6", result)
    assert (target / "fig6.csv").exists()


def test_main_bad_choice():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])
