"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import (EXTENSIONS, FIGURES, main,
                                        run_figure, write_csv)
from repro.experiments.figures import fig6


def test_figures_list_complete():
    assert FIGURES == ("fig5a", "fig5b", "fig5c", "fig6", "fig7", "fig8")
    assert EXTENSIONS == ("monetary", "delay", "multitask", "reliability")


def test_extension_experiments_run():
    text, result = run_figure("monetary", seed=0)
    assert "Monetary cost" in text
    assert result.saving > 0


def test_unknown_figure_rejected():
    with pytest.raises(ValueError):
        run_figure("fig99", seed=0)


def test_main_runs_one_figure(monkeypatch, capsys):
    # Shrink the driver so the CLI test stays fast.
    import repro.experiments.__main__ as cli

    def tiny(name, seed):
        assert name == "fig6"
        return "TINY-REPORT", object()

    monkeypatch.setattr(cli, "run_figure", tiny)
    assert main(["fig6"]) == 0
    out = capsys.readouterr().out
    assert "TINY-REPORT" in out
    assert "scale factor" in out


def test_main_writes_csv(monkeypatch, capsys, tmp_path):
    import repro.experiments.__main__ as cli

    result = fig6(error_allowances=(0.0, 0.032), num_servers=1,
                  vms_per_server=2, horizon=200)
    monkeypatch.setattr(cli, "run_figure",
                        lambda name, seed: ("R", result))
    assert main(["fig6", "--csv", str(tmp_path)]) == 0
    csv_file = tmp_path / "fig6.csv"
    assert csv_file.exists()
    content = csv_file.read_text()
    assert content.startswith("error_allowance,")
    assert len(content.splitlines()) == 3  # header + 2 allowances


def test_write_csv_creates_directories(tmp_path):
    result = fig6(error_allowances=(0.032,), num_servers=1,
                  vms_per_server=2, horizon=200)
    target = tmp_path / "nested" / "dir"
    write_csv(target, "fig6", result)
    assert (target / "fig6.csv").exists()


def test_main_bad_choice():
    with pytest.raises(SystemExit):
        main(["not-a-figure"])
