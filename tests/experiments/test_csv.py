"""Tests for CSV export."""

from __future__ import annotations

from repro.experiments.reporting import to_csv


def test_basic_csv():
    text = to_csv(["a", "b"], [[1, 2.5], ["x", "y"]])
    assert text == "a,b\n1,2.5\nx,y\n"


def test_quoting():
    text = to_csv(["name"], [["has,comma"], ['has"quote'], ["has\nnewline"]])
    lines = text.splitlines()
    assert lines[1] == '"has,comma"'
    assert lines[2] == '"has""quote"'
    assert '"has' in text


def test_float_full_precision():
    value = 0.1234567890123456
    text = to_csv(["v"], [[value]])
    assert repr(value) in text
