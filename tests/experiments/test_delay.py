"""Tests for the detection-delay / event-coverage experiment."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.delay import detection_delay_experiment


class TestDetectionDelay:
    @pytest.fixture(scope="class")
    def result(self):
        return detection_delay_experiment(num_episodes=6, horizon=12_000)

    def test_volley_detects_every_episode(self, result):
        assert result.volley_missed == 0
        assert len(result.volley_delays) == 6

    def test_volley_delay_bounded_by_ramp_plus_interval(self, result):
        # Episodes ramp over 10 steps; adaptation caps intervals at 10,
        # so the first violating point can hide for at most ~one max
        # interval after the threshold crossing.
        assert max(result.volley_delays) <= 20

    def test_event_coverage_dominates_matched_periodic(self, result):
        # The paper's offline-analysis argument: adaptation re-arms to
        # the default rate during episodes, so it captures (nearly) every
        # violating point; cost-matched periodic captures only ~1/I.
        assert result.volley_coverage > 0.9
        if result.periodic_interval > 1:
            expected = 1.0 / result.periodic_interval
            assert result.periodic_coverage == pytest.approx(expected,
                                                             abs=0.15)
            assert result.volley_coverage > result.periodic_coverage

    def test_report_renders(self, result):
        text = result.report()
        assert "Detection delay" in text
        assert "event-coverage" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            detection_delay_experiment(num_episodes=0)
        with pytest.raises(ConfigurationError):
            detection_delay_experiment(num_episodes=10, horizon=100)
