"""Determinism guarantees: same seed, same results — everywhere.

Reproducibility is a core property of the harness (every figure in
EXPERIMENTS.md must be regenerable bit-for-bit), so it gets its own tests
rather than being assumed.
"""

from __future__ import annotations

import numpy as np

from repro.core.coordination import AdaptiveAllocation
from repro.core.task import DistributedTaskSpec
from repro.datacenter.testbed import TestbedConfig, build_testbed
from repro.experiments.distributed import run_distributed_task
from repro.experiments.figures import fig5, fig8
from repro.simulation.randomness import RandomStreams
from repro.workloads import TrafficDifferenceGenerator


def test_fig5_deterministic():
    a = fig5("network", num_streams=2, horizon=2500,
             selectivities=(0.4,), error_allowances=(0.016,))
    b = fig5("network", num_streams=2, horizon=2500,
             selectivities=(0.4,), error_allowances=(0.016,))
    assert a.cells == b.cells


def test_fig5_seed_changes_results():
    a = fig5("network", num_streams=2, horizon=2500, seed=0,
             selectivities=(0.4,), error_allowances=(0.016,))
    b = fig5("network", num_streams=2, horizon=2500, seed=1,
             selectivities=(0.4,), error_allowances=(0.016,))
    assert a.cells != b.cells


def test_fig8_deterministic():
    kwargs = dict(skews=(0.0, 1.0), num_monitors=3, horizon=4000,
                  repeats=1)
    assert fig8(**kwargs).adaptive_ratios == fig8(**kwargs).adaptive_ratios


def test_distributed_run_deterministic():
    streams = RandomStreams(4)
    traces = [TrafficDifferenceGenerator().generate(
        4000, streams.stream("det", i)) for i in range(3)]
    spec = DistributedTaskSpec(global_threshold=3000.0,
                               local_thresholds=(1000.0,) * 3,
                               error_allowance=0.01, max_interval=10)
    a = run_distributed_task(traces, spec, policy=AdaptiveAllocation(),
                             update_period=500)
    b = run_distributed_task(traces, spec, policy=AdaptiveAllocation(),
                             update_period=500)
    assert a.total_samples == b.total_samples
    assert a.final_allocations == b.final_allocations
    assert a.global_polls == b.global_polls


def test_testbed_deterministic():
    config = TestbedConfig(num_servers=1, vms_per_server=4,
                           horizon_steps=500, error_allowance=0.01, seed=3)
    runs = []
    for _ in range(2):
        testbed = build_testbed(config)
        testbed.run()
        runs.append((testbed.total_samples,
                     tuple(np.round(s.dom0.utilization(), 9).tobytes()
                           for s in testbed.servers)))
    assert runs[0] == runs[1]
