"""Tests for the distributed-task experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coordination import AdaptiveAllocation, EvenAllocation
from repro.core.task import DistributedTaskSpec
from repro.exceptions import TraceError
from repro.experiments.distributed import run_distributed_task


def crafted_task(n=400, m=3, err=0.0):
    """Deterministic traces with one synchronized global violation."""
    traces = [np.full(n, 10.0) for _ in range(m)]
    for trace in traces:
        trace[200:210] = 120.0  # all monitors spike together
    spec = DistributedTaskSpec(
        global_threshold=3 * 100.0,
        local_thresholds=(100.0,) * m,
        error_allowance=err, max_interval=10)
    return traces, spec


class TestGroundTruthAccounting:
    def test_synchronized_violation_detected(self):
        traces, spec = crafted_task(err=0.0)
        result = run_distributed_task(traces, spec)
        assert result.truth_alerts == 10
        assert result.detected_alerts == 10
        assert result.misdetection_rate == 0.0
        assert result.global_polls == 10
        assert result.local_violations == 30

    def test_local_but_not_global(self):
        n, m = 300, 3
        traces = [np.full(n, 10.0) for _ in range(m)]
        traces[0][100:105] = 150.0  # only one monitor violates locally
        spec = DistributedTaskSpec(global_threshold=300.0,
                                   local_thresholds=(100.0,) * m,
                                   error_allowance=0.0, max_interval=10)
        result = run_distributed_task(traces, spec)
        assert result.truth_alerts == 0
        assert result.global_polls == 5
        assert result.detected_alerts == 0
        assert result.misdetection_rate == 0.0

    def test_poll_log_kept_on_request(self):
        traces, spec = crafted_task()
        result = run_distributed_task(traces, spec, keep_polls=True)
        assert len(result.polls) == result.global_polls
        assert all(p.violated for p in result.polls)

    def test_poll_log_dropped_by_default(self):
        traces, spec = crafted_task()
        assert run_distributed_task(traces, spec).polls == ()


class TestCost:
    def test_periodic_reference(self):
        traces, spec = crafted_task(err=0.0)
        result = run_distributed_task(traces, spec)
        assert result.sampling_ratio == pytest.approx(1.0)
        assert result.per_monitor_samples == (400, 400, 400)

    def test_adaptive_saves(self):
        n, m = 2000, 3
        traces = [np.full(n, 10.0) + np.linspace(0, 0.1, n)
                  for _ in range(m)]
        spec = DistributedTaskSpec(global_threshold=300.0,
                                   local_thresholds=(100.0,) * m,
                                   error_allowance=0.05, max_interval=10)
        result = run_distributed_task(traces, spec)
        assert result.sampling_ratio < 0.6

    def test_message_accounting(self):
        traces, spec = crafted_task(err=0.0)
        result = run_distributed_task(traces, spec)
        # Per poll: m requests + m responses; per local violation: 1 report.
        assert result.messages == (result.local_violations
                                   + 2 * 3 * result.global_polls)


class TestAllocationRounds:
    def test_even_policy_never_reallocates(self):
        traces, spec = crafted_task(n=600, err=0.01)
        result = run_distributed_task(traces, spec,
                                      policy=EvenAllocation(),
                                      update_period=100)
        assert result.reallocations == 0
        assert result.final_allocations == pytest.approx(
            (0.01 / 3,) * 3)

    def test_adaptive_policy_may_reallocate(self, rng):
        n = 1200
        hot = 95.0 + rng.normal(0, 2.0, n)
        cold = rng.normal(0, 0.1, n)
        spec = DistributedTaskSpec(global_threshold=200.0,
                                   local_thresholds=(100.0, 100.0),
                                   error_allowance=0.01, max_interval=10)
        result = run_distributed_task([hot, cold], spec,
                                      policy=AdaptiveAllocation(),
                                      update_period=200)
        assert result.reallocations >= 1
        assert sum(result.final_allocations) == pytest.approx(0.01,
                                                              rel=1e-6)


class TestValidation:
    def test_wrong_monitor_count(self):
        traces, spec = crafted_task()
        with pytest.raises(TraceError):
            run_distributed_task(traces[:2], spec)

    def test_bad_matrix(self):
        spec = DistributedTaskSpec(global_threshold=1.0,
                                   local_thresholds=(1.0,),
                                   error_allowance=0.0)
        with pytest.raises(TraceError):
            run_distributed_task(np.zeros((0, 0)), spec)

    def test_bad_update_period(self):
        traces, spec = crafted_task()
        with pytest.raises(TraceError):
            run_distributed_task(traces, spec, update_period=0)
