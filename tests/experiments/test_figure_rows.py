"""Tests for figure-result CSV row export."""

from __future__ import annotations

from repro.experiments.figures import fig5, fig6, fig8
from repro.experiments.reporting import to_csv


class TestFig5Rows:
    def test_rows_cover_grid(self):
        result = fig5("network", num_streams=2, horizon=2000,
                      selectivities=(3.2, 0.4),
                      error_allowances=(0.008, 0.032))
        headers, rows = result.to_rows()
        assert headers[0] == "selectivity_percent"
        assert len(rows) == 4
        csv = to_csv(headers, rows)
        assert csv.count("\n") == 5

    def test_rows_match_cells(self):
        result = fig5("network", num_streams=2, horizon=2000,
                      selectivities=(0.4,), error_allowances=(0.016,))
        _, rows = result.to_rows()
        cell = result.cells[0]
        assert rows[0][2] == cell.sampling_ratio
        assert rows[0][3] == cell.misdetection_rate


class TestFig6Rows:
    def test_rows_per_allowance(self):
        result = fig6(error_allowances=(0.0, 0.016), num_servers=1,
                      vms_per_server=2, horizon=300)
        headers, rows = result.to_rows()
        assert headers[0] == "error_allowance"
        assert [row[0] for row in rows] == [0.0, 0.016]
        assert rows[0][-1] == 1.0  # periodic sampling ratio


class TestFig8Rows:
    def test_rows_per_skew(self):
        result = fig8(skews=(0.0, 1.0), num_monitors=3, horizon=4000,
                      repeats=1)
        headers, rows = result.to_rows()
        assert headers[0] == "zipf_skew"
        assert len(rows) == 2
        assert rows[0][1] == result.even_ratios[0]
        assert rows[1][2] == result.adaptive_ratios[1]
