"""Smoke + shape tests for the figure drivers (tiny scale)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import (fig5, fig6, fig7, fig7_report, fig8,
                                       scale_factor)


@pytest.fixture(scope="module")
def fig5_network():
    return fig5("network", num_streams=3, horizon=4000,
                selectivities=(3.2, 0.4), error_allowances=(0.004, 0.032))


class TestScaleFactor:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_floor_at_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert scale_factor() == 1.0

    def test_garbage_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "big")
        with pytest.raises(ConfigurationError):
            scale_factor()


class TestFig5:
    def test_cells_cover_grid(self, fig5_network):
        assert len(fig5_network.cells) == 4
        cell = fig5_network.cell(3.2, 0.004)
        assert 0.0 < cell.sampling_ratio <= 1.0

    def test_savings_grow_with_allowance(self, fig5_network):
        for k in fig5_network.selectivities:
            low = fig5_network.cell(k, 0.004).sampling_ratio
            high = fig5_network.cell(k, 0.032).sampling_ratio
            assert high <= low + 0.02

    def test_small_selectivity_saves_more(self, fig5_network):
        coarse = fig5_network.cell(3.2, 0.032).sampling_ratio
        fine = fig5_network.cell(0.4, 0.032).sampling_ratio
        assert fine <= coarse + 0.02

    def test_report_renders(self, fig5_network):
        text = fig5_network.report()
        assert "Fig.5 (network)" in text
        assert "0.032" in text

    def test_unknown_domain(self):
        with pytest.raises(ConfigurationError):
            fig5("storage", num_streams=1, horizon=100)

    def test_missing_cell_raises(self, fig5_network):
        with pytest.raises(KeyError):
            fig5_network.cell(99.0, 0.004)

    @pytest.mark.parametrize("domain", ["system", "application"])
    def test_other_domains_run(self, domain):
        result = fig5(domain, num_streams=2, horizon=3000,
                      selectivities=(0.4,), error_allowances=(0.032,))
        cell = result.cells[0]
        assert 0.0 < cell.sampling_ratio <= 1.0


class TestFig6:
    def test_periodic_costs_most(self):
        result = fig6(error_allowances=(0.0, 0.032), num_servers=1,
                      vms_per_server=8, horizon=600)
        periodic, adaptive = result.stats
        assert periodic["mean"] > adaptive["mean"]
        assert result.sampling_ratios[0] == pytest.approx(1.0)
        assert result.sampling_ratios[1] < 1.0
        assert "Fig.6" in result.report()

    def test_box_stats_ordered(self):
        result = fig6(error_allowances=(0.008,), num_servers=1,
                      vms_per_server=4, horizon=400)
        st = result.stats[0]
        assert st["min"] <= st["q25"] <= st["median"] <= st["q75"] \
            <= st["max"]


class TestFig7:
    def test_misdetection_within_reason(self):
        result = fig7(num_streams=2, horizon=4000,
                      selectivities=(0.8,), error_allowances=(0.008,))
        matrix = result.misdetection_matrix()
        value = matrix[(0.8, 0.008)]
        assert 0.0 <= value <= 0.2
        assert "mis-detection" in fig7_report(result)


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8(skews=(0.0, 2.0), num_monitors=4, horizon=6000,
                    repeats=1)

    def test_shapes(self, result):
        assert len(result.even_ratios) == 2
        assert all(0.0 < r <= 1.2 for r in result.even_ratios)
        assert all(0.0 < r <= 1.2 for r in result.adaptive_ratios)

    def test_even_degrades_with_hotspot_skew(self, result):
        assert result.even_ratios[1] > result.even_ratios[0]

    def test_report_renders(self, result):
        assert "Fig.8" in result.report()
