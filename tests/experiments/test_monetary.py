"""Tests for the monetary cost analysis."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.monetary import monetary_analysis


class TestMonetaryAnalysis:
    @pytest.fixture(scope="class")
    def result(self):
        return monetary_analysis(num_tasks=4, horizon=4000)

    def test_adaptive_cheaper(self, result):
        assert result.adaptive_cost < result.periodic_cost
        assert result.saving > 0.0
        assert result.adaptive_cost == pytest.approx(
            result.periodic_cost * result.mean_sampling_ratio, rel=0.01)

    def test_fraction_of_operation_bill(self, result):
        periodic_share = result.monitoring_fraction(result.periodic_cost)
        adaptive_share = result.monitoring_fraction(result.adaptive_cost)
        assert 0.0 < adaptive_share < periodic_share < 1.0

    def test_report_renders(self, result):
        text = result.report()
        assert "Monetary cost" in text
        assert "periodic" in text and "volley" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monetary_analysis(num_tasks=0)
