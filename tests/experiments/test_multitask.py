"""Tests for the datacenter-level multi-task experiment."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.multitask import multitask_experiment


class TestMultitaskExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return multitask_experiment(num_vms=2, horizon=12_000)

    def test_planner_finds_rules(self, result):
        # The designed correlation (response leads rho) must be found on
        # every VM's profile window.
        assert result.rules_planned == result.num_vms

    def test_plan_reduces_weighted_cost(self, result):
        assert result.planned_cost < result.plain_cost
        assert 0.0 < result.planned_cost < 1.0

    def test_accuracy_within_budget(self, result):
        # The plan's estimated loss budget is 0.1; measured extra loss
        # must respect it.
        assert result.planned_misdetection <= \
            result.plain_misdetection + 0.1

    def test_report_renders(self, result):
        text = result.report()
        assert "Multi-task" in text
        assert "correlation plan" in text

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            multitask_experiment(num_vms=0)
        with pytest.raises(ConfigurationError):
            multitask_experiment(num_vms=1, profile_fraction=0.01)
