"""Serial-vs-parallel equivalence for the sweep execution layer.

The whole point of :mod:`repro.experiments.parallel` is that fanning a
figure sweep out over a process pool changes *nothing* about the numbers:
``workers=1`` and ``workers=N`` must produce bit-for-bit identical cell
matrices, independent of worker count and job submission order.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import fig5, fig8
from repro.experiments.parallel import (SweepJob, job_key, job_streams,
                                        resolve_workers, run_sweep)
from repro.experiments.runner import run_periodic

FIG5_KWARGS = dict(num_streams=2, horizon=1500,
                   selectivities=(3.2, 0.4),
                   error_allowances=(0.008, 0.032))


def _double(*, x: float) -> float:
    """Module-level job function (picklable by reference)."""
    return x * 2.0


class TestSerialParallelEquivalence:
    def test_fig5_matrices_identical(self):
        serial = fig5("network", workers=1, **FIG5_KWARGS)
        parallel = fig5("network", workers=4, **FIG5_KWARGS)
        # Exact equality of every cell — not approx: the parallel path
        # must be bit-for-bit the serial path.
        assert serial.cells == parallel.cells
        assert serial.selectivities == parallel.selectivities
        assert serial.error_allowances == parallel.error_allowances

    def test_fig5_worker_count_irrelevant(self):
        two = fig5("network", workers=2, **FIG5_KWARGS)
        three = fig5("network", workers=3, **FIG5_KWARGS)
        assert two.cells == three.cells

    def test_fig8_matrices_identical(self):
        kwargs = dict(skews=(0.0, 1.0), num_monitors=3, horizon=3000,
                      repeats=2)
        serial = fig8(workers=1, **kwargs)
        parallel = fig8(workers=4, **kwargs)
        assert serial.even_ratios == parallel.even_ratios
        assert serial.adaptive_ratios == parallel.adaptive_ratios
        assert serial.even_misdetection == parallel.even_misdetection
        assert serial.adaptive_misdetection == parallel.adaptive_misdetection

    def test_submission_order_irrelevant(self):
        jobs = [SweepJob.call(_double, x=float(i)) for i in range(6)]
        forward, _ = run_sweep(jobs, workers=2)
        backward, _ = run_sweep(list(reversed(jobs)), workers=2)
        # Results come back in job order, so reversing the submission
        # order reverses the result list — and nothing else.
        assert forward == list(reversed(backward))
        assert forward == [float(i) * 2.0 for i in range(6)]


class TestRunSweep:
    def test_results_in_job_order(self):
        jobs = [SweepJob.call(_double, x=float(i)) for i in (5, 1, 3)]
        results, stats = run_sweep(jobs, workers=1)
        assert results == [10.0, 2.0, 6.0]
        assert stats.jobs == 3
        assert stats.cache_hits == 0
        assert stats.cache_misses == 3
        assert stats.workers == 1
        assert len(stats.cell_seconds) == 3
        assert stats.wall_seconds >= 0.0

    def test_empty_sweep(self):
        results, stats = run_sweep([], workers=2)
        assert results == []
        assert stats.jobs == 0
        assert stats.hit_rate == 0.0

    def test_stats_report_renders(self):
        _, stats = run_sweep([SweepJob.call(_double, x=1.0)], workers=1)
        text = stats.report()
        assert "[sweep]" in text
        assert "1 cells" in text
        assert "wall" in text


class TestWorkerResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers() == 7

    def test_cpu_count_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers() >= 1

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()


class TestJobStreams:
    def test_same_job_same_streams(self):
        job = SweepJob.call(_double, x=1.0)
        a = job_streams(0, job).stream("noise", 0)
        b = job_streams(0, job).stream("noise", 0)
        assert a.standard_normal(8).tolist() == b.standard_normal(8).tolist()

    def test_distinct_jobs_distinct_streams(self):
        a = job_streams(0, SweepJob.call(_double, x=1.0)).stream("noise", 0)
        b = job_streams(0, SweepJob.call(_double, x=2.0)).stream("noise", 0)
        assert a.standard_normal(8).tolist() != b.standard_normal(8).tolist()

    def test_seed_matters(self):
        job = SweepJob.call(_double, x=1.0)
        a = job_streams(0, job).stream("noise", 0)
        b = job_streams(1, job).stream("noise", 0)
        assert a.standard_normal(8).tolist() != b.standard_normal(8).tolist()


class TestJobSpec:
    def test_label_not_part_of_identity(self):
        a = SweepJob.call(_double, label="a", x=1.0)
        b = SweepJob.call(_double, label="b", x=1.0)
        assert job_key(a) == job_key(b)

    def test_kwargs_order_irrelevant(self):
        a = SweepJob(func=_double, kwargs=(("x", 1.0),))
        b = SweepJob.call(_double, x=1.0)
        assert job_key(a) == job_key(b)

    def test_unhashable_spec_rejected(self):
        job = SweepJob.call(_double, x=run_periodic)  # a function value
        with pytest.raises(ConfigurationError):
            job_key(job)
