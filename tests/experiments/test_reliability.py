"""Tests for the message-loss reliability experiment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datacenter.network import VirtualNetwork
from repro.exceptions import ConfigurationError
from repro.experiments.reliability import reliability_experiment


class TestLossyNetwork:
    def test_reliable_by_default(self):
        net = VirtualNetwork()
        assert all(net.deliver("violation-report") for _ in range(100))
        assert net.total_dropped == 0

    def test_loss_rate_realised(self):
        net = VirtualNetwork(loss_rate=0.3,
                             rng=np.random.default_rng(0))
        outcomes = [net.deliver("x") for _ in range(5000)]
        dropped = outcomes.count(False)
        assert dropped == net.total_dropped == net.dropped_of("x")
        assert dropped / 5000 == pytest.approx(0.3, abs=0.03)

    def test_loss_requires_rng(self):
        with pytest.raises(ConfigurationError):
            VirtualNetwork(loss_rate=0.1)

    def test_bad_loss_rate(self):
        with pytest.raises(ConfigurationError):
            VirtualNetwork(loss_rate=1.0, rng=np.random.default_rng(0))


class TestReliabilityExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        return reliability_experiment(loss_rates=(0.0, 0.2, 0.4),
                                      horizon=900)

    def test_reliable_network_has_full_recall(self, result):
        assert result.recalls[0] == 1.0
        assert result.dropped_reports[0] == 0
        assert result.truth_alerts > 0

    def test_recall_degrades_with_loss(self, result):
        assert result.recalls[-1] < result.recalls[0]
        # With a single reporter, recall tracks the delivery probability.
        assert result.recalls[-1] == pytest.approx(0.6, abs=0.25)

    def test_drops_increase_with_loss(self, result):
        assert result.dropped_reports[-1] > result.dropped_reports[1] > 0

    def test_report_renders(self, result):
        assert "message loss" in result.report()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            reliability_experiment(loss_rates=())
        with pytest.raises(ConfigurationError):
            reliability_experiment(loss_rates=(1.5,))
