"""Tests for text reporting."""

from __future__ import annotations

from repro.experiments.reporting import format_matrix, format_table


def test_format_table_alignment():
    text = format_table(["name", "value"], [["a", 1.5], ["bb", 20]],
                        title="caption")
    lines = text.splitlines()
    assert lines[0] == "caption"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.500" in text
    assert "20" in text


def test_format_matrix_cells_and_gaps():
    values = {(1, "a"): 0.5, (2, "b"): 0.25}
    text = format_matrix("row", [1, 2], "col", ["a", "b"], values)
    assert "0.500" in text
    assert "0.250" in text
    assert "-" in text  # missing cells rendered as dashes


def test_format_matrix_custom_format():
    values = {(1, "a"): 0.123456}
    text = format_matrix("r", [1], "c", ["a"], values, fmt="{:.5f}")
    assert "0.12346" in text
