"""Tests for the single-monitor experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import TraceError
from repro.experiments.runner import (run_adaptive, run_periodic,
                                      run_sampler_on_trace, run_triggered)
from repro.baselines.periodic import PeriodicSampler


class TestRunSamplerOnTrace:
    def test_periodic_covers_grid(self):
        values = np.zeros(100)
        result = run_sampler_on_trace(values, PeriodicSampler(7), 1.0)
        assert result.sampled_indices.tolist() == list(range(0, 100, 7))
        assert result.intervals.tolist() == [7] * len(result.sampled_indices)

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceError):
            run_sampler_on_trace(np.array([]), PeriodicSampler(), 1.0)

    def test_interval_recording_optional(self):
        values = np.zeros(10)
        result = run_sampler_on_trace(values, PeriodicSampler(), 1.0,
                                      record_intervals=False)
        assert result.intervals.size == 0


class TestRunPeriodic:
    def test_interval_one_is_ground_truth(self, bursty_trace):
        result = run_periodic(bursty_trace, 100.0, interval=1)
        assert result.sampling_ratio == 1.0
        assert result.misdetection_rate == 0.0

    def test_large_interval_misses(self, bursty_trace):
        result = run_periodic(bursty_trace, 100.0, interval=40)
        assert result.sampling_ratio == pytest.approx(1.0 / 40, abs=0.01)
        assert result.misdetection_rate > 0.0


class TestRunAdaptive:
    def test_saves_cost_with_bounded_misdetection(self, bursty_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.02,
                        max_interval=10)
        result = run_adaptive(bursty_trace, task)
        assert result.sampling_ratio < 0.8
        assert result.misdetection_rate <= 0.1

    def test_zero_allowance_equals_periodic(self, bursty_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        result = run_adaptive(bursty_trace, task)
        assert result.sampling_ratio == 1.0

    def test_larger_allowance_weakly_cheaper(self, bursty_trace):
        ratios = []
        for err in (0.002, 0.008, 0.032):
            task = TaskSpec(threshold=100.0, error_allowance=err,
                            max_interval=10)
            ratios.append(run_adaptive(bursty_trace, task).sampling_ratio)
        assert ratios[0] >= ratios[-1]

    def test_custom_config_used(self, bursty_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.02,
                        max_interval=10)
        eager = run_adaptive(bursty_trace, task,
                             AdaptationConfig(patience=2, min_samples=5))
        default = run_adaptive(bursty_trace, task)
        # Lower patience grows faster, hence fewer samples.
        assert eager.sampling_ratio <= default.sampling_ratio


class TestRunTriggered:
    def test_cold_trigger_saves_cost(self, quiet_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        trigger = np.zeros_like(quiet_trace)  # always cold
        result = run_triggered(quiet_trace, trigger, task,
                               elevation_level=1.0, suspend_interval=10)
        assert result.sampling_ratio == pytest.approx(0.1, abs=0.01)

    def test_hot_trigger_restores_full_sampling(self, quiet_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        trigger = np.full_like(quiet_trace, 10.0)  # always hot
        result = run_triggered(quiet_trace, trigger, task,
                               elevation_level=1.0, suspend_interval=10)
        assert result.sampling_ratio == 1.0

    def test_misaligned_trigger_rejected(self, quiet_trace):
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        with pytest.raises(TraceError):
            run_triggered(quiet_trace, quiet_trace[:-1], task, 1.0)

    def test_pinned_schedule(self):
        # Regression pin for the shared sample loop: with a zero error
        # allowance the inner sampler always asks for interval 1, so the
        # triggered schedule is fully hand-computable. Trigger is cold
        # (idle interval 4) except over grid points 8-11:
        #   t=0 ->+4, t=4 ->+4, t=8..11 hot ->+1 each, t=12 ->+4,
        #   t=16 ->+4, stop at 20.
        values = np.zeros(20)
        trigger = np.zeros(20)
        trigger[8:12] = 5.0
        task = TaskSpec(threshold=100.0, error_allowance=0.0)
        result = run_triggered(values, trigger, task,
                               elevation_level=1.0, suspend_interval=4)
        assert result.sampled_indices.tolist() == [0, 4, 8, 9, 10, 11,
                                                   12, 16]
        assert result.intervals.tolist() == [4, 4, 1, 1, 1, 1, 4, 4]
        assert result.misdetection_rate == 0.0

    def test_hot_trigger_matches_adaptive_schedule(self, bursty_trace):
        # Drift guard: with the trigger always elevated the triggered
        # runner must walk exactly the schedule of the plain adaptive
        # runner — both now share one sample loop.
        task = TaskSpec(threshold=100.0, error_allowance=0.02,
                        max_interval=10)
        trigger = np.full_like(bursty_trace, 10.0)
        triggered = run_triggered(bursty_trace, trigger, task,
                                  elevation_level=1.0)
        adaptive = run_adaptive(bursty_trace, task)
        assert triggered.sampled_indices.tolist() == \
            adaptive.sampled_indices.tolist()
        assert triggered.intervals.tolist() == adaptive.intervals.tolist()
        assert triggered.accuracy == adaptive.accuracy
