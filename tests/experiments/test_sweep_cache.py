"""Cache behaviour of the parallel sweep layer.

The contract: a repeated identical sweep performs *zero* recomputation,
a changed axis invalidates only the affected cells, and a corrupted or
truncated cache entry is a miss — never an error.
"""

from __future__ import annotations

import pickle

from repro.experiments.figures import fig5
from repro.experiments.parallel import (CACHE_VERSION, SweepCache, SweepJob,
                                        job_key, run_sweep)

#: recomputation counter, visible because cache tests run at ``workers=1``
#: (strictly in-process)
CALLS: list[float] = []


def _counted(*, x: float) -> float:
    CALLS.append(x)
    return x * 10.0


def _sweep(xs, cache):
    jobs = [SweepJob.call(_counted, x=float(x)) for x in xs]
    return run_sweep(jobs, workers=1, cache=cache)


class TestCacheReuse:
    def test_second_identical_sweep_recomputes_nothing(self, tmp_path):
        cache = SweepCache(tmp_path)
        CALLS.clear()
        first, stats1 = _sweep((1, 2, 3), cache)
        assert stats1.cache_hits == 0 and stats1.cache_misses == 3
        assert CALLS == [1.0, 2.0, 3.0]

        second, stats2 = _sweep((1, 2, 3), cache)
        assert CALLS == [1.0, 2.0, 3.0]  # zero recomputation
        assert stats2.cache_hits == 3 and stats2.cache_misses == 0
        assert second == first

    def test_changed_axis_invalidates_only_affected_cells(self, tmp_path):
        cache = SweepCache(tmp_path)
        CALLS.clear()
        _sweep((1, 2, 3), cache)
        CALLS.clear()
        results, stats = _sweep((1, 2, 4), cache)
        # Only the new cell (x=4) is computed; 1 and 2 come from cache.
        assert CALLS == [4.0]
        assert stats.cache_hits == 2 and stats.cache_misses == 1
        assert results == [10.0, 20.0, 40.0]

    def test_cache_round_trip_is_exact(self, tmp_path):
        cache = SweepCache(tmp_path)
        value = {"floats": (0.1, 2.5e-17), "nested": [1, "x", None]}
        cache.store("k" * 64, value)
        hit, loaded = cache.load("k" * 64)
        assert hit and loaded == value

    def test_clear_removes_everything(self, tmp_path):
        cache = SweepCache(tmp_path)
        _sweep((1, 2), cache)
        assert cache.clear() == 2
        hit, _ = cache.load(job_key(SweepJob.call(_counted, x=1.0)))
        assert not hit


class TestCacheRobustness:
    def test_truncated_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        _sweep((5,), cache)
        key = job_key(SweepJob.call(_counted, x=5.0))
        path = cache.path(key)
        path.write_bytes(path.read_bytes()[:3])  # truncate mid-pickle

        CALLS.clear()
        results, stats = _sweep((5,), cache)
        assert results == [50.0]
        assert CALLS == [5.0]  # recomputed, not crashed
        assert stats.cache_misses == 1
        # ... and the recomputation repaired the entry.
        hit, value = cache.load(key)
        assert hit and value == 50.0

    def test_garbage_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = job_key(SweepJob.call(_counted, x=6.0))
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle at all")
        hit, _ = cache.load(key)
        assert not hit

    def test_missing_entry_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        hit, value = cache.load("0" * 64)
        assert not hit and value is None

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        key = "a" * 64
        cache.store(key, 1.0)
        payload = {"version": CACHE_VERSION + 1, "key": key, "value": 1.0}
        cache.path(key).write_bytes(pickle.dumps(payload))
        hit, _ = cache.load(key)
        assert not hit

    def test_key_mismatch_is_a_miss(self, tmp_path):
        # An entry whose recorded key disagrees with its filename (e.g.
        # a file copied by hand) must not be served.
        cache = SweepCache(tmp_path)
        cache.store("b" * 64, 2.0)
        target = cache.path("c" * 64)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(cache.path("b" * 64).read_bytes())
        hit, _ = cache.load("c" * 64)
        assert not hit


class TestFigureLevelCaching:
    def test_fig5_repeat_hits_every_cell(self, tmp_path):
        cache = SweepCache(tmp_path)
        kwargs = dict(num_streams=2, horizon=1000,
                      selectivities=(3.2, 0.4),
                      error_allowances=(0.008, 0.032))
        first = fig5("network", workers=1, cache=cache, **kwargs)
        assert first.sweep_stats.cache_hits == 0
        second = fig5("network", workers=1, cache=cache, **kwargs)
        assert second.sweep_stats.cache_hits == len(second.cells)
        assert second.sweep_stats.cache_misses == 0
        assert second.cells == first.cells

    def test_fig5_changed_seed_misses(self, tmp_path):
        cache = SweepCache(tmp_path)
        kwargs = dict(num_streams=1, horizon=800, selectivities=(0.4,),
                      error_allowances=(0.032,))
        fig5("network", seed=0, workers=1, cache=cache, **kwargs)
        other = fig5("network", seed=1, workers=1, cache=cache, **kwargs)
        assert other.sweep_stats.cache_hits == 0

    def test_parallel_run_populates_cache_for_serial(self, tmp_path):
        cache = SweepCache(tmp_path)
        kwargs = dict(num_streams=1, horizon=800,
                      selectivities=(3.2, 0.4),
                      error_allowances=(0.032,))
        parallel = fig5("network", workers=2, cache=cache, **kwargs)
        serial = fig5("network", workers=1, cache=cache, **kwargs)
        assert serial.sweep_stats.cache_hits == 2
        assert serial.cells == parallel.cells
