"""Integration tests across the whole stack.

These exercise the paths a user of the library walks: generate a domain
workload, pick a threshold by selectivity, run Volley against the periodic
baseline, check accuracy; run a DDoS scenario on the datacenter testbed;
plan and apply correlation triggering across tasks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (AdaptationConfig, CorrelationPlanner, DistributedTaskSpec,
                   OracleSampler, TaskProfile, TaskSpec, run_adaptive,
                   run_distributed_task, run_periodic, run_sampler_on_trace,
                   run_triggered)
from repro.workloads import (SynFloodAttack, SystemMetricsDataset,
                             TrafficDifferenceGenerator,
                             WebWorkloadGenerator, inject_attacks,
                             threshold_for_selectivity)


class TestNetworkPipeline:
    def test_volley_vs_periodic_vs_oracle(self, rng):
        gen = TrafficDifferenceGenerator()
        rho = gen.generate(15_000, rng)
        threshold = threshold_for_selectivity(rho, 0.4)
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        max_interval=10)

        volley = run_adaptive(rho, task)
        periodic = run_periodic(rho, threshold)
        oracle = run_sampler_on_trace(
            rho, OracleSampler(rho, threshold), threshold)

        # Cost ordering: oracle <= volley < periodic.
        assert oracle.sampling_ratio <= volley.sampling_ratio
        assert volley.sampling_ratio < periodic.sampling_ratio
        # Volley's accuracy loss stays near the allowance.
        assert volley.misdetection_rate <= 0.05
        assert periodic.misdetection_rate == 0.0

    def test_ddos_attack_detected_despite_adaptation(self, rng):
        gen = TrafficDifferenceGenerator(burst_prob=0.0)
        rho = gen.generate(8000, rng)
        attack = SynFloodAttack(start=6000, peak_syn_rate=5000.0,
                                ramp_steps=8, hold_steps=40)
        attacked = inject_attacks(rho, [attack])
        threshold = 1000.0
        task = TaskSpec(threshold=threshold, error_allowance=0.01,
                        max_interval=10)
        result = run_adaptive(attacked, task)
        # The attack plateau must be seen: at least one sampled point
        # inside the attack window is above the threshold.
        start, end = attack.alert_window()
        hits = [t for t in result.sampled_indices
                if start <= t < end and attacked[t] > threshold]
        assert hits, "SYN flood escaped detection"
        # Detection happens within the ramp plus a couple of intervals.
        assert min(hits) - start <= attack.ramp_steps + 2 * 10


class TestSystemPipeline:
    def test_metric_sweep_monotone_in_allowance(self):
        dataset = SystemMetricsDataset(num_nodes=1, seed=5)
        values = dataset.generate(0, "load_1m", 12_000)
        threshold = threshold_for_selectivity(values, 0.4)
        ratios = []
        for err in (0.002, 0.032):
            task = TaskSpec(threshold=threshold, error_allowance=err,
                            max_interval=10)
            ratios.append(run_adaptive(values, task).sampling_ratio)
        assert ratios[1] <= ratios[0]


class TestApplicationPipeline:
    def test_flash_crowd_object_monitoring(self, rng):
        gen = WebWorkloadGenerator(diurnal_period=10_000)
        trace = gen.access_rate_trace(10, 20_000, rng)
        threshold = trace.percentile_threshold(0.4)
        task = TaskSpec(threshold=threshold, error_allowance=0.016,
                        max_interval=10)
        result = run_adaptive(trace.values, task)
        assert result.sampling_ratio < 0.9
        assert result.misdetection_rate <= 0.1


class TestDistributedPipeline:
    def test_correlated_attack_raises_global_alert(self, rng):
        # Four servers hosting one application; a flood hits all of them,
        # so the global (sum) state crosses while local streams also do.
        m, n = 4, 6000
        traces = []
        attack = SynFloodAttack(start=5000, peak_syn_rate=2000.0,
                                ramp_steps=10, hold_steps=30)
        for i in range(m):
            base = TrafficDifferenceGenerator(burst_prob=0.0).generate(
                n, rng)
            traces.append(inject_attacks(base, [attack]))
        spec = DistributedTaskSpec(
            global_threshold=4000.0,
            local_thresholds=(1000.0,) * m,
            error_allowance=0.01, max_interval=10)
        result = run_distributed_task(traces, spec, keep_polls=True)
        assert result.truth_alerts > 0
        assert result.detected_alerts > 0
        assert result.misdetection_rate <= 0.2
        assert any(p.violated for p in result.polls)


class TestCorrelationPipeline:
    def test_plan_then_run_triggered(self, rng):
        n = 20_000
        # Response time (cheap) rises whenever traffic difference (costly
        # to sample) is about to violate.
        response = 20.0 + rng.normal(0.0, 1.0, n)
        rho = TrafficDifferenceGenerator(burst_prob=0.0).generate(n, rng)
        for s in range(2000, n - 100, 2400):
            response[s:s + 80] += 200.0
            rho[s + 10:s + 70] += 3000.0
        rho_threshold = 1000.0

        planner = CorrelationPlanner(min_score=0.9, loss_budget=0.1,
                                     suspend_interval=10)
        rules = planner.plan([
            TaskProfile(task_id="response", values=response,
                        threshold=150.0, cost_per_sample=1.0),
            TaskProfile(task_id="ddos", values=rho,
                        threshold=rho_threshold, cost_per_sample=40.0),
        ])
        assert len(rules) == 1
        rule = rules[0]

        task = TaskSpec(threshold=rho_threshold, error_allowance=0.01,
                        max_interval=10)
        guarded = run_triggered(rho, response, task, rule.elevation_level,
                                suspend_interval=10,
                                config=AdaptationConfig())
        unguarded = run_adaptive(rho, task)
        # Triggering saves cost on top of plain adaptation without
        # blowing the accuracy loss budget.
        assert guarded.sampling_ratio <= unguarded.sampling_ratio + 0.01
        assert guarded.misdetection_rate <= 0.15
