"""Scenario-level integration tests: the stories the paper tells, end to
end through the public API."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (AdaptationConfig, AggregateKind, MonitoringService,
                   TaskSpec, ThresholdDirection, run_adaptive)
from repro.experiments.delay import detection_delay_experiment
from repro.experiments.multitask import multitask_experiment
from repro.workloads import (SystemMetricsDataset, WebWorkloadGenerator,
                             load_traces, save_traces)
from repro.workloads.base import MetricTrace


class TestLowerThresholdScenario:
    def test_free_memory_monitoring(self):
        """'Alert when free memory drops below the floor' — a lower
        threshold task, exercised end to end."""
        dataset = SystemMetricsDataset(num_nodes=1, seed=11)
        free_mb = dataset.generate(0, "mem_free_mb", 12_000)
        floor = float(np.percentile(free_mb, 0.4))
        task = TaskSpec(threshold=floor, error_allowance=0.01,
                        max_interval=10,
                        direction=ThresholdDirection.LOWER)
        result = run_adaptive(free_mb, task)
        assert result.sampling_ratio < 1.0
        assert result.misdetection_rate <= 0.1
        assert result.accuracy.truth_alerts > 0


class TestAutoscalingScenario:
    def test_throughput_window_trigger(self):
        """EC2-style autoscaling (paper SV-A): add capacity when the
        1-minute mean throughput crosses a level."""
        rng = np.random.default_rng(13)
        gen = WebWorkloadGenerator(diurnal_period=8000)
        requests = gen.site_requests(16_000, rng)
        scale_ups = []
        service = MonitoringService(AdaptationConfig())
        threshold = float(np.percentile(requests, 99.0))
        service.add_task(
            "throughput",
            TaskSpec(threshold=threshold, error_allowance=0.016,
                     max_interval=10),
            window=60, window_kind=AggregateKind.MEAN,
            on_alert=lambda a: scale_ups.append(a.time_index))
        sampled = 0
        for step, value in enumerate(requests):
            if service.due("throughput", step):
                service.offer("throughput", float(value), step)
                sampled += 1
        assert sampled < len(requests)
        # Flash crowds exist in this stream, so the trigger fires.
        assert scale_ups, "autoscaler never triggered"


class TestArtifactRoundTrip:
    def test_save_run_reload_rerun(self, tmp_path, rng):
        """Persisted traces reproduce the exact experiment outcome."""
        values = 10.0 + rng.normal(0.0, 1.0, 3000)
        values[2000:2050] += 100.0
        trace = MetricTrace(values=values, default_interval=15.0,
                            name="artifact")
        save_traces(tmp_path / "run.npz", [trace])
        restored = load_traces(tmp_path / "run.npz")[0]
        task = TaskSpec(threshold=50.0, error_allowance=0.01,
                        max_interval=10)
        first = run_adaptive(trace.values, task)
        second = run_adaptive(restored.values, task)
        assert np.array_equal(first.sampled_indices,
                              second.sampled_indices)


class TestHeadlineNumbers:
    """Coarse guards around the numbers EXPERIMENTS.md reports, so doc
    and code cannot silently drift apart."""

    def test_multitask_plan_beats_plain(self):
        result = multitask_experiment(num_vms=2, horizon=12_000)
        assert result.planned_cost < result.plain_cost

    def test_delay_coverage_gap(self):
        result = detection_delay_experiment(num_episodes=6,
                                            horizon=15_000)
        assert result.volley_coverage > result.periodic_coverage
