"""Crash-recovery integration: restart mid-stream, no data loss.

The acceptance bar for the runtime's checkpoint/restore: interrupting the
server in the middle of an ingest run and restarting from the checkpoint
must lose no registered tasks and resume every sampler at its
checkpointed interval/statistics — the recovered run's alerts and sample
counts must equal an uninterrupted run over the same stream.

The deterministic tests run the server in-process on the test's own event
loop: queues are flushed with :meth:`RuntimeServer.drain` (no polling),
graceful restarts use :meth:`RuntimeServer.shutdown`, and hard crashes
use the :meth:`RuntimeServer.abort` fault seam — no wall-clock sleeps or
signal round-trips anywhere, so timing cannot flake them. One slow-marked
smoke test still exercises the real thing: a subprocess over a unix
socket, killed with SIGTERM.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ProtocolError
from repro.runtime.client import AsyncRuntimeClient, RuntimeClient
from repro.runtime.server import RuntimeServer
from repro.service import MonitoringService
from repro.testkit.invariants import snapshot_fingerprint

REPO_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

TASKS = [f"vm-{i:02d}" for i in range(8)]
THRESHOLD = 100.0
ERR = 0.05
MAX_INTERVAL = 8
STEPS = 400
SPLIT = 200
SHARDS = 4
# Faster adaptation than the paper's defaults so the samplers reach
# non-trivial intervals within the test's 200-step first half.
ADAPTATION = {"patience": 5, "min_samples": 5, "stats_restart": 100}


def make_stream() -> np.ndarray:
    rng = np.random.default_rng(42)
    # Quiet band (so samplers can grow their intervals) plus short bursts
    # crossing the threshold (so alert streams are non-trivial); one burst
    # per half of the run.
    values = rng.normal(70.0, 2.0, (STEPS, len(TASKS)))
    values[40:55] += 38.0
    values[290:305] += 38.0
    return values


def reference_run(stream: np.ndarray, steps: int = STEPS,
                  ) -> MonitoringService:
    service = MonitoringService(AdaptationConfig(**ADAPTATION))
    for name in TASKS:
        service.add_task(name, TaskSpec(threshold=THRESHOLD,
                                        error_allowance=ERR,
                                        max_interval=MAX_INTERVAL))
    for step in range(steps):
        for i, name in enumerate(TASKS):
            service.offer(name, float(stream[step, i]), step)
    return service


def new_server(ckpt: pathlib.Path) -> RuntimeServer:
    return RuntimeServer(
        RuntimeConfig(shards=SHARDS, port=0, checkpoint_path=ckpt,
                      checkpoint_interval=3600.0),
        adaptation=AdaptationConfig(**ADAPTATION))


async def register_all(client: AsyncRuntimeClient) -> None:
    for name in TASKS:
        await client.register_task(name, THRESHOLD, error_allowance=ERR,
                                   max_interval=MAX_INTERVAL)


async def feed(client: AsyncRuntimeClient, stream: np.ndarray, lo: int,
               hi: int) -> None:
    for step in range(lo, hi):
        batch = [[name, step, float(stream[step, i])]
                 for i, name in enumerate(TASKS)]
        reply = await client.offer_batch(batch)
        assert reply["accepted"] == len(batch), reply


def test_graceful_restart_matches_uninterrupted_run(tmp_path):
    stream = make_stream()
    ckpt = tmp_path / "ckpt.json"

    async def scenario():
        # --- Phase 1: serve, register, feed the first half, shut down. --
        server = new_server(ckpt)
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            await register_all(client)
            await feed(client, stream, 0, SPLIT)
            await server.drain()
            # Half-time sanity: samplers must have adapted (grown
            # intervals), so the checkpoint carries non-trivial state.
            intervals = {name: (await client.task_info(name))["interval"]
                         for name in TASKS}
            assert any(iv > 1 for iv in intervals.values())
        finally:
            await client.close()
            await server.shutdown()  # drains + flushes the checkpoint
        assert ckpt.exists()

        # --- Phase 2: restart from the checkpoint, feed the rest. ------
        server = new_server(ckpt)
        await server.start()
        assert server.restored_tasks == len(TASKS)
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            # No registered task may be lost across the restart, and each
            # sampler resumes at its checkpointed interval.
            for name in TASKS:
                info = await client.task_info(name)
                assert info["interval"] == intervals[name]
            await feed(client, stream, SPLIT, STEPS)
            await server.drain()

            reference = reference_run(stream)
            for name in TASKS:
                info = await client.task_info(name)
                assert info["samples_taken"] \
                    == reference.samples_taken(name), \
                    f"{name}: sample count diverged after recovery"
                assert info["interval"] == reference.interval(name)
                assert info["next_due"] == reference.next_due(name)
                recovered = await client.alerts(name)
                expected = [[a.time_index, a.value, a.threshold]
                            for a in reference.alerts(name)]
                assert recovered == expected, \
                    f"{name}: alert stream diverged after recovery"
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(scenario())


def test_hard_crash_restores_exact_checkpoint_state(tmp_path):
    """abort() voids post-checkpoint updates; restore is bit-identical."""
    stream = make_stream()
    ckpt = tmp_path / "ckpt.json"

    async def scenario():
        server = new_server(ckpt)
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            await register_all(client)
            await feed(client, stream, 0, SPLIT)
            await server.drain()
            await client.checkpoint()
            durable = [snapshot_fingerprint(w.service.snapshot())
                       for w in server._workers]
            # Updates after the checkpoint barrier: voided by the crash.
            await feed(client, stream, SPLIT, SPLIT + 50)
            await server.drain()
            assert [snapshot_fingerprint(w.service.snapshot())
                    for w in server._workers] != durable
        finally:
            await client.close()
            await server.abort()  # hard crash: no drain-flush, no write

        restarted = new_server(ckpt)
        await restarted.start()
        try:
            assert [snapshot_fingerprint(w.service.snapshot())
                    for w in restarted._workers] == durable
            # And the restored state matches a reference run over exactly
            # the pre-checkpoint prefix.
            reference = reference_run(stream, steps=SPLIT)
            client = AsyncRuntimeClient(port=restarted.tcp_port)
            try:
                for name in TASKS:
                    info = await client.task_info(name)
                    assert info["samples_taken"] \
                        == reference.samples_taken(name)
                    assert info["interval"] == reference.interval(name)
            finally:
                await client.close()
        finally:
            await restarted.shutdown()

    asyncio.run(scenario())


def test_fresh_checkpoint_restart_preserves_unfed_tasks(tmp_path):
    """Tasks registered but never offered must survive a restart too."""
    ckpt = tmp_path / "ckpt.json"

    async def scenario():
        server = new_server(ckpt)
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            await client.register_task("idle", 50.0)
        finally:
            await client.close()
            await server.shutdown()

        server = new_server(ckpt)
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            info = await client.task_info("idle")
            assert info["samples_taken"] == 0
            with pytest.raises(ProtocolError):
                await client.register_task("idle", 50.0)  # still registered
        finally:
            await client.close()
            await server.shutdown()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Real-process smoke test (slow tier): SIGTERM against a live subprocess.


def spawn_server(tmp_path: pathlib.Path, sock: pathlib.Path,
                 ckpt: pathlib.Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_SRC}{os.pathsep}" \
        + env.get("PYTHONPATH", "")
    config = tmp_path / "runtime_config.json"
    config.write_text(json.dumps({"adaptation": ADAPTATION}),
                      encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime",
         "--config", str(config),
         "--unix", str(sock), "--port", "0",
         "--shards", str(SHARDS),
         "--checkpoint", str(ckpt),
         "--checkpoint-interval", "3600"],
        env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30
    while not sock.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"server died at startup:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server did not come up in 30s")
        time.sleep(0.02)
    return proc


@pytest.mark.slow
def test_sigterm_subprocess_smoke(tmp_path):
    """One real SIGTERM round-trip: the deployment-shaped safety net.

    The deterministic tests above cover the recovery semantics; this one
    only proves the subprocess + signal-handler + unix-socket plumbing
    still works end to end.
    """
    stream = make_stream()
    sock = tmp_path / "runtime.sock"
    ckpt = tmp_path / "ckpt.json"

    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        for name in TASKS:
            client.register_task(name, THRESHOLD, error_allowance=ERR,
                                 max_interval=MAX_INTERVAL)
        for step in range(40):
            batch = [[name, step, float(stream[step, i])]
                     for i, name in enumerate(TASKS)]
            assert client.offer_batch(batch)["accepted"] == len(batch)
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0, proc.stdout.read()
        assert ckpt.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        # SIGTERM flushed a checkpoint; the restart restored every task.
        for name in TASKS:
            assert client.task_info(name)["ok"]
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
