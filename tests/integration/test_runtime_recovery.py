"""Crash-recovery integration: SIGTERM mid-stream, restart, no data loss.

The acceptance bar for the runtime's checkpoint/restore: killing the
server with SIGTERM in the middle of an ingest run and restarting from
the flushed checkpoint must lose no registered tasks and resume every
sampler at its checkpointed interval/statistics — the recovered run's
alerts and sample counts must equal an uninterrupted run over the same
stream.

Runs the real server as a subprocess over a unix socket, exactly like a
deployment would.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.exceptions import ProtocolError
from repro.runtime.client import RuntimeClient
from repro.service import MonitoringService

REPO_SRC = pathlib.Path(__file__).resolve().parents[2] / "src"

TASKS = [f"vm-{i:02d}" for i in range(8)]
THRESHOLD = 100.0
ERR = 0.05
MAX_INTERVAL = 8
STEPS = 400
SPLIT = 200
SHARDS = 4
# Faster adaptation than the paper's defaults so the samplers reach
# non-trivial intervals within the test's 200-step first half.
ADAPTATION = {"patience": 5, "min_samples": 5, "stats_restart": 100}


def make_stream() -> np.ndarray:
    rng = np.random.default_rng(42)
    # Quiet band (so samplers can grow their intervals) plus short bursts
    # crossing the threshold (so alert streams are non-trivial); one burst
    # per half of the run.
    values = rng.normal(70.0, 2.0, (STEPS, len(TASKS)))
    values[40:55] += 38.0
    values[290:305] += 38.0
    return values


def spawn_server(tmp_path: pathlib.Path, sock: pathlib.Path,
                 ckpt: pathlib.Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_SRC}{os.pathsep}" \
        + env.get("PYTHONPATH", "")
    config = tmp_path / "runtime_config.json"
    config.write_text(json.dumps({"adaptation": ADAPTATION}),
                      encoding="utf-8")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.runtime",
         "--config", str(config),
         "--unix", str(sock), "--port", "0",
         "--shards", str(SHARDS),
         "--checkpoint", str(ckpt),
         "--checkpoint-interval", "3600"],
        env=env, cwd=tmp_path,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.monotonic() + 30
    while not sock.exists():
        if proc.poll() is not None:
            raise AssertionError(
                f"server died at startup:\n{proc.stdout.read()}")
        if time.monotonic() > deadline:
            proc.kill()
            raise AssertionError("server did not come up in 30s")
        time.sleep(0.02)
    return proc


def wait_applied(client: RuntimeClient, expected: int) -> None:
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        totals = client.stats()["totals"]
        if totals["applied"] + totals["rejected"] >= expected:
            assert totals["shed"] == 0
            return
        time.sleep(0.02)
    raise AssertionError("shards did not drain in time")


def feed(client: RuntimeClient, stream: np.ndarray, lo: int,
         hi: int) -> int:
    sent = 0
    for step in range(lo, hi):
        batch = [[name, step, float(stream[step, i])]
                 for i, name in enumerate(TASKS)]
        reply = client.offer_batch(batch)
        assert reply["accepted"] == len(batch), reply
        sent += len(batch)
    return sent


def reference_run(stream: np.ndarray) -> MonitoringService:
    service = MonitoringService(AdaptationConfig(**ADAPTATION))
    for name in TASKS:
        service.add_task(name, TaskSpec(threshold=THRESHOLD,
                                        error_allowance=ERR,
                                        max_interval=MAX_INTERVAL))
    for step in range(STEPS):
        for i, name in enumerate(TASKS):
            service.offer(name, float(stream[step, i]), step)
    return service


def test_sigterm_restart_matches_uninterrupted_run(tmp_path):
    stream = make_stream()
    sock = tmp_path / "runtime.sock"
    ckpt = tmp_path / "ckpt.json"

    # --- Phase 1: serve, register, feed the first half, SIGTERM. -------
    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        for name in TASKS:
            client.register_task(name, THRESHOLD, error_allowance=ERR,
                                 max_interval=MAX_INTERVAL)
        sent = feed(client, stream, 0, SPLIT)
        # Half-time sanity: samplers must have adapted (grown intervals),
        # so the checkpoint carries non-trivial state.
        wait_applied(client, sent)
        intervals = {name: client.task_info(name)["interval"]
                     for name in TASKS}
        assert any(iv > 1 for iv in intervals.values())
        client.close()

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0, proc.stdout.read()
        assert ckpt.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # --- Phase 2: restart from the checkpoint, feed the second half. ---
    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        # No registered task may be lost across the restart...
        for name in TASKS:
            info = client.task_info(name)
            # ...and each sampler resumes at its checkpointed interval.
            assert info["interval"] == intervals[name]
        sent = feed(client, stream, SPLIT, STEPS)
        wait_applied(client, client.stats()["totals"]["offered"])

        reference = reference_run(stream)
        for name in TASKS:
            info = client.task_info(name)
            assert info["samples_taken"] == reference.samples_taken(name), \
                f"{name}: sample count diverged after recovery"
            assert info["interval"] == reference.interval(name)
            assert info["next_due"] == reference.next_due(name)
            recovered_alerts = client.alerts(name)
            expected_alerts = [[a.time_index, a.value, a.threshold]
                               for a in reference.alerts(name)]
            assert recovered_alerts == expected_alerts, \
                f"{name}: alert stream diverged after recovery"
        client.close()

        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


def test_fresh_checkpoint_restart_preserves_unfed_tasks(tmp_path):
    """Tasks registered but never offered must survive a restart too."""
    sock = tmp_path / "runtime.sock"
    ckpt = tmp_path / "ckpt.json"
    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        client.register_task("idle", 50.0)
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    proc = spawn_server(tmp_path, sock, ckpt)
    try:
        client = RuntimeClient(unix_socket=sock)
        info = client.task_info("idle")
        assert info["samples_taken"] == 0
        with pytest.raises(ProtocolError):
            client.register_task("idle", 50.0)  # still registered
        client.close()
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
