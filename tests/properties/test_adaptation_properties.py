"""Hypothesis property tests over the adaptation invariants.

These drive the full sampler over arbitrary bounded traces and check the
invariants that must hold for *any* input: interval bounds, zero-allowance
degeneration, schedule validity, and the accuracy bookkeeping identities.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import evaluate_sampling
from repro.core.adaptation import (AdaptationConfig,
                                   ViolationLikelihoodSampler)
from repro.core.task import TaskSpec
from repro.experiments.runner import run_sampler_on_trace

bounded_floats = st.floats(min_value=-1e5, max_value=1e5,
                           allow_nan=False, allow_infinity=False)
traces = st.lists(bounded_floats, min_size=5, max_size=400)


def drive(trace, task, config):
    sampler = ViolationLikelihoodSampler(task, config)
    t, intervals = 0, []
    n = len(trace)
    while t < n:
        decision = sampler.observe(float(trace[t]), t)
        intervals.append(decision.next_interval)
        t += max(1, decision.next_interval)
    return sampler, intervals


class TestIntervalInvariants:
    @given(trace=traces,
           err=st.floats(min_value=0.0, max_value=0.5, allow_nan=False),
           max_interval=st.integers(min_value=1, max_value=15))
    @settings(max_examples=120, deadline=None)
    def test_interval_always_within_bounds(self, trace, err, max_interval):
        task = TaskSpec(threshold=100.0, error_allowance=err,
                        max_interval=max_interval)
        config = AdaptationConfig(patience=2, min_samples=2)
        _, intervals = drive(trace, task, config)
        assert all(1 <= i <= max_interval for i in intervals)

    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_zero_allowance_is_periodic(self, trace):
        task = TaskSpec(threshold=0.0, error_allowance=0.0)
        _, intervals = drive(trace, task, AdaptationConfig())
        assert all(i == 1 for i in intervals)

    @given(trace=traces,
           err=st.floats(min_value=0.001, max_value=0.2, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_bound_always_in_unit_interval(self, trace, err):
        task = TaskSpec(threshold=50.0, error_allowance=err,
                        max_interval=8)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=2, min_samples=2))
        t = 0
        while t < len(trace):
            decision = sampler.observe(float(trace[t]), t)
            assert 0.0 <= decision.misdetection_bound <= 1.0
            t += max(1, decision.next_interval)


class TestScheduleInvariants:
    @given(trace=st.lists(bounded_floats, min_size=5, max_size=300),
           err=st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_schedule_strictly_increasing_and_covers_start(self, trace,
                                                           err):
        task = TaskSpec(threshold=10.0, error_allowance=err,
                        max_interval=10)
        sampler = ViolationLikelihoodSampler(
            task, AdaptationConfig(patience=2, min_samples=2))
        result = run_sampler_on_trace(np.asarray(trace), sampler, 10.0)
        indices = result.sampled_indices
        assert indices[0] == 0
        assert (np.diff(indices) >= 1).all()
        assert indices[-1] < len(trace)

    @given(trace=st.lists(bounded_floats, min_size=5, max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_accuracy_identities(self, trace):
        arr = np.asarray(trace)
        threshold = float(np.median(arr))
        sampled = list(range(0, arr.size, 3))
        result = evaluate_sampling(arr, threshold, sampled)
        assert 0 <= result.detected_alerts <= result.truth_alerts
        assert 0 <= result.detected_episodes <= result.truth_episodes
        assert 0.0 <= result.misdetection_rate <= 1.0
        assert 0.0 <= result.sampling_ratio <= 1.0
        # detected + missed fractions reconcile.
        if result.truth_alerts:
            assert result.misdetection_rate == \
                1.0 - result.detected_alerts / result.truth_alerts


class TestCoordinationInvariants:
    @given(yields=st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                  st.floats(min_value=1e-9, max_value=1.0,
                            allow_nan=False)),
        min_size=2, max_size=12),
        total=st.floats(min_value=1e-4, max_value=0.5, allow_nan=False))
    @settings(max_examples=120, deadline=None)
    def test_allocations_conserve_total_and_respect_floor(self, yields,
                                                          total):
        from repro.core.adaptation import CoordinationStats
        from repro.core.coordination import AdaptiveAllocation

        policy = AdaptiveAllocation(step=1.0, uniform_spread=0.0)
        m = len(yields)
        current = tuple(total / m for _ in range(m))
        reports = [CoordinationStats(avg_cost_reduction=r,
                                     avg_error_needed=e,
                                     observations=10)
                   for r, e in yields]
        update = policy.reallocate(current, reports, total)
        assert sum(update.allocations) <= total * (1.0 + 1e-6)
        if update.reallocated:
            assert sum(update.allocations) >= total * (1.0 - 1e-6)
            floor = total * 0.01
            assert min(update.allocations) >= floor * (1.0 - 1e-9)
