"""Hypothesis properties: checkpoint state round-trips bit-identically.

The recovery story (DESIGN.md S28) rests on one property: serialising
any component mid-run and restoring it yields an object whose future
behaviour is *bit-identical* to the original's — not approximately equal,
identical. These properties drive randomly generated streams to a random
split point, round-trip the state through JSON (what a checkpoint file
actually stores), and demand exact equality from then on.
"""

from __future__ import annotations

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.online_stats import OnlineStatistics
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.service import MonitoringService
from repro.testkit.invariants import snapshot_fingerprint

bounded = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


def roundtrip(state):
    """What a checkpoint does to a state dict: JSON out, JSON in."""
    return json.loads(json.dumps(state))


class TestOnlineStatisticsRoundtrip:
    @given(values=st.lists(bounded, min_size=1, max_size=300),
           restart_after=st.one_of(st.none(),
                                   st.integers(min_value=5, max_value=60)),
           extra=st.lists(bounded, min_size=0, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_restored_statistics_evolve_identically(self, values,
                                                    restart_after, extra):
        # `restart_after` small enough that restarts happen mid-stream, so
        # the fresh-window bookkeeping round-trips too.
        stats = OnlineStatistics(restart_after=restart_after, min_fresh=3)
        for x in values:
            stats.update(x)
        clone = OnlineStatistics(restart_after=restart_after, min_fresh=3)
        clone.load_state_dict(roundtrip(stats.state_dict()))
        assert clone.state_dict() == stats.state_dict()
        for x in extra:
            stats.update(x)
            clone.update(x)
            assert clone.mean == stats.mean
            assert clone.variance == stats.variance
            assert clone.effective_count == stats.effective_count
            assert clone.restarts == stats.restarts
        assert clone.state_dict() == stats.state_dict()


class TestSamplerRoundtrip:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           estimator=st.sampled_from(["chebyshev", "gaussian"]),
           split=st.integers(min_value=1, max_value=80),
           err=st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_restored_sampler_decisions_are_bit_identical(
            self, seed, estimator, split, err):
        """Snapshot at an arbitrary observation count — including right
        after a statistics restart — and the restored sampler's decision
        stream must equal the uninterrupted one exactly."""
        spec = TaskSpec(threshold=10.0, error_allowance=err, max_interval=8)
        config = AdaptationConfig(patience=3, min_samples=4,
                                  stats_restart=25, estimator=estimator)
        rng = np.random.default_rng(seed)
        values = rng.normal(7.0, 2.0, 600)

        reference = ViolationLikelihoodSampler(spec, config)
        split_sampler = ViolationLikelihoodSampler(spec, config)
        step = 0
        for _ in range(split):
            decision = reference.observe(float(values[step]), step)
            split_sampler.observe(float(values[step]), step)
            step += decision.next_interval

        restored = ViolationLikelihoodSampler(spec, config)
        restored.load_state_dict(roundtrip(split_sampler.state_dict()))
        assert restored.state_dict() == split_sampler.state_dict()

        while step < values.size:
            ref = reference.observe(float(values[step]), step)
            res = restored.observe(float(values[step]), step)
            assert ref == res
            step += ref.next_interval
        assert restored.state_dict() == reference.state_dict()

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           estimator=st.sampled_from(["chebyshev", "gaussian"]),
           record=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_run_trace_final_state_is_restorable(self, seed, estimator,
                                                 record):
        """The fused `run_trace` path (with interval recording on or off)
        must leave the sampler in a state that round-trips exactly."""
        spec = TaskSpec(threshold=10.0, error_allowance=0.05,
                        max_interval=8)
        config = AdaptationConfig(patience=3, min_samples=4,
                                  stats_restart=25, estimator=estimator)
        rng = np.random.default_rng(seed)
        values = list(rng.normal(7.0, 2.0, 300))

        sampler = ViolationLikelihoodSampler(spec, config)
        sampled, intervals = sampler.run_trace(values,
                                               record_intervals=record)
        assert (len(intervals) > 0) == record or not sampled

        restored = ViolationLikelihoodSampler(spec, config)
        restored.load_state_dict(roundtrip(sampler.state_dict()))
        assert restored.state_dict() == sampler.state_dict()
        # Both must agree on every decision over a continuation stream.
        step = 300
        for value in rng.normal(7.0, 2.0, 50):
            a = sampler.observe(float(value), step)
            b = restored.observe(float(value), step)
            assert a == b
            step += a.next_interval


class TestTypedTaskSnapshotRoundtrip:
    """Sketch-backed quantile and entropy tasks must checkpoint too.

    The substrates carry extra state (a rotating LogHistogram pair, a
    symbol window) beyond the sampler's — a snapshot taken mid-epoch,
    mid-window, or right after a rotation must restore bit-identically
    and then *stay* identical through an arbitrary continuation.
    """

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           split=st.integers(min_value=0, max_value=250),
           sketch_window=st.integers(min_value=4, max_value=40),
           entropy_window=st.integers(min_value=2, max_value=40))
    @settings(max_examples=40, deadline=None)
    def test_typed_snapshot_restore_is_bit_identical_and_continues(
            self, seed, split, sketch_window, entropy_window):
        rng = np.random.default_rng(seed)
        # Heavy-tailed so quantile truth points exist; offset so entropy
        # symbols spread over several bins.
        values = 40.0 * rng.lognormal(0.0, 0.3, 300)

        def build():
            service = MonitoringService(AdaptationConfig(patience=3,
                                                         min_samples=4))
            service.add_quantile_task("q", threshold=70.0, quantile=0.9,
                                      error_allowance=0.05, max_interval=6,
                                      sketch_window=sketch_window)
            service.add_entropy_task("h", threshold=1.0,
                                     error_allowance=0.05, max_interval=6,
                                     entropy_window=entropy_window,
                                     bin_width=8.0)
            return service

        def feed(service, lo, hi):
            for step in range(lo, hi):
                for name in ("q", "h"):
                    service.offer(name, float(values[step]), step)

        uninterrupted = build()
        feed(uninterrupted, 0, 300)

        interrupted = build()
        feed(interrupted, 0, split)
        snapshot = roundtrip(interrupted.snapshot())
        restored = MonitoringService.restore(snapshot)
        assert snapshot_fingerprint(restored.snapshot()) \
            == snapshot_fingerprint(snapshot)
        feed(restored, split, 300)

        for name in ("q", "h"):
            assert restored.samples_taken(name) \
                == uninterrupted.samples_taken(name)
            assert restored.alerts(name) == uninterrupted.alerts(name)
            assert restored.interval(name) == uninterrupted.interval(name)
            assert restored.task_estimate(name) \
                == uninterrupted.task_estimate(name)
        assert snapshot_fingerprint(restored.snapshot()) \
            == snapshot_fingerprint(uninterrupted.snapshot())


class TestServiceSnapshotRoundtrip:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           split=st.integers(min_value=0, max_value=200),
           window=st.integers(min_value=1, max_value=6),
           kind=st.sampled_from(list(AggregateKind)))
    @settings(max_examples=40, deadline=None)
    def test_snapshot_restore_is_bit_identical_and_continues(
            self, seed, split, window, kind):
        rng = np.random.default_rng(seed)
        values = rng.normal(80.0, 15.0, 300)

        def build():
            service = MonitoringService(AdaptationConfig(patience=3,
                                                         min_samples=4))
            service.add_task("inst", TaskSpec(threshold=100.0,
                                              error_allowance=0.05,
                                              max_interval=8))
            service.add_task("win", TaskSpec(threshold=95.0,
                                             error_allowance=0.02,
                                             max_interval=6),
                             window=window, window_kind=kind)
            service.add_trigger("inst", trigger="win",
                                elevation_level=70.0, suspend_interval=5)
            return service

        def feed(service, lo, hi):
            for step in range(lo, hi):
                for name in ("inst", "win"):
                    service.offer(name, float(values[step]), step)

        uninterrupted = build()
        feed(uninterrupted, 0, 300)

        interrupted = build()
        feed(interrupted, 0, split)
        snapshot = roundtrip(interrupted.snapshot())
        restored = MonitoringService.restore(snapshot)
        # Restore -> snapshot must be the identity on the wire format.
        assert snapshot_fingerprint(restored.snapshot()) \
            == snapshot_fingerprint(snapshot)
        feed(restored, split, 300)

        for name in ("inst", "win"):
            assert restored.samples_taken(name) \
                == uninterrupted.samples_taken(name)
            assert restored.alerts(name) == uninterrupted.alerts(name)
            assert restored.interval(name) == uninterrupted.interval(name)
            assert restored.next_due(name) == uninterrupted.next_due(name)
        # The full final states are bit-identical, not merely equivalent.
        assert snapshot_fingerprint(restored.snapshot()) \
            == snapshot_fingerprint(uninterrupted.snapshot())
