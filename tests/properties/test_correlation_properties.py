"""Hypothesis properties for correlation-trigger arm/disarm edges.

A :class:`~repro.core.correlation.TriggeredSampler` guards a task: cold
trigger → idle at the suspend interval, hot trigger → the inner
adaptation's decision verbatim. The edge cases worth pinning are the
boundary value itself (``trigger == level`` counts as *elevated*: only
strictly-below suspends), the ``None`` trigger (conservatively
elevated), the interval floor (idle never *shortens* an inner interval
that is already longer), and the observe/observe_fast equivalence the
runtime drain loop depends on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.correlation import TriggeredSampler
from repro.core.task import TaskSpec

values_st = st.lists(st.floats(min_value=0.0, max_value=200.0,
                               allow_nan=False),
                     min_size=1, max_size=150)
triggers_st = st.lists(st.one_of(st.none(),
                                 st.floats(min_value=0.0, max_value=100.0,
                                           allow_nan=False)),
                       min_size=1, max_size=150)


def _inner(max_interval=8):
    spec = TaskSpec(threshold=150.0, error_allowance=0.05,
                    max_interval=max_interval)
    config = AdaptationConfig(patience=3, min_samples=4)
    return ViolationLikelihoodSampler(spec, config)


class TestTriggerEdges:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           level=st.floats(min_value=10.0, max_value=90.0,
                           allow_nan=False),
           suspend=st.integers(min_value=2, max_value=20),
           n=st.integers(min_value=1, max_value=120))
    @settings(max_examples=60, deadline=None)
    def test_cold_trigger_floors_at_suspend_interval(self, seed, level,
                                                     suspend, n):
        rng = np.random.default_rng(seed)
        guarded = TriggeredSampler(_inner(), level,
                                   suspend_interval=suspend)
        shadow = _inner()
        step = 0
        suspended = 0
        for value in rng.normal(100.0, 30.0, n):
            trig = float(rng.uniform(0.0, 100.0))
            decision = guarded.observe(float(value), step)
            inner = shadow.observe(float(value), step)
            got = guarded.observe(float(value), step + 1,
                                  trigger_value=trig)
            expected = shadow.observe(float(value), step + 1)
            if trig < level:
                suspended += 1
                # Arm edge: idling floors the interval, never shrinks it.
                assert got.next_interval \
                    == max(expected.next_interval, suspend)
            else:
                # Disarm edge: the inner decision passes through verbatim.
                assert got == expected
            assert decision == inner  # no trigger given -> pass-through
            step += 2
        assert guarded.suspended_steps == suspended

    @given(level=st.floats(min_value=1.0, max_value=99.0,
                           allow_nan=False),
           suspend=st.integers(min_value=2, max_value=20))
    @settings(max_examples=40, deadline=None)
    def test_boundary_value_counts_as_elevated(self, level, suspend):
        """``trigger == level`` must NOT suspend — the arm edge is
        strictly-below, matching the planner's ``trig >= level``
        elevation convention."""
        guarded = TriggeredSampler(_inner(), level,
                                   suspend_interval=suspend)
        shadow = _inner()
        got = guarded.observe(50.0, 0, trigger_value=level)
        expected = shadow.observe(50.0, 0)
        assert got == expected
        assert guarded.suspended_steps == 0
        # Epsilon below the level is the other side of the edge.
        eps_below = np.nextafter(level, -np.inf)
        got2 = guarded.observe(50.0, 1, trigger_value=float(eps_below))
        expected2 = shadow.observe(50.0, 1)
        assert got2.next_interval == max(expected2.next_interval, suspend)
        assert guarded.suspended_steps == 1

    @given(values=values_st, triggers=triggers_st,
           level=st.floats(min_value=10.0, max_value=90.0,
                           allow_nan=False),
           suspend=st.integers(min_value=2, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_observe_fast_is_bit_equivalent(self, values, triggers, level,
                                            suspend):
        """The drain-loop surface: intervals, inner sampler state and the
        suspended-steps counter must match observe() exactly, including
        None triggers (conservatively elevated)."""
        slow = TriggeredSampler(_inner(), level, suspend_interval=suspend)
        fast = TriggeredSampler(_inner(), level, suspend_interval=suspend)
        step = 0
        for value, trig in zip(values, triggers * (
                len(values) // len(triggers) + 1)):
            a = slow.observe(float(value), step, trigger_value=trig)
            b = fast.observe_fast(float(value), step, trigger_value=trig)
            assert b == a.next_interval
            assert fast.suspended_steps == slow.suspended_steps
            assert fast.interval == slow.interval
            step += a.next_interval
        assert fast._inner.state_dict() == slow._inner.state_dict()

    @given(suspend=st.integers(min_value=2, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_none_trigger_never_suspends(self, suspend):
        guarded = TriggeredSampler(_inner(), 50.0,
                                   suspend_interval=suspend)
        shadow = _inner()
        step = 0
        for value in (10.0, 60.0, 160.0, 40.0):
            got = guarded.observe(value, step, trigger_value=None)
            expected = shadow.observe(value, step)
            assert got == expected
            step += got.next_interval
        assert guarded.suspended_steps == 0
