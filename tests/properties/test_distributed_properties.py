"""Hypothesis property tests over the distributed-task runner."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coordination import AdaptiveAllocation, EvenAllocation
from repro.core.task import DistributedTaskSpec
from repro.experiments.distributed import run_distributed_task

trace_values = st.floats(min_value=-100.0, max_value=300.0,
                         allow_nan=False)


@st.composite
def distributed_inputs(draw):
    m = draw(st.integers(min_value=1, max_value=4))
    n = draw(st.integers(min_value=20, max_value=120))
    matrix = draw(st.lists(
        st.lists(trace_values, min_size=n, max_size=n),
        min_size=m, max_size=m))
    err = draw(st.floats(min_value=0.0, max_value=0.2, allow_nan=False))
    return np.asarray(matrix), err


@given(inputs=distributed_inputs(),
       adaptive=st.booleans())
@settings(max_examples=60, deadline=None)
def test_runner_invariants(inputs, adaptive):
    matrix, err = inputs
    m, n = matrix.shape
    spec = DistributedTaskSpec(
        global_threshold=200.0 * m,
        local_thresholds=(200.0,) * m,
        error_allowance=err, max_interval=5)
    policy = AdaptiveAllocation() if adaptive else EvenAllocation()
    result = run_distributed_task(matrix, spec, policy=policy,
                                  update_period=25, keep_polls=True)

    # Cost accounting is conserved and bounded.
    assert result.total_samples == sum(result.per_monitor_samples)
    assert all(1 <= s <= n for s in result.per_monitor_samples)
    assert 0.0 < result.sampling_ratio <= 1.0

    # Detection accounting: detected alerts are real alerts.
    assert 0 <= result.detected_alerts <= result.truth_alerts
    assert 0.0 <= result.misdetection_rate <= 1.0

    # Every poll sits on a step where some monitor locally violated; a
    # violated poll really crossed the global threshold.
    for poll in result.polls:
        assert 0 <= poll.time_index < n
        assert poll.violated == (poll.total > spec.global_threshold)
        assert any(v > t for v, t
                   in zip(poll.values, spec.local_thresholds))

    # Allowance conservation after any number of reallocations.
    assert sum(result.final_allocations) == pytest.approx(
        err, abs=1e-9) or not result.reallocations

    # Message accounting: one report per local violation, 2m per poll.
    assert result.messages == (result.local_violations
                               + 2 * m * result.global_polls)


@given(inputs=distributed_inputs())
@settings(max_examples=30, deadline=None)
def test_safety_no_global_violation_without_local(inputs):
    """sum(T_i) <= T guarantees: global crossing implies some local
    crossing, so periodic-grade runs never miss for lack of polls."""
    matrix, _ = inputs
    m, n = matrix.shape
    spec = DistributedTaskSpec(
        global_threshold=200.0 * m,
        local_thresholds=(200.0,) * m,
        error_allowance=0.0, max_interval=5)
    result = run_distributed_task(matrix, spec)
    # With err=0 every monitor samples every step, so every true global
    # alert is polled and detected: the decomposition itself is safe.
    assert result.misdetection_rate == 0.0
