"""Property-based equivalence: fused fast path vs. reference (DESIGN.md S27).

Hypothesis drives randomised traces through the reference ``observe``
surface and the fused twins (``observe_fast``, whole-trace ``run_trace``)
under the conditions the optimisation could plausibly break: both
estimators, statistics restarts every few samples, recording disabled,
and coordinator-driven ``error_allowance`` retuning mid-run. The fast
path must reproduce the ``(sampled_indices, intervals, beta)`` streams
*exactly* — float equality, not approximation — and leave identical
sampler state behind.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.task import TaskSpec

values_st = st.floats(min_value=-50.0, max_value=50.0,
                      allow_nan=False, allow_infinity=False)
traces_st = st.lists(values_st, min_size=25, max_size=220)
estimators_st = st.sampled_from(["chebyshev", "gaussian"])
thresholds_st = st.floats(min_value=1.0, max_value=40.0, allow_nan=False)
allowances_st = st.floats(min_value=0.0, max_value=0.3, allow_nan=False)


def _build(trace_len: int, threshold: float, err: float, estimator: str,
           restart: int) -> tuple[TaskSpec, AdaptationConfig]:
    task = TaskSpec(threshold=threshold, error_allowance=err,
                    max_interval=6, name="prop")
    config = AdaptationConfig(estimator=estimator, patience=3,
                              stats_restart=restart, min_samples=4)
    return task, config


def _reference_streams(values, task, config, allowance_plan=None):
    """Drive ``observe`` on its own schedule; return the decision streams."""
    sampler = ViolationLikelihoodSampler(task, config)
    sampled, intervals, betas = [], [], []
    t = 0
    while t < len(values):
        if allowance_plan and t in allowance_plan:
            sampler.error_allowance = allowance_plan[t]
        decision = sampler.observe(values[t], t)
        sampled.append(t)
        step = max(1, decision.next_interval)
        intervals.append(step)
        betas.append(decision.misdetection_bound)
        t += step
    return sampled, intervals, betas, sampler


class TestObserveFastProperties:
    @given(trace=traces_st, threshold=thresholds_st, err=allowances_st,
           estimator=estimators_st,
           restart=st.integers(min_value=5, max_value=30))
    @settings(max_examples=60, deadline=None)
    def test_schedule_streams_identical(self, trace, threshold, err,
                                        estimator, restart):
        task, config = _build(len(trace), threshold, err, estimator, restart)
        sampled, intervals, betas, ref = _reference_streams(
            trace, task, config)

        fast = ViolationLikelihoodSampler(task, config)
        got_sampled, got_intervals, got_betas = [], [], []
        t = 0
        while t < len(trace):
            got_sampled.append(t)
            step = max(1, fast.observe_fast(trace[t], t))
            got_intervals.append(step)
            got_betas.append(fast.last_misdetection_bound)
            t += step

        assert got_sampled == sampled
        assert got_intervals == intervals
        assert got_betas == betas  # exact float equality
        assert fast.state_dict() == ref.state_dict()

    @given(trace=traces_st, threshold=thresholds_st, err=allowances_st,
           estimator=estimators_st,
           restart=st.integers(min_value=5, max_value=30),
           record=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_run_trace_streams_identical(self, trace, threshold, err,
                                         estimator, restart, record):
        task, config = _build(len(trace), threshold, err, estimator, restart)
        sampled, intervals, _, ref = _reference_streams(trace, task, config)

        fast = ViolationLikelihoodSampler(task, config)
        got_sampled, got_intervals = fast.run_trace(
            trace, record_intervals=record)

        assert got_sampled == sampled
        assert got_intervals == (intervals if record else [])
        assert fast.state_dict() == ref.state_dict()
        assert fast.last_misdetection_bound == ref.last_misdetection_bound

    @given(trace=traces_st, threshold=thresholds_st, err=allowances_st,
           estimator=estimators_st,
           changes=st.lists(st.tuples(
               st.integers(min_value=0, max_value=200),
               st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
               min_size=1, max_size=4))
    @settings(max_examples=60, deadline=None)
    def test_mid_run_allowance_changes_identical(self, trace, threshold,
                                                 err, estimator, changes):
        """Coordinator retuning between samples must not break equivalence."""
        task, config = _build(len(trace), threshold, err, estimator, 15)
        plan = dict(changes)
        sampled, intervals, betas, ref = _reference_streams(
            trace, task, config, allowance_plan=plan)

        fast = ViolationLikelihoodSampler(task, config)
        got_sampled, got_intervals, got_betas = [], [], []
        t = 0
        while t < len(trace):
            if t in plan:
                fast.error_allowance = plan[t]
            got_sampled.append(t)
            step = max(1, fast.observe_fast(trace[t], t))
            got_intervals.append(step)
            got_betas.append(fast.last_misdetection_bound)
            t += step

        assert got_sampled == sampled
        assert got_intervals == intervals
        assert got_betas == betas
        assert fast.state_dict() == ref.state_dict()

    @given(trace=traces_st, threshold=thresholds_st, err=allowances_st,
           estimator=estimators_st,
           changes=st.lists(st.tuples(
               st.integers(min_value=1, max_value=200),
               st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
               min_size=1, max_size=3))
    @settings(max_examples=40, deadline=None)
    def test_run_trace_segments_with_retuning(self, trace, threshold, err,
                                              estimator, changes):
        """run_trace in coordinator epochs == stepwise observe with plan."""
        task, config = _build(len(trace), threshold, err, estimator, 15)
        plan = dict(changes)
        # The reference applies retunes at exact grid points; run_trace
        # hoists the allowance per call, so segment the trace at each
        # retune point and retune between segments. Only retunes landing
        # on a sample point take effect in the reference — align by
        # applying each segment's allowance before its first sample.
        boundaries = sorted(b for b in plan if b < len(trace))
        sampler_ref = ViolationLikelihoodSampler(task, config)
        sampled_ref, intervals_ref = [], []
        t = 0
        while t < len(trace):
            active = [b for b in boundaries if b <= t]
            if active:
                sampler_ref.error_allowance = plan[active[-1]]
            decision = sampler_ref.observe(trace[t], t)
            sampled_ref.append(t)
            step = max(1, decision.next_interval)
            intervals_ref.append(step)
            t += step

        fast = ViolationLikelihoodSampler(task, config)
        sampled_fast, intervals_fast = [], []
        t = 0
        segments = boundaries + [len(trace)]
        for end in segments:
            if t >= end:
                continue
            s, i = fast.run_trace(trace[:end], start=t)
            sampled_fast.extend(s)
            intervals_fast.extend(i)
            if s:
                t = s[-1] + max(1, fast.interval)
            if end < len(trace) and t >= end:
                active = [b for b in boundaries if b <= t]
                if active:
                    fast.error_allowance = plan[active[-1]]
        # Tail past the last boundary.
        if t < len(trace):
            active = [b for b in boundaries if b <= t]
            if active:
                fast.error_allowance = plan[active[-1]]
            s, i = fast.run_trace(trace, start=t)
            sampled_fast.extend(s)
            intervals_fast.extend(i)

        assert sampled_fast == sampled_ref
        assert intervals_fast == intervals_ref
        assert fast.state_dict() == sampler_ref.state_dict()
