"""Property tests for the parallel sweep layer (hypothesis).

Pinned properties: job-key hashing is stable across processes and
injective on distinct specs; the cache round-trips values exactly; and
``workers=1`` never spawns a process pool.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

lenient = settings(max_examples=25, deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])

import repro
from repro.experiments import parallel
from repro.experiments.parallel import (SweepCache, SweepJob, job_key,
                                        run_sweep)
from repro.experiments.runner import run_adaptive

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-2**63, max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
)

values = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=10,
)

specs = st.dictionaries(
    st.text(st.characters(min_codepoint=97, max_codepoint=122),
            min_size=1, max_size=8),
    values, max_size=5)


def _job(spec: dict) -> SweepJob:
    return SweepJob.call(run_adaptive, **spec)


class TestJobKey:
    @lenient
    @given(spec=specs)
    def test_deterministic(self, spec):
        assert job_key(_job(spec)) == job_key(_job(spec))

    @lenient
    @given(a=specs, b=specs)
    def test_injective_on_distinct_specs(self, a, b):
        # Python-level equality conflates types (1 == 1.0 == True) and
        # signed zeros, so the identity notion is the type-tagged
        # canonical form: specs with equal canonical forms share a key,
        # all others must not collide.
        same = parallel._canonical(a) == parallel._canonical(b)
        if same:
            assert job_key(_job(a)) == job_key(_job(b))
        else:
            assert job_key(_job(a)) != job_key(_job(b))

    def test_type_confusion_impossible(self):
        lookalikes = [{"x": 1}, {"x": 1.0}, {"x": True}, {"x": "1"},
                      {"x": None}, {"x": (1,)}, {"x": {"1": None}}]
        keys = {job_key(_job(spec)) for spec in lookalikes}
        assert len(keys) == len(lookalikes)

    def test_function_identity_part_of_key(self):
        from repro.experiments.runner import run_periodic
        a = SweepJob.call(run_adaptive, x=1.0)
        b = SweepJob.call(run_periodic, x=1.0)
        assert job_key(a) != job_key(b)

    def test_stable_across_processes(self):
        # The key must not depend on interpreter state (PYTHONHASHSEED,
        # import order, address-space layout): a fresh interpreter with a
        # *different* hash seed must derive the very same keys.
        spec_sets = [{}, {"x": 1.0}, {"x": 1}, {"name": "fig5", "k": 0.4},
                     {"nested": (1, (2.5, "s"), None)}]
        expected = [job_key(_job(s)) for s in spec_sets]
        code = (
            "import json, sys\n"
            "from repro.experiments.parallel import SweepJob, job_key\n"
            "from repro.experiments.runner import run_adaptive\n"
            "specs = ["
            "{}, {'x': 1.0}, {'x': 1}, {'name': 'fig5', 'k': 0.4},"
            "{'nested': (1, (2.5, 's'), None)}]\n"
            "keys = [job_key(SweepJob.call(run_adaptive, **s))"
            " for s in specs]\n"
            "print(json.dumps(keys))\n"
        )
        src_dir = pathlib.Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = (str(src_dir) + os.pathsep
                             + env.get("PYTHONPATH", ""))
        env["PYTHONHASHSEED"] = "12345"
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        assert json.loads(out.stdout) == expected


class TestCacheRoundTrip:
    @lenient
    @given(value=values)
    def test_round_trip_exact(self, value, tmp_path_factory):
        cache = SweepCache(tmp_path_factory.mktemp("cache"))
        key = "f" * 64
        cache.store(key, value)
        hit, loaded = cache.load(key)
        assert hit
        assert loaded == value
        assert type(loaded) is type(value)


def _identity(*, x: float) -> float:
    return x


class TestSerialNeverSpawnsPool:
    def test_workers_one_stays_in_process(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("workers=1 must not create a pool")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        jobs = [SweepJob.call(_identity, x=float(i)) for i in range(5)]
        results, stats = run_sweep(jobs, workers=1)
        assert results == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert stats.workers == 1

    def test_single_pending_job_stays_in_process(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("a single job must not pay pool startup")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", explode)
        results, _ = run_sweep([SweepJob.call(_identity, x=9.0)], workers=8)
        assert results == [9.0]

    def test_pool_used_above_one_worker(self, monkeypatch):
        created = []
        real = parallel.ProcessPoolExecutor

        def spy(*args, **kwargs):
            created.append(kwargs.get("max_workers", args[0] if args
                                      else None))
            return real(*args, **kwargs)

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", spy)
        jobs = [SweepJob.call(_identity, x=float(i)) for i in range(3)]
        results, _ = run_sweep(jobs, workers=2)
        assert results == [0.0, 1.0, 2.0]
        assert created == [2]


@pytest.mark.parametrize("workers", [1, 2])
def test_run_sweep_equivalence_property(workers):
    jobs = [SweepJob.call(_identity, x=float(i)) for i in range(4)]
    results, _ = run_sweep(jobs, workers=workers)
    assert results == [0.0, 1.0, 2.0, 3.0]
