"""Hypothesis property tests for the streaming service."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.service import MonitoringService

bounded = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False)


@given(values=st.lists(bounded, min_size=5, max_size=200),
       err=st.floats(min_value=0.0, max_value=0.3, allow_nan=False))
@settings(max_examples=80, deadline=None)
def test_due_offer_schedule_is_consistent(values, err):
    """Whenever due() says yes, offer() consumes; otherwise it refuses."""
    service = MonitoringService(AdaptationConfig(patience=2,
                                                 min_samples=2))
    service.add_task("t", TaskSpec(threshold=10.0, error_allowance=err,
                                   max_interval=8))
    consumed = 0
    for step, value in enumerate(values):
        due = service.due("t", step)
        decision = service.offer("t", value, step)
        assert (decision is not None) == due
        if due:
            consumed += 1
            assert service.next_due("t") > step
    assert service.samples_taken("t") == consumed
    assert consumed >= 1


@given(values=st.lists(bounded, min_size=3, max_size=100),
       window=st.integers(min_value=1, max_value=10))
@settings(max_examples=60, deadline=None)
def test_windowed_service_matches_reference_aggregate(values, window):
    """With a zero allowance the service samples every step, so its
    windowed aggregate must equal the reference implementation."""
    from repro.core.windowed import aggregate_trace

    service = MonitoringService()
    threshold = 1e9  # never alert; we only check the aggregation
    service.add_task("w", TaskSpec(threshold=threshold,
                                   error_allowance=0.0),
                     window=window, window_kind=AggregateKind.MEAN)
    reference = aggregate_trace(np.asarray(values), window,
                                AggregateKind.MEAN)
    state = service._state("w")
    for step, value in enumerate(values):
        observed = state.aggregate(step, value)
        # offer() would run the same aggregate; compare directly.
        assert observed == pytest.approx(reference[step], rel=1e-9,
                                         abs=1e-9)


@given(alert_steps=st.sets(st.integers(min_value=0, max_value=99),
                           max_size=10))
@settings(max_examples=60, deadline=None)
def test_alert_callback_fires_exactly_on_violations(alert_steps):
    values = np.zeros(100)
    for step in alert_steps:
        values[step] = 50.0
    fired: list[int] = []
    service = MonitoringService()
    service.add_task("t", TaskSpec(threshold=10.0, error_allowance=0.0),
                     on_alert=lambda a: fired.append(a.time_index))
    for step, value in enumerate(values):
        service.offer("t", float(value), step)
    assert sorted(fired) == sorted(alert_steps)
