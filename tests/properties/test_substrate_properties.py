"""Hypothesis properties for the sketch-backed task-type substrates.

Two contracts from the task-type design:

* **Quantile mis-detection bound** — on heavy-tail streams with planted
  tail regressions, the full service path (quantile task, exceedance
  statistic, violation-likelihood adaptation) must miss at most ``err``
  of the ground-truth violation points, for any seed.
* **Entropy analytic accuracy** — the windowed estimator must equal the
  exact empirical entropy of its window (it is not an approximation,
  only the accumulation order is constrained for bit-stable restore).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.substrates import EntropyEstimator, QuantileEstimator
from repro.testkit.invariants import check_quantile_misdetection

bounded = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False,
                    allow_infinity=False)


class TestQuantileMisdetectionProperty:
    @given(seed=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=10, deadline=None)
    def test_heavy_tail_streams_meet_the_bound(self, seed):
        result = check_quantile_misdetection(seed=seed, err=0.05,
                                             streams=2, horizon=3000)
        assert result.metrics["truth_points"] > 0
        assert result.passed, result.detail

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           window=st.integers(min_value=2, max_value=50),
           n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_exceedance_equals_exact_fraction_for_separated_values(
            self, seed, window, n):
        """With values far from the threshold on both sides, sketch
        bucketing cannot blur the indicator: exceedance over the live
        window must equal the exact fraction of recent values above."""
        rng = np.random.default_rng(seed)
        values = np.where(rng.random(n) < 0.3, 500.0, 5.0)
        est = QuantileEstimator(0.9, window=window)
        for v in values:
            est.update(float(v))
        # The estimator's view: the sealed epoch plus the current one.
        span = est.count
        recent = values[n - span:]
        exact = float(np.mean(recent > 100.0))
        assert est.exceedance(100.0) == exact

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           window=st.integers(min_value=4, max_value=60))
    @settings(max_examples=40, deadline=None)
    def test_quantile_value_within_relative_error_of_window(
            self, seed, window):
        rng = np.random.default_rng(seed)
        values = rng.lognormal(2.0, 0.5, 3 * window)
        est = QuantileEstimator(0.9, window=window)
        for v in values:
            est.update(float(v))
        span = est.count
        recent = np.sort(values[values.size - span:])
        exact = float(recent[int(0.9 * (span - 1))])
        # Bucket-midpoint guarantee of the underlying sketch, plus the
        # lower-rank convention's one-rank slack at window boundaries.
        lo = float(recent[max(0, int(0.9 * (span - 1)) - 1)])
        hi = float(recent[min(span - 1, int(0.9 * (span - 1)) + 1)])
        assert lo * 0.97 <= est.quantile_value() <= hi * 1.03 \
            or est.quantile_value() == exact


class TestEntropyAnalyticProperty:
    @given(values=st.lists(bounded, min_size=1, max_size=300),
           window=st.integers(min_value=2, max_value=80),
           bin_width=st.floats(min_value=1e-3, max_value=1e3,
                               allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_matches_exact_empirical_entropy(self, values, window,
                                             bin_width):
        est = EntropyEstimator(window=window, bin_width=bin_width)
        for v in values:
            est.update(float(v))
        tail = [int(math.floor(float(v) / bin_width))
                for v in values[-window:]]
        counts: dict[int, int] = {}
        for s in tail:
            counts[s] = counts.get(s, 0) + 1
        n = len(tail)
        exact = -sum((c / n) * math.log2(c / n) for c in counts.values())
        assert est.count == n
        assert est.entropy() == pytest.approx(exact, abs=1e-9)

    @given(values=st.lists(bounded, min_size=1, max_size=200),
           window=st.integers(min_value=2, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_entropy_bounded_by_log2_window(self, values, window):
        est = EntropyEstimator(window=window, bin_width=1.0)
        for v in values:
            est.update(float(v))
            h = est.entropy()
            assert 0.0 <= h <= math.log2(window) + 1e-9
