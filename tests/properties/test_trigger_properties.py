"""Hypothesis properties for the live trigger channel (``repro.triggers``).

Three contracts pinned here keep the online machinery honest against its
batch counterparts and against itself:

* the :class:`~repro.triggers.miner.CorrelationMiner`'s evidence and
  first plan equal what the batch
  :class:`~repro.core.correlation.CorrelationDetector` /
  :class:`~repro.core.correlation.CorrelationPlanner` produce on the same
  aligned tails (the miner never re-implements scoring);
* every planned rule respects the accuracy-loss budget and the
  cheaper-guards-costlier invariant;
* the :class:`~repro.triggers.channel.TriggerWatcher` cannot oscillate —
  at most one transition on any constant stream, ``min_hold`` spacing on
  any stream at all, and bit-identical continuation across a
  ``state_dict`` round-trip.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import CorrelationDetector, CorrelationPlanner
from repro.exceptions import CorrelationError
from repro.triggers import CorrelationMiner, TriggerPlan, TriggerWatcher

_THRESHOLD = 50.0

levels_st = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
values_st = st.lists(st.floats(min_value=-200.0, max_value=200.0,
                               allow_nan=False),
                     min_size=1, max_size=200)


def _streams(seed: int, n: int) -> tuple[np.ndarray, np.ndarray]:
    """A correlated (trigger, target) pair with plenty of violations."""
    rng = np.random.default_rng(seed)
    trig = rng.uniform(0.0, 100.0, n)
    targ = trig + rng.normal(0.0, 15.0, n)
    return trig, targ


class TestMinerMatchesBatch:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=2, max_value=300),
           window=st.integers(min_value=2, max_value=128))
    @settings(max_examples=80, deadline=None)
    def test_evidence_equals_batch_detector_on_tails(self, seed, n, window):
        trig, targ = _streams(seed, n)
        detector = CorrelationDetector(min_support=5)
        miner = CorrelationMiner(window=window, detector=detector)
        miner.add_task("trig", _THRESHOLD, cost=0.1)
        miner.add_task("targ", _THRESHOLD, cost=1.0)
        for a, b in zip(trig, targ):
            miner.observe("trig", float(a))
            miner.observe("targ", float(b))

        tail = min(n, window)
        try:
            expected = detector.analyze(trig[-tail:], targ[-tail:],
                                        _THRESHOLD)
        except CorrelationError:
            with pytest.raises(CorrelationError):
                miner.evidence("trig", "targ")
            return
        assert miner.evidence("trig", "targ") == expected

    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=30, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_first_plan_equals_batch_planner(self, seed, n):
        trig, targ = _streams(seed, n)
        detector = CorrelationDetector(min_support=5)
        miner = CorrelationMiner(window=512, min_score=0.6,
                                 loss_budget=0.4, detector=detector)
        miner.add_task("trig", _THRESHOLD, cost=0.1)
        miner.add_task("targ", _THRESHOLD, cost=1.0)
        for a, b in zip(trig, targ):
            miner.observe("trig", float(a))
            miner.observe("targ", float(b))

        planner = CorrelationPlanner(min_score=0.6, loss_budget=0.4,
                                     detector=detector)
        expected = sorted(planner.plan(miner.profiles()),
                          key=lambda r: r.target_id)
        assert miner.plan() == expected


class TestPlannerBudget:
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1),
           n=st.integers(min_value=30, max_value=200),
           min_score=st.floats(min_value=0.3, max_value=1.0,
                               allow_nan=False),
           loss_budget=st.floats(min_value=0.0, max_value=0.5,
                                 allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_mined_rules_respect_budget(self, seed, n, min_score,
                                        loss_budget):
        trig, targ = _streams(seed, n)
        rng = np.random.default_rng(seed + 1)
        other = rng.uniform(0.0, 100.0, n)
        detector = CorrelationDetector(min_support=5)
        miner = CorrelationMiner(window=512, min_score=min_score,
                                 loss_budget=loss_budget, detector=detector)
        costs = {"trig": 0.1, "targ": 1.0, "other": 0.5}
        miner.add_task("trig", _THRESHOLD, cost=costs["trig"])
        miner.add_task("targ", _THRESHOLD, cost=costs["targ"])
        miner.add_task("other", _THRESHOLD, cost=costs["other"])
        for a, b, c in zip(trig, targ, other):
            miner.observe("trig", float(a))
            miner.observe("targ", float(b))
            miner.observe("other", float(c))

        rules = miner.plan()
        assert len({r.target_id for r in rules}) == len(rules)
        for rule in rules:
            assert rule.estimated_loss <= loss_budget
            assert rule.evidence.necessary_condition_score >= min_score
            assert costs[rule.trigger_id] < costs[rule.target_id]
            assert rule.expected_saving > 0.0


class TestWatcherStability:
    @given(level=levels_st,
           hysteresis=st.floats(min_value=0.0, max_value=0.99,
                                allow_nan=False),
           min_hold=st.integers(min_value=0, max_value=20),
           armed=st.booleans(),
           value=st.floats(min_value=-200.0, max_value=200.0,
                           allow_nan=False),
           n=st.integers(min_value=1, max_value=200))
    @settings(max_examples=120, deadline=None)
    def test_constant_stream_transitions_at_most_once(self, level,
                                                      hysteresis, min_hold,
                                                      armed, value, n):
        watcher = TriggerWatcher(level, hysteresis=hysteresis,
                                 min_hold=min_hold, armed=armed)
        edges = [edge for step in range(n)
                 if (edge := watcher.observe(value, step)) is not None]
        assert len(edges) <= 1

    @given(values=values_st, level=levels_st,
           hysteresis=st.floats(min_value=0.0, max_value=0.99,
                                allow_nan=False),
           min_hold=st.integers(min_value=1, max_value=20))
    @settings(max_examples=80, deadline=None)
    def test_min_hold_spaces_all_transitions(self, values, level,
                                             hysteresis, min_hold):
        watcher = TriggerWatcher(level, hysteresis=hysteresis,
                                 min_hold=min_hold)
        edge_steps = [step for step, value in enumerate(values)
                      if watcher.observe(value, step) is not None]
        for earlier, later in zip(edge_steps, edge_steps[1:]):
            assert later - earlier >= min_hold

    @given(values=values_st, level=levels_st,
           min_hold=st.integers(min_value=0, max_value=10))
    @settings(max_examples=60, deadline=None)
    def test_state_roundtrip_continues_bit_identically(self, values, level,
                                                       min_hold):
        whole = TriggerWatcher(level, min_hold=min_hold)
        resumed = TriggerWatcher(level, min_hold=min_hold)
        half = len(values) // 2
        expected = [whole.observe(v, i) for i, v in enumerate(values)]
        got = [resumed.observe(v, i) for i, v in enumerate(values[:half])]
        resumed = TriggerWatcher.from_state_dict(resumed.state_dict())
        got += [resumed.observe(v, half + i)
                for i, v in enumerate(values[half:])]
        assert got == expected
        assert resumed.state_dict() == whole.state_dict()


class TestPlanRoundtrip:
    @given(level=levels_st,
           suspend=st.integers(min_value=2, max_value=50),
           hysteresis=st.floats(min_value=0.0, max_value=0.99,
                                allow_nan=False),
           min_hold=st.integers(min_value=0, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_to_dict_from_dict_identity(self, level, suspend, hysteresis,
                                        min_hold):
        plan = TriggerPlan(target="web.p99", trigger="lb.conns",
                           elevation_level=level,
                           suspend_interval=suspend,
                           hysteresis=hysteresis, min_hold=min_hold)
        assert TriggerPlan.from_dict(plan.to_dict()) == plan
