"""Hypothesis properties for ``repro.core.windowed`` aggregation.

The sliding max/min use a monotonic deque whose pruning rules (evict
indices that left the window, evict dominated values from the back) are
exactly the kind of code a subtle off-by-one breaks silently. The
properties pin every aggregate to a brute-force reference over the same
partial-window alignment, for arbitrary streams and window lengths.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windowed import AggregateKind, aggregate_trace

bounded = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                    allow_infinity=False)
streams = st.lists(bounded, min_size=1, max_size=200)
windows = st.integers(min_value=1, max_value=60)


def reference(values, window, kind):
    """Brute-force trailing-window aggregate (the documented alignment:
    index t covers values[max(0, t-window+1) : t+1])."""
    out = []
    for t in range(len(values)):
        seg = values[max(0, t - window + 1):t + 1]
        if kind is AggregateKind.MEAN:
            out.append(sum(seg) / len(seg))
        elif kind is AggregateKind.SUM:
            out.append(sum(seg))
        elif kind is AggregateKind.MAX:
            out.append(max(seg))
        else:
            out.append(min(seg))
    return out


class TestAggregateTraceProperties:
    @given(values=streams, window=windows,
           kind=st.sampled_from([AggregateKind.MAX, AggregateKind.MIN]))
    @settings(max_examples=120, deadline=None)
    def test_extrema_match_brute_force_exactly(self, values, window, kind):
        """The deque-pruned extrema are exact — selection, not
        arithmetic — so equality is literal, not approximate."""
        got = aggregate_trace(np.asarray(values), window, kind)
        expected = reference(values, window, kind)
        assert got.tolist() == expected

    @given(values=streams, window=windows,
           kind=st.sampled_from([AggregateKind.MEAN, AggregateKind.SUM]))
    @settings(max_examples=120, deadline=None)
    def test_linear_aggregates_match_brute_force(self, values, window,
                                                 kind):
        got = aggregate_trace(np.asarray(values), window, kind)
        expected = np.asarray(reference(values, window, kind))
        # Cumulative-sum differencing vs direct summation: identical up
        # to float re-association only.
        scale = np.maximum(np.abs(expected), 1.0)
        assert np.all(np.abs(got - expected) <= 1e-6 * scale)

    @given(values=streams, kind=st.sampled_from(list(AggregateKind)))
    @settings(max_examples=60, deadline=None)
    def test_window_one_is_the_identity(self, values, kind):
        got = aggregate_trace(np.asarray(values), 1, kind)
        assert got.tolist() == values

    @given(values=streams, window=windows)
    @settings(max_examples=60, deadline=None)
    def test_extrema_bracket_the_mean(self, values, window):
        arr = np.asarray(values)
        mean = aggregate_trace(arr, window, AggregateKind.MEAN)
        lo = aggregate_trace(arr, window, AggregateKind.MIN)
        hi = aggregate_trace(arr, window, AggregateKind.MAX)
        slack = 1e-6 * np.maximum(np.abs(arr).max(), 1.0)
        assert np.all(lo - slack <= mean) and np.all(mean <= hi + slack)

    @given(values=streams, extra=st.integers(min_value=1, max_value=50))
    @settings(max_examples=40, deadline=None)
    def test_window_longer_than_stream_degenerates_to_prefix(self, values,
                                                             extra):
        """A window that never fills behaves as the running aggregate —
        the deque must never prune an index that is still in range."""
        window = len(values) + extra
        arr = np.asarray(values)
        got = aggregate_trace(arr, window, AggregateKind.MAX)
        expected = np.maximum.accumulate(arr)
        assert got.tolist() == expected.tolist()
