"""Regression tests for the counter-key normalisation.

PR 5 renamed the runtime counters to the canonical telemetry names
(``updates_offered`` ... ``alerts_fired``) and kept the pre-telemetry
short keys (``offered`` ... ``alerts``) as deprecated aliases; this PR
removes the aliases from ``stats()`` / ``runtime_state()`` entirely.
Canonical keys are now the only per-shard shape on the wire — but
checkpoints written by the old key scheme must still restore (the alias
mapping lives on solely in
:func:`repro.runtime.shard.restore_counters`).
"""

from __future__ import annotations

import asyncio

from repro.config import RuntimeConfig
from repro.runtime.checkpoint import write_checkpoint
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.service import MonitoringService

ALIASES = {
    "updates_offered": "offered",
    "updates_applied": "applied",
    "updates_consumed": "consumed",
    "updates_shed": "shed",
    "updates_rejected": "rejected",
    "alerts_fired": "alerts",
}

CANONICAL_SHARD_KEYS = {
    "shard", "tasks", "queue_depth", "queue_capacity",
    "updates_offered", "updates_applied", "updates_consumed",
    "updates_shed", "updates_rejected", "alerts_fired",
}


def run_with_server(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("shards", 2)

    async def runner():
        server = RuntimeServer(RuntimeConfig(**config_kwargs))
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            return await coro_factory(server, client)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(runner())


class TestStatsShapes:
    def test_stats_per_shard_counters_are_canonical_only(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0, error_allowance=0.0)
            await client.offer_batch([["t", s, 20.0] for s in range(5)])
            rejected = await client.offer_batch([["missing", 0, 1.0]])
            for worker in server._workers:
                await worker.drain()
            return rejected, await client.stats()

        rejected, stats = run_with_server(scenario)
        for shard in stats["shards"]:
            assert set(shard) == CANONICAL_SHARD_KEYS
            for alias in ALIASES.values():
                assert alias not in shard
        total_offered = sum(s["updates_offered"] for s in stats["shards"])
        total_alerts = sum(s["alerts_fired"] for s in stats["shards"])
        assert total_offered == 5
        assert total_alerts == 5  # error_allowance=0 alerts on every breach
        # Unknown-task rejections are reported in the batch reply (they
        # have no shard to be attributed to).
        assert rejected["rejected"] == 1
        # The totals dict is its own wire namespace and (deliberately)
        # keeps the short keys consumed by loadgen/replay/chaos tooling.
        assert stats["totals"]["offered"] == 5
        assert stats["totals"]["alerts"] == 5

    def test_runtime_state_counters_use_canonical_keys_only(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0)
            await client.offer_batch([["t", 0, 1.0]])
            for worker in server._workers:
                await worker.drain()
            return server.runtime_state()

        state = run_with_server(scenario)
        for counters in state["counters"]:
            assert set(ALIASES) <= set(counters)
            assert not set(ALIASES.values()) & set(counters)


class TestAliasOnlyCheckpointRestore:
    def test_old_key_scheme_checkpoint_restores(self, tmp_path):
        path = tmp_path / "old.ckpt.json"
        # A checkpoint as a pre-PR-5 server would have written it:
        # counters carry ONLY the short alias keys.
        shards = []
        for _ in range(2):
            service = MonitoringService()
            shards.append(service.snapshot())
        state = {
            "shard_count": 2,
            "task_shard": {},
            "shards": shards,
            "counters": [
                {"shard": 0, "offered": 11, "applied": 9, "consumed": 9,
                 "shed": 2, "rejected": 1, "alerts": 3},
                {"shard": 1, "offered": 5, "applied": 5, "consumed": 5,
                 "shed": 0, "rejected": 0, "alerts": 0},
            ],
        }
        write_checkpoint(path, state)

        async def scenario(server, client):
            return [w.stats() for w in server._workers]

        stats = run_with_server(scenario, checkpoint_path=path)
        assert stats[0]["updates_offered"] == 11
        assert stats[0]["updates_shed"] == 2
        assert stats[0]["updates_rejected"] == 1
        assert stats[0]["alerts_fired"] == 3
        assert stats[1]["updates_offered"] == 5
        # The restored stats expose canonical keys only — the aliases
        # exist on the restore path, never on the reporting path.
        assert "offered" not in stats[0] and "alerts" not in stats[0]

    def test_canonical_keys_win_over_aliases(self, tmp_path):
        path = tmp_path / "mixed.ckpt.json"
        state = {
            "shard_count": 1,
            "task_shard": {},
            "shards": [MonitoringService().snapshot()],
            "counters": [{"shard": 0, "updates_offered": 42, "offered": 7}],
        }
        write_checkpoint(path, state)

        async def scenario(server, client):
            return server._workers[0].stats()

        stats = run_with_server(scenario, shards=1, checkpoint_path=path)
        assert stats["updates_offered"] == 42
