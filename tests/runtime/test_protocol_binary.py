"""Edge-case tests for the binary frame class of the wire protocol.

Covers the codec itself (both readers, both directions): frame-size
boundaries at/over MAX_FRAME, zero-length batches, malformed binary
bodies, and the header-bit discrimination between JSON and binary
frames. The end-to-end negotiation matrix lives in
``test_runtime_binary.py``.
"""

from __future__ import annotations

import asyncio
import io
import struct

import numpy as np
import pytest

from repro.exceptions import ProtocolError
from repro.runtime.protocol import (MAX_FRAME, OfferColumns, OfferReply,
                                    ShardOffer, decode_binary,
                                    encode_frame_parts,
                                    encode_offer_columns,
                                    encode_offer_reply, encode_shard_offer,
                                    read_frame, read_frame_blocking)

_HEADER = struct.Struct(">I")
_BINARY_FLAG = 0x8000_0000


def read_async(data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(go())


def read_blocking(data: bytes):
    return read_frame_blocking(io.BytesIO(data))


READERS = [read_async, read_blocking]


class TestOfferCodec:
    @pytest.mark.parametrize("read", READERS)
    def test_offer_roundtrip_both_readers(self, read):
        header, body = encode_offer_columns(
            [3, 1, 4, 1], [10, 11, 12, 13], [1.5, -2.0, 0.0, 99.75])
        decoded = read(header + body)
        assert isinstance(decoded, OfferColumns)
        assert len(decoded) == 4
        np.testing.assert_array_equal(decoded.task_idx, [3, 1, 4, 1])
        np.testing.assert_array_equal(decoded.steps, [10, 11, 12, 13])
        np.testing.assert_array_equal(decoded.values,
                                      [1.5, -2.0, 0.0, 99.75])

    @pytest.mark.parametrize("read", READERS)
    def test_zero_length_batch_roundtrips(self, read):
        header, body = encode_offer_columns([], [], [])
        decoded = read(header + body)
        assert isinstance(decoded, OfferColumns)
        assert len(decoded) == 0
        assert decoded.task_idx.dtype == np.dtype("<u4")
        assert decoded.steps.dtype == np.dtype("<i8")
        assert decoded.values.dtype == np.dtype("<f8")

    def test_header_bit_discriminates_binary_from_json(self):
        bin_header, _ = encode_offer_columns([1], [2], [3.0])
        json_header, _ = encode_frame_parts({"op": "ping"})
        (raw_bin,) = _HEADER.unpack(bin_header)
        (raw_json,) = _HEADER.unpack(json_header)
        assert raw_bin & _BINARY_FLAG
        assert not raw_json & _BINARY_FLAG

    def test_mismatched_column_lengths_rejected(self):
        with pytest.raises(ProtocolError, match="share one length"):
            encode_offer_columns([1, 2], [3], [4.0])

    def test_two_dimensional_column_rejected(self):
        with pytest.raises(ProtocolError, match="one-dimensional"):
            encode_offer_columns([[1], [2]], [[3], [4]], [[5.0], [6.0]])


class TestReplyCodec:
    @pytest.mark.parametrize("read", READERS)
    def test_reply_roundtrip(self, read):
        header, body = encode_offer_reply(100, 7, 3, backpressure=True,
                                          retry_after_ms=250)
        decoded = read(header + body)
        assert isinstance(decoded, OfferReply)
        assert decoded.accepted == 100
        assert decoded.shed == 7
        assert decoded.rejected == 3
        assert decoded.backpressure is True
        assert decoded.retry_after_ms == 250

    def test_negative_retry_clamped_to_zero(self):
        _, body = encode_offer_reply(1, 0, 0, backpressure=False,
                                     retry_after_ms=-5)
        decoded = decode_binary(body)
        assert decoded.retry_after_ms == 0
        assert decoded.backpressure is False

    def test_wrong_size_reply_body_rejected(self):
        _, body = encode_offer_reply(1, 0, 0, backpressure=False,
                                     retry_after_ms=0)
        with pytest.raises(ProtocolError, match="wrong size"):
            decode_binary(body + b"\x00")


class TestShardOfferCodec:
    @pytest.mark.parametrize("read", READERS)
    def test_multi_segment_roundtrip(self, read):
        header, body = encode_shard_offer([
            (2, [7, 8], [1, 2], [0.5, 0.25]),
            (0, [9], [3], [-1.0]),
            (5, [], [], []),
        ])
        decoded = read(header + body)
        assert isinstance(decoded, ShardOffer)
        assert len(decoded) == 3
        shards = [shard for shard, _ in decoded.segments]
        assert shards == [2, 0, 5]
        first = decoded.segments[0][1]
        np.testing.assert_array_equal(first.task_idx, [7, 8])
        np.testing.assert_array_equal(first.values, [0.5, 0.25])
        assert len(decoded.segments[2][1]) == 0

    def test_truncated_segment_columns_rejected(self):
        _, body = encode_shard_offer([(1, [7, 8], [1, 2], [0.5, 0.25])])
        with pytest.raises(ProtocolError, match="truncated"):
            decode_binary(body[:-4])

    def test_trailing_bytes_rejected(self):
        _, body = encode_shard_offer([(1, [7], [1], [0.5])])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_binary(body + b"\x00" * 8)


class TestMalformedBinary:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError, match="unknown binary frame"):
            decode_binary(bytes([0x7F]) + b"\x00" * 7)

    def test_empty_binary_body_rejected(self):
        with pytest.raises(ProtocolError, match="empty"):
            decode_binary(b"")

    def test_offer_count_exceeding_body_rejected(self):
        header, body = encode_offer_columns([1], [2], [3.0])
        # Inflate the count field without providing the columns.
        forged = body[:4] + struct.pack("<I", 1000) + body[8:]
        with pytest.raises(ProtocolError, match="truncated"):
            decode_binary(forged)

    @pytest.mark.parametrize("read", READERS)
    def test_binary_flag_on_json_body_fails_decode(self, read):
        # A peer that sets the binary bit on a JSON body produced a frame
        # whose first byte ('{') is no known kind — a protocol error, not
        # a silent JSON parse.
        _, body = encode_frame_parts({"op": "ping"})
        data = _HEADER.pack(len(body) | _BINARY_FLAG) + body
        with pytest.raises(ProtocolError, match="unknown binary frame"):
            read(data)


class TestFrameSizeBoundary:
    @pytest.mark.parametrize("read", READERS)
    def test_json_body_at_max_frame_is_accepted(self, read):
        filler = "x" * (MAX_FRAME - len('{"k":""}'))
        body = ('{"k":"%s"}' % filler).encode()
        assert len(body) == MAX_FRAME
        decoded = read(_HEADER.pack(len(body)) + body)
        assert decoded["k"] == filler

    @pytest.mark.parametrize("read", READERS)
    def test_announced_length_one_over_max_frame_rejected(self, read):
        with pytest.raises(ProtocolError, match="limit"):
            read(_HEADER.pack(MAX_FRAME + 1) + b"\x00")

    @pytest.mark.parametrize("read", READERS)
    def test_binary_length_one_over_max_frame_rejected(self, read):
        with pytest.raises(ProtocolError, match="limit"):
            read(_HEADER.pack((MAX_FRAME + 1) | _BINARY_FLAG) + b"\x00")

    def test_encode_offer_over_max_frame_rejected(self):
        # 20 bytes per row: the boundary row count just fits, one more
        # overflows MAX_FRAME and must be refused at encode time.
        rows_fit = (MAX_FRAME - 8) // 20
        count = rows_fit + 1
        idx = np.zeros(count, dtype=np.uint32)
        steps = np.zeros(count, dtype=np.int64)
        values = np.zeros(count, dtype=np.float64)
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            encode_offer_columns(idx, steps, values)
        header, body = encode_offer_columns(idx[1:], steps[1:], values[1:])
        assert len(body) <= MAX_FRAME

    def test_encode_json_over_max_frame_rejected(self):
        with pytest.raises(ProtocolError, match="exceeds MAX_FRAME"):
            encode_frame_parts({"k": "x" * MAX_FRAME})
