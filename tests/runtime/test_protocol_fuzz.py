"""Negative-path protocol fuzz: malformed frames must never kill a shard.

Drives the live server through the testkit's frame fault seam: inbound
frames are deterministically dropped, truncated mid-body, or corrupted
(guaranteed-invalid bytes) according to a `(seed, spec)` plan. For every
frame the server must either reply (an error reply for malformed input)
or close the connection (a dropped frame) — and afterwards the shard
consumers must still be draining and the control plane answering.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import RuntimeConfig
from repro.runtime.protocol import encode_frame, read_frame
from repro.runtime.server import RuntimeServer
from repro.testkit.faults import (FRAME_CORRUPT, FRAME_DROP, FRAME_OK,
                                  FRAME_TRUNCATE, FaultPlan, FaultSpec,
                                  PlanFaultHook)

FUZZ_SPEC = FaultSpec(drop_connection_rate=0.25,
                      truncate_frame_rate=0.2,
                      corrupt_frame_rate=0.2)
FRAMES = 150
TASKS = [f"fuzz-{i}" for i in range(4)]


async def _roundtrip(port, payload):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        writer.write(encode_frame(payload))
        await writer.drain()
        return await read_frame(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


@pytest.mark.parametrize("seed", [3, 7, 1013])
def test_fuzzed_frames_get_replies_or_drops_and_shards_survive(seed):
    plan = FaultPlan(seed, FUZZ_SPEC)
    hook = PlanFaultHook(plan)
    hook.armed = False

    async def scenario():
        server = RuntimeServer(RuntimeConfig(shards=2, port=0),
                               fault_hook=hook)
        await server.start()
        try:
            for name in TASKS:
                reply = await _roundtrip(server.tcp_port,
                                         {"op": "register_task",
                                          "task": {"name": name,
                                                   "threshold": 50.0}})
                assert reply is not None and reply["ok"]

            hook.armed = True
            clean_updates = 0
            for index in range(FRAMES):
                batch = [[name, index, float(index % 90)]
                         for name in TASKS]
                reply = await _roundtrip(server.tcp_port,
                                         {"op": "offer_batch",
                                          "updates": batch})
                fate = plan.frame_fault(index)
                if fate == FRAME_DROP:
                    # Dropped frame: connection closed with no reply.
                    assert reply is None
                elif fate in (FRAME_TRUNCATE, FRAME_CORRUPT):
                    # Malformed frame: an error *reply*, never a hang or
                    # a dead server.
                    assert reply is not None
                    assert not reply["ok"]
                    assert reply["code"] == "protocol"
                else:
                    assert fate == FRAME_OK
                    assert reply is not None and reply["ok"]
                    assert reply["accepted"] == len(batch)
                    clean_updates += len(batch)
            assert clean_updates > 0, "spec too hostile: no clean frames"
            await server.drain()
            hook.armed = False

            # Every shard consumer survived the barrage: the counters
            # account for exactly the cleanly-delivered updates, and the
            # data path still works.
            stats = await _roundtrip(server.tcp_port, {"op": "stats"})
            assert stats["ok"]
            totals = stats["totals"]
            assert totals["offered"] == clean_updates
            assert totals["applied"] == clean_updates
            assert totals["shed"] == 0 and totals["rejected"] == 0

            reply = await _roundtrip(
                server.tcp_port,
                {"op": "offer_batch",
                 "updates": [[TASKS[0], FRAMES + 1, 1.0]]})
            assert reply is not None and reply["ok"]
            assert reply["accepted"] == 1
            ping = await _roundtrip(server.tcp_port, {"op": "ping"})
            assert ping is not None and ping["ok"]
            assert ping["tasks"] == len(TASKS)
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_fault_injection_summary_matches_plan():
    """The hook's injected-fault ledger equals the plan's own schedule —
    the property the chaos driver's shadow replay rests on."""
    plan = FaultPlan(11, FUZZ_SPEC)
    hook = PlanFaultHook(plan)

    async def scenario():
        server = RuntimeServer(RuntimeConfig(shards=2, port=0),
                               fault_hook=hook)
        await server.start()
        try:
            hook.armed = False
            reply = await _roundtrip(server.tcp_port,
                                     {"op": "register_task",
                                      "task": {"name": "t", "threshold": 1}})
            assert reply["ok"]
            hook.armed = True
            for index in range(60):
                await _roundtrip(server.tcp_port,
                                 {"op": "offer_batch",
                                  "updates": [["t", index, 0.5]]})
            hook.armed = False
        finally:
            await server.shutdown()

    asyncio.run(scenario())
    fates = [plan.frame_fault(i) for i in range(60)]
    assert hook.injected["frames_dropped"] == fates.count(FRAME_DROP)
    assert hook.injected["frames_truncated"] == fates.count(FRAME_TRUNCATE)
    assert hook.injected["frames_corrupted"] == fates.count(FRAME_CORRUPT)
