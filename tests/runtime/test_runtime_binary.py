"""End-to-end tests for the binary offer path of the ingestion runtime.

Covers negotiation (including the mixed-version client/server matrix and
mid-negotiation disconnects), the per-connection interning table, and the
headline contract of DESIGN.md S31: driving the same stream over JSON and
binary produces bit-identical sampler state, counters and alerts.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np
import pytest

from repro.config import RuntimeConfig
from repro.exceptions import ProtocolError
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.protocol import (PROTOCOL_BINARY, PROTOCOL_JSON,
                                    encode_frame_parts,
                                    encode_offer_columns, read_frame)
from repro.runtime.server import RuntimeServer

_HEADER = struct.Struct(">I")


def run_with_server(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("shards", 4)

    async def runner():
        server = RuntimeServer(RuntimeConfig(**config_kwargs))
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            return await coro_factory(server, client)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(runner())


class TestNegotiation:
    def test_hello_agrees_on_binary(self):
        async def scenario(server, client):
            agreed = await client.negotiate()
            return agreed, client.protocol

        agreed, protocol = run_with_server(scenario)
        assert agreed == PROTOCOL_BINARY
        assert protocol == PROTOCOL_BINARY

    def test_server_pinned_to_v1_downgrades_client(self):
        async def scenario(server, client):
            agreed = await client.negotiate()
            # The connection stays fully usable on JSON.
            await client.register_task("t", 100.0, error_allowance=0.05)
            reply = await client.offer_batch([["t", 0, 50.0]])
            return agreed, reply["accepted"]

        agreed, accepted = run_with_server(scenario, protocol=1)
        assert agreed == PROTOCOL_JSON
        assert accepted == 1

    def test_offer_columns_without_negotiation_raises(self):
        async def scenario(server, client):
            await client.register_task("t", 100.0, error_allowance=0.05)
            with pytest.raises(ProtocolError, match="protocol >= 2"):
                await client.offer_columns([0], [0], [1.0])
            return True

        assert run_with_server(scenario)

    def test_legacy_server_without_hello_keeps_client_on_json(self):
        # Simulate a protocol-1 build: every op answers unknown-op. The
        # client's negotiate() must treat that as "stay on JSON", not an
        # error.
        async def runner():
            async def legacy(reader, writer):
                while await read_frame(reader) is not None:
                    writer.writelines(encode_frame_parts(
                        {"ok": False, "error": "unknown op",
                         "code": "unknown-op"}))
                    await writer.drain()
                writer.close()

            server = await asyncio.start_server(legacy, host="127.0.0.1")
            port = server.sockets[0].getsockname()[1]
            client = AsyncRuntimeClient(port=port)
            try:
                agreed = await client.negotiate()
                return agreed, client.protocol
            finally:
                await client.close()
                server.close()
                await server.wait_closed()

        agreed, protocol = asyncio.run(runner())
        assert agreed == PROTOCOL_JSON
        assert protocol == PROTOCOL_JSON

    def test_binary_offer_before_hello_is_a_protocol_error(self):
        async def scenario(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.tcp_port)
            writer.writelines(encode_offer_columns([0], [0], [1.0]))
            await writer.drain()
            reply = await read_frame(reader)
            writer.close()
            # The rogue connection is refused; the server keeps serving.
            ping = await client.ping()
            return reply, ping

        reply, ping = run_with_server(scenario)
        assert reply["ok"] is False
        assert reply["code"] == "protocol"
        assert ping["ok"] is True

    def test_mid_negotiation_disconnect_leaves_server_healthy(self):
        async def scenario(server, client):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.tcp_port)
            header, body = encode_frame_parts(
                {"op": "hello", "max_protocol": 2})
            # Announce the full hello frame but vanish halfway through it.
            writer.write(header + body[:len(body) // 2])
            await writer.drain()
            writer.close()
            await asyncio.sleep(0.05)
            agreed = await client.negotiate()
            await client.register_task("t", 100.0, error_allowance=0.05)
            await client.intern(["t"])
            reply = await client.offer_columns([0], [0], [50.0])
            return agreed, reply.accepted

        agreed, accepted = run_with_server(scenario)
        assert agreed == PROTOCOL_BINARY
        assert accepted == 1


class TestInterning:
    def test_duplicate_intern_is_idempotent(self):
        async def scenario(server, client):
            await client.negotiate()
            for name in ("a", "b"):
                await client.register_task(name, 100.0,
                                           error_allowance=0.05)
            first = await client.intern(["a", "b"])
            second = await client.intern(["b", "a", "b"])
            return first, second

        first, second = run_with_server(scenario)
        assert first == [0, 1]
        assert second == [1, 0, 1]

    def test_reintern_resolves_rows_registered_after_intern(self):
        async def scenario(server, client):
            await client.negotiate()
            # Interned before registration: the offer still lands (the
            # server falls back to the by-name path), and a reintern
            # re-resolves the name onto its engine row.
            idx = (await client.intern(["late"]))[0]
            await client.register_task("late", 100.0,
                                       error_allowance=0.05)
            early = await client.offer_columns([idx], [0], [50.0])
            await client.reintern()
            late = await client.offer_columns([idx], [1], [60.0])
            info = await client.task_info("late")
            return early, late, info

        early, late, info = run_with_server(scenario)
        assert early.accepted == 1
        assert late.accepted == 1
        assert info["samples_taken"] == 2

    def test_unregistered_name_rejected_at_apply_like_json_path(self):
        # An interned-but-never-registered name mirrors offer_batch with
        # an unknown task: the frame is ACKed (routing is by name hash)
        # and the shard rejects it at apply — an async counter, not a
        # poisoned connection.
        async def scenario(server, client):
            await client.negotiate()
            await client.register_task("t", 100.0, error_allowance=0.05)
            await client.intern(["t", "ghost"])
            reply = await client.offer_columns([0, 1], [0, 0],
                                               [50.0, 50.0])
            deadline = asyncio.get_running_loop().time() + 10
            while True:
                totals = (await client.stats())["totals"]
                if totals["applied"] + totals["rejected"] >= 2:
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.01)
            ping = await client.ping()
            return reply, totals, ping

        reply, totals, ping = run_with_server(scenario)
        assert reply.accepted == 2
        assert reply.rejected == 0
        assert totals["applied"] == 1
        assert totals["rejected"] == 1
        assert ping["ok"] is True

    def test_invalid_intern_entries_get_error_replies(self):
        async def scenario(server, client):
            await client.negotiate()
            replies = []
            for tasks in ([[1 << 21, "big"]], [[True, "bool"]],
                          [["0", "str"]], [[0]], "nope"):
                replies.append(await client.request(
                    {"op": "intern", "tasks": tasks}))
            ping = await client.ping()
            return replies, ping

        replies, ping = run_with_server(scenario)
        assert all(reply["ok"] is False for reply in replies)
        assert ping["ok"] is True


class TestJsonBinaryEquivalence:
    """The same stream over JSON and binary ends in identical state."""

    TASKS = 12
    STEPS = 160

    async def _drive(self, server, client, binary: bool):
        names = [f"eq-{i:02d}" for i in range(self.TASKS)]
        for name in names:
            await client.register_task(name, 100.0, error_allowance=0.02,
                                       max_interval=8)
        rng = np.random.default_rng(42)
        values = rng.normal(85.0, 14.0, (self.STEPS, self.TASKS))
        if binary:
            assert await client.negotiate() == PROTOCOL_BINARY
            idx = np.asarray(await client.intern(names), dtype=np.uint32)
            for step in range(self.STEPS):
                steps = np.full(self.TASKS, step, dtype=np.int64)
                reply = await client.offer_columns(idx, steps, values[step])
                assert reply.rejected == 0
        else:
            for step in range(self.STEPS):
                batch = [[name, step, float(values[step][i])]
                         for i, name in enumerate(names)]
                reply = await client.offer_batch(batch)
                assert reply.get("rejected", 0) == 0
        deadline = asyncio.get_running_loop().time() + 10
        while True:
            stats = await client.stats()
            if stats["totals"]["applied"] >= self.STEPS * self.TASKS:
                break
            assert asyncio.get_running_loop().time() < deadline
            await asyncio.sleep(0.01)
        infos = {name: await client.task_info(name) for name in names}
        alerts = {name: await client.alerts(name) for name in names}
        return stats["totals"], infos, alerts

    def test_binary_drive_matches_json_drive_bit_for_bit(self):
        def run(binary):
            return run_with_server(
                lambda server, client: self._drive(server, client, binary))

        totals_json, infos_json, alerts_json = run(False)
        totals_bin, infos_bin, alerts_bin = run(True)
        assert totals_bin["applied"] == totals_json["applied"]
        assert totals_bin["consumed"] == totals_json["consumed"]
        assert totals_bin["alerts"] == totals_json["alerts"]
        assert alerts_bin == alerts_json
        for name, info in infos_json.items():
            for key in ("samples_taken", "interval", "next_due",
                        "observations"):
                assert infos_bin[name][key] == info[key], (name, key)

    def test_mixed_json_and_binary_connections_share_state(self):
        # A JSON-only client and a binary client may interleave on the
        # same task: the intern table is per-connection, the state is not.
        async def runner():
            server = RuntimeServer(RuntimeConfig(port=0, shards=2))
            await server.start()
            json_client = AsyncRuntimeClient(port=server.tcp_port)
            bin_client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                await json_client.register_task(
                    "shared", 100.0, error_allowance=0.05)
                await bin_client.negotiate()
                idx = (await bin_client.intern(["shared"]))[0]
                assert (await json_client.offer_batch(
                    [["shared", 0, 40.0]]))["accepted"] == 1
                reply = await bin_client.offer_columns([idx], [1], [45.0])
                assert reply.accepted == 1
                assert (await json_client.offer_batch(
                    [["shared", 2, 50.0]]))["accepted"] == 1
                deadline = asyncio.get_running_loop().time() + 10
                while True:
                    stats = await json_client.stats()
                    if stats["totals"]["applied"] >= 3:
                        break
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.01)
                return await json_client.task_info("shared")
            finally:
                await json_client.close()
                await bin_client.close()
                await server.shutdown()

        info = asyncio.run(runner())
        assert info["samples_taken"] == 3
        assert info["observations"] == 3
