"""Checkpoint persistence and service snapshot/restore tests."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.online_stats import OnlineStatistics
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.exceptions import CheckpointError, ConfigurationError
from repro.runtime.checkpoint import (CHECKPOINT_VERSION, read_checkpoint,
                                      write_checkpoint)
from repro.service import MonitoringService


def task(threshold=100.0, err=0.01, max_interval=10):
    return TaskSpec(threshold=threshold, error_allowance=err,
                    max_interval=max_interval)


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, {"shard_count": 2, "shards": []})
        state = read_checkpoint(path)
        assert state["shard_count"] == 2
        assert state["checkpoint_version"] == CHECKPOINT_VERSION

    def test_write_is_atomic_no_temp_left_behind(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, {"x": 1})
        write_checkpoint(path, {"x": 2})
        assert read_checkpoint(path)["x"] == 2
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            read_checkpoint(tmp_path / "absent.json")

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{truncated")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"checkpoint_version": 999}))
        with pytest.raises(CheckpointError):
            read_checkpoint(path)


class TestChecksumTrailer:
    """Format v2 regression: damaged checkpoints must raise, not load.

    Before the checksum trailer existed, a truncated checkpoint that
    happened to be cut at a JSON token boundary would parse and silently
    restore partial shard state.
    """

    STATE = {"shard_count": 2, "shards": [{"x": 1}, {"y": 2}],
             "task_shard": {"a": 0}}

    def _write(self, tmp_path):
        path = tmp_path / "ckpt.json"
        write_checkpoint(path, dict(self.STATE))
        return path

    def test_v2_file_carries_crc_trailer(self, tmp_path):
        path = self._write(tmp_path)
        text = path.read_text()
        assert text.splitlines()[-1].startswith("crc32:")
        assert read_checkpoint(path)["shard_count"] == 2

    def test_losing_only_the_final_newline_is_harmless(self, tmp_path):
        # The trailer's closing newline is optional: cutting exactly one
        # byte leaves body + checksum intact, and the file still loads.
        path = self._write(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-1])
        assert read_checkpoint(path)["shard_count"] == 2

    @pytest.mark.parametrize("cut", [2, 3, 8, 40])
    def test_truncated_file_raises(self, tmp_path, cut):
        path = self._write(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - cut])
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_truncation_at_json_token_boundary_raises(self, tmp_path):
        # The historical hole: strip the whole trailer and cut the body so
        # it is still *valid JSON* — the reader must still reject it.
        path = self._write(tmp_path)
        text = path.read_text()
        body = text[:text.rindex("\ncrc32:")]
        end = body.rindex(",\"task_shard\"")
        truncated = body[:end] + "}"
        assert json.loads(truncated)  # would have loaded before the fix
        path.write_text(truncated)
        with pytest.raises(CheckpointError):
            read_checkpoint(path)

    def test_v2_document_without_trailer_raises(self, tmp_path):
        # A complete v2 JSON document whose trailer was stripped (e.g. by
        # a text-mode copy that dropped "binary garbage" lines) is
        # indistinguishable from a truncated one — reject it.
        path = tmp_path / "ckpt.json"
        doc = dict(self.STATE, checkpoint_version=CHECKPOINT_VERSION)
        path.write_text(json.dumps(doc))
        with pytest.raises(CheckpointError, match="checksum trailer"):
            read_checkpoint(path)

    def test_single_flipped_byte_raises(self, tmp_path):
        path = self._write(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0x20  # flip inside the JSON body
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_legacy_v1_file_without_trailer_still_reads(self, tmp_path):
        path = tmp_path / "ckpt.json"
        legacy = dict(self.STATE, checkpoint_version=1)
        path.write_text(json.dumps(legacy))
        assert read_checkpoint(path)["shards"] == self.STATE["shards"]

    def test_write_oserror_becomes_checkpoint_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("occupied")
        with pytest.raises(CheckpointError, match="cannot write"):
            write_checkpoint(blocker / "ckpt.json", {"x": 1})

    def test_non_utf8_file_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_bytes(b"\xff\xfe{}")
        with pytest.raises(CheckpointError, match="UTF-8"):
            read_checkpoint(path)


class TestOnlineStatisticsState:
    def test_roundtrip_preserves_estimates(self):
        stats = OnlineStatistics(restart_after=50, min_fresh=5)
        rng = np.random.default_rng(3)
        for x in rng.normal(0.5, 2.0, 130):
            stats.update(float(x))
        clone = OnlineStatistics(restart_after=50, min_fresh=5)
        clone.load_state_dict(stats.state_dict())
        assert clone.mean == stats.mean
        assert clone.variance == stats.variance
        assert clone.effective_count == stats.effective_count
        assert clone.restarts == stats.restarts
        # Continued updates must evolve identically.
        for x in rng.normal(0.5, 2.0, 80):
            stats.update(float(x))
            clone.update(float(x))
            assert clone.mean == stats.mean
            assert clone.variance == stats.variance

    def test_state_is_json_safe(self):
        stats = OnlineStatistics()
        stats.update(1.0)
        stats.update(2.0)
        assert json.loads(json.dumps(stats.state_dict())) \
            == stats.state_dict()


class TestSamplerState:
    def test_restored_sampler_continues_identically(self):
        """The restored sampler's decision stream must be bit-identical to
        an uninterrupted one — the checkpoint/restore acceptance bar."""
        spec = task(threshold=10.0, err=0.05)
        config = AdaptationConfig(patience=3, min_samples=4,
                                  stats_restart=60)
        rng = np.random.default_rng(11)
        values = rng.normal(7.0, 2.0, 400)

        reference = ViolationLikelihoodSampler(spec, config)
        split = ViolationLikelihoodSampler(spec, config)
        step_ref = 0
        step_split = 0
        # Drive both to the checkpoint, following each one's own schedule.
        for _ in range(120):
            decision = reference.observe(float(values[step_ref]), step_ref)
            step_ref += decision.next_interval
        for _ in range(120):
            decision = split.observe(float(values[step_split]), step_split)
            step_split += decision.next_interval
        assert step_ref == step_split

        restored = ViolationLikelihoodSampler(spec, config)
        restored.load_state_dict(split.state_dict())
        assert restored.interval == split.interval
        assert restored.observations == split.observations

        while step_ref < values.size:
            ref = reference.observe(float(values[step_ref]), step_ref)
            res = restored.observe(float(values[step_ref]), step_ref)
            assert ref == res
            step_ref += ref.next_interval

    def test_coordination_stats_survive_restore(self):
        spec = task(err=0.05)
        sampler = ViolationLikelihoodSampler(spec)
        for step in range(40):
            sampler.observe(1.0, step)
        clone = ViolationLikelihoodSampler(spec)
        clone.load_state_dict(sampler.state_dict())
        assert clone.drain_coordination_stats() \
            == sampler.drain_coordination_stats()


class TestServiceSnapshot:
    def test_snapshot_is_json_serialisable(self):
        service = MonitoringService()
        service.add_task("a", task(), window=3,
                         window_kind=AggregateKind.MAX)
        for step in range(20):
            service.offer("a", float(step * 7 % 13), step)
        snapshot = service.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot

    def test_restore_resumes_identically(self):
        rng = np.random.default_rng(5)
        values = rng.normal(80.0, 15.0, 600)

        def build():
            service = MonitoringService(AdaptationConfig(patience=3,
                                                         min_samples=4))
            service.add_task("inst", task(threshold=100.0, err=0.05))
            service.add_task("win", task(threshold=95.0, err=0.02),
                             window=4, window_kind=AggregateKind.MEAN)
            service.add_task("gate", task(threshold=90.0, err=0.0))
            service.add_trigger("inst", trigger="gate",
                                elevation_level=70.0, suspend_interval=6)
            return service

        def feed(service, lo, hi):
            for step in range(lo, hi):
                v = float(values[step])
                for name in ("inst", "win", "gate"):
                    service.offer(name, v, step)

        uninterrupted = build()
        feed(uninterrupted, 0, 600)

        interrupted = build()
        feed(interrupted, 0, 300)
        snapshot = json.loads(json.dumps(interrupted.snapshot()))
        restored = MonitoringService.restore(snapshot)
        feed(restored, 300, 600)

        for name in ("inst", "win", "gate"):
            assert restored.samples_taken(name) \
                == uninterrupted.samples_taken(name)
            assert restored.alerts(name) == uninterrupted.alerts(name)
            assert restored.interval(name) == uninterrupted.interval(name)
            assert restored.next_due(name) == uninterrupted.next_due(name)

    def test_restore_rewires_alert_callbacks(self):
        service = MonitoringService()
        service.add_task("a", task(threshold=10.0, err=0.0))
        fired = []
        restored = MonitoringService.restore(
            service.snapshot(),
            on_alert=lambda name, alert: fired.append((name, alert)))
        restored.offer("a", 50.0, 0)
        assert fired and fired[0][0] == "a"
        assert fired[0][1].value == 50.0

    def test_restore_rejects_wrong_version(self):
        service = MonitoringService()
        service.add_task("a", task())
        snapshot = service.snapshot()
        snapshot["version"] = 999
        with pytest.raises(ConfigurationError):
            MonitoringService.restore(snapshot)

    def test_restore_rejects_dangling_trigger(self):
        service = MonitoringService()
        service.add_task("a", task())
        service.add_task("b", task())
        service.add_trigger("a", trigger="b", elevation_level=1.0)
        snapshot = service.snapshot()
        snapshot["tasks"] = [t for t in snapshot["tasks"]
                             if t["name"] != "b"]
        with pytest.raises(ConfigurationError):
            MonitoringService.restore(snapshot)

    def test_window_buffer_survives_restore(self):
        service = MonitoringService()
        service.add_task("w", task(threshold=1e9, err=0.0), window=5,
                         window_kind=AggregateKind.MEAN)
        for step, v in enumerate([1.0, 2.0, 3.0]):
            service.offer("w", v, step)
        restored = MonitoringService.restore(service.snapshot())
        # Next aggregate must still see the pre-snapshot window contents.
        state = restored._state("w")
        assert state.aggregate(3, 6.0) == pytest.approx(3.0)
