"""Smoke tests for the load-generator CLI (self-hosted server mode)."""

from __future__ import annotations

import json

from repro.runtime.loadgen import main


def test_self_hosted_run_writes_report(tmp_path):
    out = tmp_path / "bench.json"
    ckpt = tmp_path / "ckpt.json"
    rc = main(["--tasks", "8", "--duration", "0.4", "--batch", "64",
               "--shards", "2", "--seed", "3",
               "--checkpoint", str(ckpt), "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["tasks"] == 8
    assert report["shards"] == 2
    assert report["offers"] > 0
    assert report["accepted"] == report["offers"]
    assert report["applied"] == report["accepted"]
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    # The graceful stop flushed a checkpoint and it round-tripped.
    assert report["checkpoint_roundtrip"] is True
    assert ckpt.exists()
    # Server-side accounting (PR 5): the telemetry snapshot taken around
    # the drive must agree with the client's own counting, and the
    # server-observed offer latency histogram must have real samples.
    server = report["server"]
    assert server["offered_delta"] == report["accepted"]
    assert server["shed_delta"] == report["shed"]
    assert report["counters_consistent"] is True
    latency = server["offer_latency_ms"]
    assert latency["count"] > 0
    assert 0.0 <= latency["p50"] <= latency["p99"] <= latency["max"]


def test_min_throughput_floor_fails_closed(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(["--tasks", "4", "--duration", "0.3", "--batch", "32",
               "--shards", "1", "--out", str(out),
               "--min-throughput", "1e12"])
    assert rc == 1

def test_forced_json_protocol_still_reports(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(["--tasks", "4", "--duration", "0.3", "--batch", "32",
               "--shards", "1", "--seed", "3", "--protocol", "json",
               "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["protocol"] == 1
    assert report["offers"] > 0


def test_binary_protocol_negotiates_and_profiles(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(["--tasks", "8", "--duration", "0.4", "--batch", "256",
               "--shards", "2", "--seed", "3", "--protocol", "binary",
               "--profile", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["protocol"] == 2
    assert report["offers"] > 0
    assert report["applied"] == report["accepted"]
    assert report["counters_consistent"] is True
    # --profile dumped the server hot-loop stats next to the report.
    profile = report["profile"]
    assert profile is not None
    text = (tmp_path / profile.split("/")[-1]).read_text()
    assert "cumulative" in text


def test_protocol_sweep_reports_ratio_and_equivalence(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(["--tasks", "8", "--duration", "0.3", "--batch", "256",
               "--shards", "2", "--seed", "3", "--protocol-sweep",
               "--soa-points", "6000", "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["mode"] == "protocol-sweep"
    assert report["json"]["protocol"] == 1
    assert report["binary"]["protocol"] == 2
    assert report["binary_vs_json"] > 0
    assert report["soa_equivalence"]["identical"] is True
