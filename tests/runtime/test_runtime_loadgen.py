"""Smoke tests for the load-generator CLI (self-hosted server mode)."""

from __future__ import annotations

import json

from repro.runtime.loadgen import main


def test_self_hosted_run_writes_report(tmp_path):
    out = tmp_path / "bench.json"
    ckpt = tmp_path / "ckpt.json"
    rc = main(["--tasks", "8", "--duration", "0.4", "--batch", "64",
               "--shards", "2", "--seed", "3",
               "--checkpoint", str(ckpt), "--out", str(out)])
    assert rc == 0
    report = json.loads(out.read_text())
    assert report["tasks"] == 8
    assert report["shards"] == 2
    assert report["offers"] > 0
    assert report["accepted"] == report["offers"]
    assert report["applied"] == report["accepted"]
    assert report["latency_ms"]["p50"] <= report["latency_ms"]["p99"]
    # The graceful stop flushed a checkpoint and it round-tripped.
    assert report["checkpoint_roundtrip"] is True
    assert ckpt.exists()
    # Server-side accounting (PR 5): the telemetry snapshot taken around
    # the drive must agree with the client's own counting, and the
    # server-observed offer latency histogram must have real samples.
    server = report["server"]
    assert server["offered_delta"] == report["accepted"]
    assert server["shed_delta"] == report["shed"]
    assert report["counters_consistent"] is True
    latency = server["offer_latency_ms"]
    assert latency["count"] > 0
    assert 0.0 <= latency["p50"] <= latency["p99"] <= latency["max"]


def test_min_throughput_floor_fails_closed(tmp_path):
    out = tmp_path / "bench.json"
    rc = main(["--tasks", "4", "--duration", "0.3", "--batch", "32",
               "--shards", "1", "--out", str(out),
               "--min-throughput", "1e12"])
    assert rc == 1
