"""Framing tests for the runtime wire protocol."""

from __future__ import annotations

import asyncio
import io
import struct

import pytest

from repro.exceptions import ProtocolError
from repro.runtime.protocol import (MAX_FRAME, encode_frame, read_frame,
                                    read_frame_blocking)


def feed_reader(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    reader.feed_eof()
    return reader


class TestEncode:
    def test_roundtrip_blocking(self):
        payload = {"op": "offer_batch", "updates": [["t", 0, 1.5]]}
        frame = encode_frame(payload)
        assert read_frame_blocking(io.BytesIO(frame)) == payload

    def test_length_prefix_is_big_endian_body_length(self):
        frame = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame(["not", "a", "dict"])  # type: ignore[arg-type]

    def test_oversized_payload_rejected(self):
        with pytest.raises(ProtocolError):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})


class TestAsyncRead:
    def test_roundtrip(self):
        payload = {"op": "ping", "nested": {"k": [1, 2.5, None, "s"]}}

        async def run():
            return await read_frame(feed_reader(encode_frame(payload)))

        assert asyncio.run(run()) == payload

    def test_clean_eof_returns_none(self):
        async def run():
            return await read_frame(feed_reader(b""))

        assert asyncio.run(run()) is None

    def test_truncated_header_raises(self):
        async def run():
            return await read_frame(feed_reader(b"\x00\x00"))

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_truncated_body_raises(self):
        frame = encode_frame({"op": "ping"})

        async def run():
            return await read_frame(feed_reader(frame[:-2]))

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_oversized_announcement_raises(self):
        async def run():
            return await read_frame(
                feed_reader(struct.pack(">I", MAX_FRAME + 1)))

        with pytest.raises(ProtocolError):
            asyncio.run(run())

    def test_multiple_frames_on_one_stream(self):
        frames = encode_frame({"n": 1}) + encode_frame({"n": 2})

        async def run():
            reader = feed_reader(frames)
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        assert asyncio.run(run()) == ({"n": 1}, {"n": 2}, None)


class TestBlockingRead:
    def test_bad_json_raises(self):
        body = b"{not json"
        with pytest.raises(ProtocolError):
            read_frame_blocking(
                io.BytesIO(struct.pack(">I", len(body)) + body))

    def test_non_object_body_raises(self):
        body = b"[1,2,3]"
        with pytest.raises(ProtocolError):
            read_frame_blocking(
                io.BytesIO(struct.pack(">I", len(body)) + body))

    def test_eof_between_frames_returns_none(self):
        assert read_frame_blocking(io.BytesIO(b"")) is None

    def test_eof_mid_frame_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError):
            read_frame_blocking(io.BytesIO(frame[:-1]))
