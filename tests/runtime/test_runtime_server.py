"""In-process tests for the sharded ingestion server.

Each test runs a real RuntimeServer on an ephemeral loopback port inside
``asyncio.run`` and drives it through the async client — the full frame
path, not handler calls.
"""

from __future__ import annotations

import asyncio
import collections

import pytest

from repro.config import RuntimeConfig
from repro.exceptions import ProtocolError
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.runtime.shard import shard_for
from repro.service import MonitoringService


def run_with_server(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("shards", 4)

    async def runner():
        server = RuntimeServer(RuntimeConfig(**config_kwargs))
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            return await coro_factory(server, client)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(runner())


class TestControlOps:
    def test_ping(self):
        async def scenario(server, client):
            return await client.ping()

        reply = run_with_server(scenario)
        assert reply["ok"] and reply["shards"] == 4

    def test_register_offer_alerts(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0, error_allowance=0.0)
            await client.offer_batch([["t", 0, 5.0], ["t", 1, 20.0]])
            for worker in server._workers:
                await worker.drain()
            return (await client.alerts("t"),
                    await client.task_info("t"))

        alerts, info = run_with_server(scenario)
        assert alerts == [[1, 20.0, 10.0]]
        assert info["samples_taken"] == 2
        assert info["alerts"] == 1

    def test_register_duplicate_is_error(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0)
            with pytest.raises(ProtocolError, match="already registered"):
                await client.register_task("t", 10.0)
            return True

        assert run_with_server(scenario)

    def test_unknown_op_is_error_not_disconnect(self):
        async def scenario(server, client):
            reply = await client.request({"op": "frobnicate"})
            # The connection must survive an unknown op.
            pong = await client.ping()
            return reply, pong

        reply, pong = run_with_server(scenario)
        assert not reply["ok"] and reply["code"] == "unknown-op"
        assert pong["ok"]

    def test_remove_task(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0)
            await client.remove_task("t")
            reply = await client.request({"op": "task_info", "task": "t"})
            offer = await client.offer_batch([["t", 0, 1.0]])
            return reply, offer

        reply, offer = run_with_server(scenario)
        assert not reply["ok"]
        assert offer["rejected"] == 1 and offer["accepted"] == 0

    def test_due_tracks_schedule(self):
        async def scenario(server, client):
            await client.register_task("t", 1e9, error_allowance=0.0)
            assert await client.due("t", 0)
            await client.offer_batch([["t", 0, 1.0]])
            for worker in server._workers:
                await worker.drain()
            return await client.due("t", 0), await client.due("t", 1)

        due0, due1 = run_with_server(scenario)
        assert not due0 and due1

    def test_stats_totals(self):
        async def scenario(server, client):
            for i in range(8):
                await client.register_task(f"t{i}", 1e9)
            await client.offer_batch(
                [[f"t{i}", 0, 1.0] for i in range(8)])
            for worker in server._workers:
                await worker.drain()
            return await client.stats()

        stats = run_with_server(scenario)
        assert stats["totals"]["tasks"] == 8
        assert stats["totals"]["applied"] == 8
        assert len(stats["shards"]) == 4


class TestSharding:
    def test_tasks_spread_and_route_stably(self):
        async def scenario(server, client):
            names = [f"task-{i}" for i in range(64)]
            shards = {}
            for name in names:
                reply = await client.register_task(name, 1e9)
                shards[name] = reply["shard"]
            return shards

        shards = run_with_server(scenario)
        assert all(shards[n] == shard_for(n, 4) for n in shards)
        # 64 names over 4 shards: every shard gets some tasks.
        assert len(collections.Counter(shards.values())) == 4

    def test_cross_shard_trigger_rejected(self):
        async def scenario(server, client):
            names = [f"task-{i}" for i in range(16)]
            for name in names:
                await client.register_task(name, 1e9)
            same = [n for n in names
                    if shard_for(n, 4) == shard_for(names[0], 4)]
            other = [n for n in names
                     if shard_for(n, 4) != shard_for(names[0], 4)]
            ok = await client.add_trigger(same[1], same[0], 5.0)
            bad = await client.request(
                {"op": "add_trigger", "target": other[0],
                 "trigger": names[0], "elevation_level": 5.0})
            return ok, bad

        ok, bad = run_with_server(scenario)
        assert ok["ok"]
        assert not bad["ok"] and bad["code"] == "cross-shard-trigger"

    def test_batch_fans_out_across_shards(self):
        async def scenario(server, client):
            names = [f"task-{i}" for i in range(32)]
            for name in names:
                await client.register_task(name, 1e9)
            await client.offer_batch([[n, 0, 1.0] for n in names])
            for worker in server._workers:
                await worker.drain()
            stats = await client.stats()
            return [s["updates_applied"] for s in stats["shards"]]

        per_shard = run_with_server(scenario)
        assert sum(per_shard) == 32
        assert all(applied > 0 for applied in per_shard)


class TestBackpressure:
    def test_full_queue_sheds_with_retry_hint(self):
        async def scenario(server, client):
            await client.register_task("t", 1e9)
            # Stall the shard's drain loop so the queue can fill up.
            worker = server.worker_for("t")
            worker._runner.cancel()
            try:
                await worker._runner
            except asyncio.CancelledError:
                pass
            worker._runner = None

            replies = []
            for i in range(4):
                replies.append(await client.offer_batch([["t", i, 1.0]]))
            return replies

        replies = run_with_server(scenario, queue_depth=2)
        accepted = [r for r in replies if not r.get("shed")]
        shed = [r for r in replies if r.get("shed")]
        assert len(accepted) == 2 and len(shed) == 2
        assert all(r["backpressure"] and r["retry_after_ms"] >= 0
                   for r in shed)

    def test_one_lagging_shard_does_not_block_others(self):
        async def scenario(server, client):
            names = [f"task-{i}" for i in range(16)]
            for name in names:
                await client.register_task(name, 1e9)
            victim = names[0]
            stalled = server.worker_for(victim)
            stalled._runner.cancel()
            try:
                await stalled._runner
            except asyncio.CancelledError:
                pass
            stalled._runner = None
            healthy = [n for n in names
                       if server.worker_for(n) is not stalled]

            # Saturate the stalled shard...
            for i in range(server.config.queue_depth + 3):
                await client.offer_batch([[victim, i, 1.0]])
            # ...then confirm a healthy shard still applies immediately.
            reply = await client.offer_batch([[healthy[0], 0, 1.0]])
            for worker in server._workers:
                if worker is not stalled:
                    await worker.drain()
            info = await client.task_info(healthy[0])
            return reply, info

        reply, info = run_with_server(scenario, queue_depth=2)
        assert reply["accepted"] == 1 and not reply.get("shed")
        assert info["samples_taken"] == 1

    def test_oversized_batch_rejected(self):
        async def scenario(server, client):
            await client.register_task("t", 1e9)
            return await client.request(
                {"op": "offer_batch",
                 "updates": [["t", i, 1.0] for i in range(5)]})

        reply = run_with_server(scenario, max_batch=4)
        assert not reply["ok"] and reply["code"] == "batch-too-large"


class TestMalformedInput:
    """Regression tests: malformed frames must get error replies and must
    never poison a shard drain loop or drop the connection."""

    def test_non_numeric_update_rejected_before_ack(self):
        async def scenario(server, client):
            await client.register_task("t", 1e9)
            bad_value = await client.request(
                {"op": "offer_batch", "updates": [["t", 0, "oops"]]})
            bad_step = await client.request(
                {"op": "offer_batch", "updates": [["t", None, 1.0]]})
            bool_step = await client.request(
                {"op": "offer_batch", "updates": [["t", True, 1.0]]})
            ok = await client.offer_batch([["t", 0, 1.0]])
            for worker in server._workers:
                await worker.drain()
            info = await client.task_info("t")
            return bad_value, bad_step, bool_step, ok, info

        bad_value, bad_step, bool_step, ok, info = run_with_server(scenario)
        for reply in (bad_value, bad_step, bool_step):
            assert not reply["ok"] and reply["code"] == "bad-update"
        # The shard kept applying after the rejected frames, and
        # run_with_server's shutdown() returning at all proves the drain
        # loop is still consuming (a dead consumer deadlocks queue.join()).
        assert ok["accepted"] == 1
        assert info["samples_taken"] == 1

    def test_drain_loop_survives_poison_update(self):
        # Inject a malformed update directly into the queue, bypassing
        # wire validation: apply() must reject it per-update and keep
        # applying the rest of the batch.
        async def scenario(server, client):
            await client.register_task("t", 1e9)
            worker = server.worker_for("t")
            assert worker.try_enqueue([["t", 0, "oops"], ["t", 1, 2.0]])
            await worker.drain()
            info = await client.task_info("t")
            stats = await client.stats()
            return info, stats

        info, stats = run_with_server(scenario)
        assert info["samples_taken"] == 1
        assert stats["totals"]["rejected"] == 1
        assert stats["totals"]["applied"] == 1

    def test_malformed_control_fields_get_error_reply(self):
        async def scenario(server, client):
            bogus_agg = await client.request(
                {"op": "register_task",
                 "task": {"name": "x", "threshold": 1.0,
                          "aggregate": "bogus"}})
            bad_window = await client.request(
                {"op": "register_task",
                 "task": {"name": "x", "threshold": 1.0, "window": "wide"}})
            bad_step = await client.request(
                {"op": "due", "task": "x", "step": "zero"})
            unhashable_op = await client.request({"op": ["offer_batch"]})
            # The connection must survive all of the above.
            pong = await client.ping()
            return bogus_agg, bad_window, bad_step, unhashable_op, pong

        bogus_agg, bad_window, bad_step, unhashable_op, pong = \
            run_with_server(scenario)
        assert not bogus_agg["ok"] and "bogus" in bogus_agg["error"]
        assert not bad_window["ok"]
        assert not bad_step["ok"]
        assert not unhashable_op["ok"]
        assert unhashable_op["code"] == "unknown-op"
        assert pong["ok"]


class TestCheckpointOps:
    def test_checkpoint_op_and_restore(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task("t", 10.0, error_allowance=0.0)
            await client.offer_batch([["t", 0, 5.0], ["t", 1, 25.0]])
            for worker in server._workers:
                await worker.drain()
            await client.checkpoint()
            return await client.task_info("t")

        info = run_with_server(scenario, checkpoint_path=path,
                               checkpoint_interval=3600.0)

        async def restart():
            server = RuntimeServer(RuntimeConfig(
                port=0, shards=4, checkpoint_path=path,
                checkpoint_interval=3600.0))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                return server.restored_tasks, \
                    await client.task_info("t"), await client.alerts("t")
            finally:
                await client.close()
                await server.shutdown()

        restored_count, restored_info, alerts = asyncio.run(restart())
        assert restored_count == 1
        assert restored_info["samples_taken"] == info["samples_taken"]
        assert restored_info["next_due"] == info["next_due"]
        assert alerts == [[1, 25.0, 10.0]]

    def test_shutdown_flushes_final_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task("t", 1e9)
            # Queue a batch but do NOT drain: graceful shutdown must
            # apply it before flushing the final checkpoint.
            await client.offer_batch([["t", 0, 1.0], ["t", 1, 2.0]])
            return True

        run_with_server(scenario, checkpoint_path=path,
                        checkpoint_interval=3600.0)
        from repro.runtime.checkpoint import read_checkpoint

        state = read_checkpoint(path)
        restored = MonitoringService.restore(
            state["shards"][shard_for("t", 4)])
        assert restored.samples_taken("t") == 2

    def test_checkpoint_loop_survives_write_failure(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task("t", 1e9)
            real = server.write_checkpoint
            calls = {"n": 0}

            def flaky():
                calls["n"] += 1
                if calls["n"] == 1:
                    raise OSError("disk full")
                return real()

            server.write_checkpoint = flaky
            # Wait until the loop has both failed once and recovered.
            while calls["n"] < 2:
                await asyncio.sleep(0.005)
            server.write_checkpoint = real
            return await client.stats()

        stats = run_with_server(scenario, checkpoint_path=path,
                                checkpoint_interval=0.01)
        assert stats["checkpoint"]["failures"] == 1
        assert path.exists()

    def test_shard_count_mismatch_fails_closed(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task("t", 1e9)
            return True

        run_with_server(scenario, shards=4, checkpoint_path=path,
                        checkpoint_interval=3600.0)

        from repro.exceptions import CheckpointError

        async def restart_wrong():
            server = RuntimeServer(RuntimeConfig(
                port=0, shards=2, checkpoint_path=path,
                checkpoint_interval=3600.0))
            await server.start()

        with pytest.raises(CheckpointError, match="resharding"):
            asyncio.run(restart_wrong())


class TestConfigFileTasks:
    def test_declarative_tasks_registered_at_start(self):
        async def runner():
            server = RuntimeServer(
                RuntimeConfig(port=0, shards=2),
                service_config={
                    "defaults": {"error_allowance": 0.0},
                    "tasks": [{"name": "cfg-a", "threshold": 5.0},
                              {"name": "cfg-b", "threshold": 7.0,
                               "window": 3, "aggregate": "max"}],
                })
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                reply = await client.offer_batch(
                    [["cfg-a", 0, 10.0], ["cfg-b", 0, 10.0]])
                for worker in server._workers:
                    await worker.drain()
                return reply, await client.alerts("cfg-a")
            finally:
                await client.close()
                await server.shutdown()

        reply, alerts = asyncio.run(runner())
        assert reply["accepted"] == 2
        assert alerts == [[0, 10.0, 5.0]]


class TestTelemetryOps:
    def test_telemetry_op_returns_metrics_and_trace_meta(self):
        async def scenario(server, client):
            await client.register_task("t", 10.0)
            await client.offer_batch([["t", s, 1.0] for s in range(4)])
            for worker in server._workers:
                await worker.drain()
            return await client.telemetry()

        reply = run_with_server(scenario)
        assert reply["ok"]
        metrics = reply["metrics"]
        offered = sum(s["value"] for s in
                      metrics["volley_updates_offered_total"]["series"])
        assert offered == 4
        assert metrics["volley_tasks"]["series"][0]["value"] == 1.0
        assert metrics["volley_frames_total"]["series"][0]["value"] > 0
        assert reply["trace"]["next_seq"] >= 1  # task_registered at least
        assert reply["trace"]["dropped"] == 0

    def test_trace_op_drains_incrementally(self):
        async def scenario(server, client):
            await client.register_task("a", 5.0)
            await client.register_task("b", 5.0)
            full = await client.trace()
            tail = await client.trace(since=full["next_seq"] - 1)
            limited = await client.trace(limit=1)
            await client.remove_task("a")
            after = await client.trace(since=full["next_seq"])
            return full, tail, limited, after

        full, tail, limited, after = run_with_server(scenario)
        kinds = [e["kind"] for e in full["events"]]
        assert kinds.count("task_registered") == 2
        assert len(tail["events"]) == 1
        assert tail["events"][0]["seq"] == full["next_seq"] - 1
        assert len(limited["events"]) == 1
        assert [e["kind"] for e in after["events"]] == ["task_removed"]
        assert after["events"][0]["task"] == "a"
