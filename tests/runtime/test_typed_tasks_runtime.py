"""End-to-end wire tests for sketch-backed task types (DESIGN.md S29).

Quantile and entropy tasks must work through the *runtime*, not just the
service object: registered over the JSON control path with typed config
keys, fed through offer batches (which fall back to the scalar by-name
path — typed tasks are not SoA-eligible), adapting and alerting on the
derived statistic, and surviving checkpoint → restart bit-identically
including the substrate's sketch/window state.
"""

from __future__ import annotations

import asyncio

from repro.config import RuntimeConfig
from repro.runtime.checkpoint import read_checkpoint, state_fingerprint
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.runtime.shard import shard_for


def run_with_server(coro_factory, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("shards", 2)

    async def runner():
        server = RuntimeServer(RuntimeConfig(**config_kwargs))
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            return await coro_factory(server, client)
        finally:
            await client.close()
            await server.shutdown()

    return asyncio.run(runner())


async def _drain(server):
    for worker in server._workers:
        await worker.drain()


class TestQuantileOverTheWire:
    def test_register_offer_adapt_alert(self):
        async def scenario(server, client):
            reply = await client.register_task(
                "q", 80.0, type="quantile", quantile=0.9,
                sketch_window=32, error_allowance=0.01, max_interval=6)
            assert reply["ok"] and reply["type"] == "quantile"
            # Calm: everything far below the SLO -> exceedance 0.
            await client.offer_batch(
                [["q", step, 40.0] for step in range(100)])
            await _drain(server)
            calm_info = await client.alerts("q")
            # Regression: every observation above -> exceedance -> 1.
            await client.offer_batch(
                [["q", 100 + i, 200.0] for i in range(60)])
            await _drain(server)
            return calm_info, await client.alerts("q"), \
                await client.task_info("q")

        calm_alerts, alerts, info = run_with_server(scenario)
        assert calm_alerts == []
        assert alerts, "regression must raise quantile alerts"
        assert all(step >= 100 for step, *_ in alerts)
        # Alerts are reported in the *value* frame: the raw SLO as the
        # threshold and the estimated p90 as the violating value, even
        # though detection ran on the derived exceedance stream.
        assert all(threshold == 80.0 for *_, threshold in alerts)
        assert alerts[-1][1] > 80.0
        assert info["type"] == "quantile"
        # The p90 estimate reflects the regression regime.
        assert info["estimate"] > 80.0

    def test_checkpoint_restart_is_bit_identical(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task(
                "q", 80.0, type="quantile", quantile=0.9,
                sketch_window=16, error_allowance=0.01, max_interval=6)
            # Stop mid-epoch (37 % 16 != 0) so rotation state matters.
            await client.offer_batch(
                [["q", step, 40.0 + (step % 7) * 30.0]
                 for step in range(37)])
            await _drain(server)
            await client.checkpoint()
            return await client.task_info("q"), await client.alerts("q")

        info, alerts = run_with_server(scenario, checkpoint_path=path,
                                       checkpoint_interval=3600.0)

        async def restart():
            server = RuntimeServer(RuntimeConfig(
                port=0, shards=2, checkpoint_path=path,
                checkpoint_interval=3600.0))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                shard = shard_for("q", 2)
                fingerprint = state_fingerprint(
                    server._workers[shard].service.snapshot())
                return (server.restored_tasks, fingerprint,
                        await client.task_info("q"),
                        await client.alerts("q"))
            finally:
                await client.close()
                await server.shutdown()

        restored_count, fingerprint, restored_info, restored_alerts = \
            asyncio.run(restart())
        assert restored_count == 1
        assert restored_info == info
        assert restored_alerts == alerts
        checkpoint_state = read_checkpoint(path)
        assert fingerprint \
            == state_fingerprint(checkpoint_state["shards"][
                shard_for("q", 2)])


class TestEntropyOverTheWire:
    def test_register_offer_adapt_alert(self):
        async def scenario(server, client):
            reply = await client.register_task(
                "h", 1.5, type="entropy", entropy_window=16,
                bin_width=1.0, direction="lower",
                error_allowance=0.01, max_interval=6)
            assert reply["ok"] and reply["type"] == "entropy"
            # Diverse symbols: windowed entropy sits at log2(16) = 4.
            await client.offer_batch(
                [["h", step, float(step % 16)] for step in range(80)])
            await _drain(server)
            info_healthy = await client.task_info("h")
            # Flood of identical symbols: entropy drains toward zero.
            await client.offer_batch(
                [["h", 80 + i, 7.0] for i in range(40)])
            await _drain(server)
            return (info_healthy, await client.task_info("h"),
                    await client.alerts("h"))

        healthy, flooded, alerts = run_with_server(scenario)
        assert healthy["type"] == "entropy"
        assert healthy["estimate"] == 4.0
        assert flooded["estimate"] == 0.0
        # Cold-start alerts (a partial window legitimately has low
        # entropy) are allowed; the flood must alert as well.
        assert any(step >= 80 for step, *_ in alerts)

    def test_checkpoint_restart_is_bit_identical(self, tmp_path):
        path = tmp_path / "ckpt.json"

        async def scenario(server, client):
            await client.register_task(
                "h", 1.5, type="entropy", entropy_window=12,
                bin_width=2.0, direction="lower",
                error_allowance=0.01, max_interval=6)
            # Stop with a partially diverse window in flight.
            await client.offer_batch(
                [["h", step, float((step * 3) % 10)]
                 for step in range(29)])
            await _drain(server)
            await client.checkpoint()
            return await client.task_info("h"), await client.alerts("h")

        info, alerts = run_with_server(scenario, checkpoint_path=path,
                                       checkpoint_interval=3600.0)

        async def restart():
            server = RuntimeServer(RuntimeConfig(
                port=0, shards=2, checkpoint_path=path,
                checkpoint_interval=3600.0))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                return (await client.task_info("h"),
                        await client.alerts("h"))
            finally:
                await client.close()
                await server.shutdown()

        restored_info, restored_alerts = asyncio.run(restart())
        assert restored_info == info
        assert restored_alerts == alerts


class TestTypedTelemetry:
    def test_tasks_by_type_gauge_counts_each_kind(self):
        async def scenario(server, client):
            await client.register_task("v", 100.0)
            await client.register_task("q", 80.0, type="quantile",
                                       quantile=0.99)
            await client.register_task("h", 1.0, type="entropy",
                                       direction="lower")
            snapshot = server.registry.snapshot()
            family = snapshot["volley_tasks_by_type"]
            return {series["labels"][0]: series["value"]
                    for series in family["series"]}

        gauges = run_with_server(scenario)
        assert gauges["value"] == 1.0
        assert gauges["quantile"] == 1.0
        assert gauges["entropy"] == 1.0
