"""Conformance bridge: testkit chaos specs layered onto timelines.

The testkit's fault matrix (``repro.testkit.scenarios.SCENARIOS``) and
the incident-scenario engine compose: any non-crashing fault spec can be
layered onto a timeline replay, and the scored report stays a pure
function of ``(timeline, seed, fault spec, fault seed)``.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (canned_timeline, compile_timeline,
                             render_report, replay_scenario, score_scenario)
from repro.testkit.scenarios import SCENARIOS as FAULT_SCENARIOS

LAYERABLE = sorted(name for name, spec in FAULT_SCENARIOS.items()
                   if not spec.crash_fractions)


@pytest.fixture(scope="module")
def compiled():
    timeline = canned_timeline("cascade-failure").scaled(fleet=0.02,
                                                         horizon=0.25)
    return compile_timeline(timeline, seed=7)


def test_every_layerable_testkit_spec_is_accepted(compiled):
    # The catalogue must stay composable: every non-crashing spec from
    # the chaos matrix is a valid fault layer for a timeline replay.
    assert LAYERABLE, "testkit fault matrix lost its non-crash scenarios"
    assert set(LAYERABLE) <= set(FAULT_SCENARIOS)


def test_clean_spec_layer_is_transparent(compiled):
    plain = replay_scenario(compiled, shards=2)
    layered = replay_scenario(compiled, shards=2,
                              fault_spec=FAULT_SCENARIOS["clean"])
    assert layered.alert_steps == plain.alert_steps
    assert layered.samples == plain.samples
    assert layered.intervals == plain.intervals
    assert sum(layered.injected.values()) == 0


@pytest.mark.chaos
@pytest.mark.parametrize("fault_name",
                         [n for n in LAYERABLE if n != "clean"])
def test_fault_layered_replay_is_pure(compiled, fault_name):
    spec = FAULT_SCENARIOS[fault_name]
    a = replay_scenario(compiled, shards=2, fault_spec=spec, fault_seed=11)
    b = replay_scenario(compiled, shards=2, fault_spec=spec, fault_seed=11)
    assert render_report(score_scenario(compiled, a)) == \
        render_report(score_scenario(compiled, b))
    assert a.injected == b.injected
