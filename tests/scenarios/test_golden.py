"""Golden-file regression for the scored scenario report.

The committed golden pins the full report for the ``diurnal-baseline``
scenario (reduced scale, seed 7): any change to the workload generators,
the timeline compiler, the sampling core or the scorer that shifts a
single byte of the report fails here. Regenerate deliberately with::

    PYTHONPATH=src python - <<'EOF'
    from repro.scenarios import (canned_timeline, compile_timeline,
                                 render_report, score_scenario,
                                 simulate_replay)
    tl = canned_timeline("diurnal-baseline").scaled(fleet=0.125,
                                                    horizon=0.5)
    c = compile_timeline(tl, 7)
    text = render_report(score_scenario(c, simulate_replay(c, "volley")))
    open("tests/scenarios/golden/diurnal-baseline_seed7.json",
         "w").write(text)
    EOF
"""

from __future__ import annotations

import json
import pathlib

from repro.scenarios import (canned_timeline, compile_timeline,
                             render_report, score_scenario, simulate_replay)

GOLDEN = (pathlib.Path(__file__).parent / "golden" /
          "diurnal-baseline_seed7.json")


def _render() -> str:
    timeline = canned_timeline("diurnal-baseline").scaled(fleet=0.125,
                                                          horizon=0.5)
    compiled = compile_timeline(timeline, 7)
    result = simulate_replay(compiled, mode="volley")
    return render_report(score_scenario(compiled, result))


def test_report_matches_committed_golden_byte_for_byte():
    assert _render() == GOLDEN.read_text(encoding="utf-8")


def test_two_runs_are_byte_identical():
    assert _render() == _render()


def test_golden_report_semantics():
    report = json.loads(GOLDEN.read_text(encoding="utf-8"))
    assert report["scenario"] == "diurnal-baseline"
    assert report["seed"] == 7
    # The no-incident baseline: nothing to detect, nothing missed, and
    # the adaptive sampler banks probe savings against the quiet fleet.
    assert report["truth"]["windows"] == 0
    assert report["detection"]["windows_missed"] == 0
    assert report["misdetection"]["within_err"] is True
    assert report["cost"]["cost_saving"] > 0.0
    assert report["passed"] is True
