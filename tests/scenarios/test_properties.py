"""Hypothesis properties of timeline compilation.

The three invariants the scenario engine's determinism rests on:
``(seed, timeline)`` -> bit-identical trace streams; phase boundaries
partition the horizon exactly (no gap or overlap steps); every
ground-truth window lies inside its phase.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.scenarios import (Overlay, Phase, ThresholdSpec, Timeline,
                             TruthWindow, WorkloadLayer, compile_timeline)

_KINDS = st.sampled_from(
    ["ramp", "decay", "step", "spike", "scale", "entropy_shift"])


@st.composite
def overlays(draw, duration: int):
    kind = draw(_KINDS)
    start = draw(st.integers(0, duration - 1))
    length = draw(st.integers(1, duration - start))
    spread = draw(st.integers(0, duration - start - length))
    return Overlay(
        kind=kind,
        peak=draw(st.floats(0.5, 200.0, allow_nan=False)),
        start=start, length=length,
        ramp_steps=draw(st.integers(1, 6)),
        coverage=draw(st.floats(0.1, 1.0, allow_nan=False)),
        spread=spread,
        jitter=draw(st.sampled_from([0.0, 0.05])),
    )


@st.composite
def windows(draw, duration: int):
    start = draw(st.integers(0, duration - 1))
    length = draw(st.integers(1, duration - start))
    spread = draw(st.integers(0, duration - start - length))
    return TruthWindow(start=start, length=length,
                       coverage=draw(st.floats(0.1, 1.0, allow_nan=False)),
                       spread=spread)


@st.composite
def phases(draw, index: int):
    duration = draw(st.integers(5, 40))
    return Phase(
        name=f"phase-{index}",
        duration=duration,
        overlays=tuple(draw(st.lists(overlays(duration), max_size=2))),
        truth=tuple(draw(st.lists(windows(duration), max_size=2))),
    )


@st.composite
def timelines(draw):
    n_phases = draw(st.integers(1, 4))
    base = draw(st.sampled_from([
        WorkloadLayer("ar1", {"mean": 20.0, "phi": 0.8, "sigma": 2.0}),
        WorkloadLayer("random_walk", {"sigma": 1.0, "start": 10.0,
                                      "lo": 0.0, "hi": 100.0}),
        WorkloadLayer("spikes", {"spike_prob": 0.01}),
        WorkloadLayer("diurnal", {"period": 24, "amplitude": 30.0,
                                  "phase_spread": 1.0}),
    ]))
    return Timeline(
        name="prop",
        description="hypothesis-generated",
        tasks=draw(st.integers(2, 10)),
        base=base,
        phases=tuple(draw(phases(i)) for i in range(n_phases)),
        threshold=ThresholdSpec("absolute", 50.0),
        err=0.05,
    )


@settings(max_examples=30, deadline=None)
@given(timelines(), st.integers(0, 2 ** 32 - 1))
def test_same_seed_same_timeline_bit_identical(timeline, seed):
    a = compile_timeline(timeline, seed)
    b = compile_timeline(timeline, seed)
    assert a.values.dtype == b.values.dtype == np.float64
    assert a.values.tobytes() == b.values.tobytes()
    assert a.thresholds.tobytes() == b.thresholds.tobytes()
    assert a.windows == b.windows
    assert a.task_names == b.task_names


@settings(max_examples=30, deadline=None)
@given(timelines())
def test_phase_spans_partition_horizon_exactly(timeline):
    spans = timeline.phase_spans()
    assert spans[0].start == 0
    assert spans[-1].end == timeline.horizon
    for prev, cur in zip(spans, spans[1:]):
        assert prev.end == cur.start  # no gap, no overlap
    assert sum(s.end - s.start for s in spans) == timeline.horizon


@settings(max_examples=30, deadline=None)
@given(timelines(), st.integers(0, 2 ** 16))
def test_truth_windows_lie_inside_their_phase(timeline, seed):
    compiled = compile_timeline(timeline, seed)
    spans = compiled.spans
    declared = sum(
        timeline.covered(w.coverage) * 1
        for ph in timeline.phases for w in ph.truth)
    assert len(compiled.windows) == declared
    for w in compiled.windows:
        assert 0 <= w.task < timeline.tasks
        assert w.start < w.end <= timeline.horizon
        owner = [s for s in spans if s.start <= w.start < s.end]
        assert len(owner) == 1
        assert w.end <= owner[0].end  # never bleeds into the next phase


@settings(max_examples=15, deadline=None)
@given(timelines(), st.integers(0, 2 ** 16))
def test_compiled_shape_and_finiteness(timeline, seed):
    compiled = compile_timeline(timeline, seed)
    assert compiled.values.shape == (timeline.horizon, timeline.tasks)
    assert np.isfinite(compiled.values).all()
    assert np.isfinite(compiled.thresholds).all()
