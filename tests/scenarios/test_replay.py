"""Replay driver: live wire replay matches the in-process simulation,
and chaos fault layers stay deterministic."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (canned_timeline, compile_timeline,
                             render_report, replay_scenario, score_scenario,
                             simulate_replay)
from repro.testkit.faults import FaultSpec


@pytest.fixture(scope="module")
def compiled():
    timeline = canned_timeline("entropy-flood").scaled(fleet=0.05,
                                                       horizon=0.5)
    return compile_timeline(timeline, seed=7)


def test_live_replay_matches_simulation(compiled):
    live = replay_scenario(compiled, shards=2)
    sim = simulate_replay(compiled, mode="volley")
    # The wire path must be a transparent transport: identical alerts,
    # probe counts and final intervals as driving the service directly.
    assert live.alert_steps == sim.alert_steps
    assert live.samples == sim.samples
    assert live.intervals == sim.intervals
    assert live.reconnects == 0
    assert live.lost_updates == 0
    assert live.trace_dropped == 0
    assert live.counters["shed"] == 0
    assert live.counters["offered"] == compiled.n_steps * compiled.n_tasks


def test_live_replay_is_reproducible(compiled):
    a = score_scenario(compiled, replay_scenario(compiled, shards=2))
    b = score_scenario(compiled, replay_scenario(compiled, shards=2))
    assert render_report(a) == render_report(b)


def test_crash_faults_rejected(compiled):
    spec = FaultSpec(crash_fractions=(0.5,))
    with pytest.raises(ConfigurationError):
        replay_scenario(compiled, fault_spec=spec)


@pytest.mark.chaos
def test_fault_layer_is_deterministic(compiled):
    spec = FaultSpec(drop_connection_rate=0.01, corrupt_frame_rate=0.005,
                     duplicate_frame_rate=0.005)
    a = replay_scenario(compiled, shards=2, fault_spec=spec, fault_seed=11)
    b = replay_scenario(compiled, shards=2, fault_spec=spec, fault_seed=11)
    assert render_report(score_scenario(compiled, a)) == \
        render_report(score_scenario(compiled, b))
    assert a.injected == b.injected
    assert sum(a.injected.values()) > 0
    assert a.reconnects == b.reconnects
