"""Scored benchmarks + the planted-mutant sanity check.

The mutation check (issue satellite): a planted always-sample sampler
must score ~zero detection delay at maximal probe cost, and a planted
never-sample sampler must breach the mis-detection invariant — if either
mutant slips through, the scorer (not the sampler) is broken.
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (build_bench, canned_timeline, compile_timeline,
                             render_report, score_scenario, simulate_replay)


@pytest.fixture(scope="module")
def compiled():
    timeline = canned_timeline("entropy-flood").scaled(fleet=0.05,
                                                       horizon=0.5)
    return compile_timeline(timeline, seed=7)


def test_always_sampler_scores_zero_delay_max_cost(compiled):
    report = score_scenario(compiled, simulate_replay(compiled,
                                                      mode="always"))
    det, mis, cost = (report["detection"], report["misdetection"],
                      report["cost"])
    assert det["windows_missed"] == 0
    assert det["mean_delay_steps"] == 0.0
    assert det["max_delay_steps"] == 0
    assert mis["rate"] == 0.0
    assert mis["within_err"] is True
    assert cost["sampling_ratio"] == 1.0
    assert cost["cost_saving"] == 0.0
    assert report["passed"] is True


def test_never_sampler_breaches_misdetection_invariant(compiled):
    report = score_scenario(compiled, simulate_replay(compiled,
                                                      mode="never"))
    mis = report["misdetection"]
    assert mis["detected_points"] == 0
    assert mis["rate"] == 1.0
    assert mis["within_err"] is False
    assert report["detection"]["windows_missed"] > 0
    assert report["cost"]["sampling_ratio"] == 0.0
    assert report["passed"] is False


def test_volley_sampler_between_the_mutants(compiled):
    report = score_scenario(compiled, simulate_replay(compiled,
                                                      mode="volley"))
    assert report["misdetection"]["within_err"] is True
    assert report["detection"]["windows_missed"] == 0
    # Adaptive sampling must actually skip probes during calm phases.
    assert 0.0 < report["cost"]["sampling_ratio"] < 1.0
    assert report["cost"]["cost_saving"] > 0.0
    assert report["passed"] is True


def test_report_is_canonical_and_stable(compiled):
    a = score_scenario(compiled, simulate_replay(compiled, mode="volley"))
    b = score_scenario(compiled, simulate_replay(compiled, mode="volley"))
    assert render_report(a) == render_report(b)
    # Canonical form: sorted keys, trailing newline, round-trips.
    text = render_report(a)
    assert text.endswith("\n")
    assert json.loads(text) == a


def test_build_bench_totals_and_gate(compiled):
    good = score_scenario(compiled, simulate_replay(compiled, mode="always"))
    bad = score_scenario(compiled, simulate_replay(compiled, mode="never"))
    bench = build_bench([good, bad], {"seed": 7, "mode": "offline"})
    totals = bench["totals"]
    assert totals["scenarios"] == 2
    assert totals["passed"] == 1
    assert totals["failed"] == 1
    assert bench["passed"] is False
    only_good = build_bench([good], {"seed": 7, "mode": "offline"})
    assert only_good["passed"] is True
