"""Timeline model: fail-closed validation, round-trip, scaling."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (CANNED, Overlay, Phase, ThresholdSpec,
                             Timeline, TruthWindow, WorkloadLayer,
                             canned_timeline)


def _mini(**kwargs) -> Timeline:
    base = dict(
        name="mini", description="", tasks=8,
        base=WorkloadLayer("ar1", {"mean": 10.0, "sigma": 0.5}),
        phases=(Phase("a", 20),
                Phase("b", 30, overlays=(
                    Overlay("step", peak=50.0, start=5, length=10),),
                      truth=(TruthWindow(start=5, length=10),))),
        threshold=ThresholdSpec("absolute", 30.0))
    base.update(kwargs)
    return Timeline(**base)


def test_horizon_and_spans_partition():
    tl = _mini()
    spans = tl.phase_spans()
    assert tl.horizon == 50
    assert (spans[0].start, spans[0].end) == (0, 20)
    assert (spans[1].start, spans[1].end) == (20, 50)


def test_roundtrip_to_from_dict():
    tl = _mini()
    assert Timeline.from_dict(tl.to_dict()) == tl


def test_canned_catalogue_roundtrips():
    for name in CANNED:
        tl = canned_timeline(name)
        assert Timeline.from_dict(tl.to_dict()) == tl
        assert tl.name == name


@pytest.mark.parametrize("bad", [
    dict(tasks=0),
    dict(err=0.0),
    dict(err=1.0),
    dict(max_interval=0),
    dict(direction="sideways"),
    dict(phases=()),
])
def test_timeline_validation_fails_closed(bad):
    with pytest.raises(ConfigurationError):
        _mini(**bad)


def test_duplicate_phase_names_rejected():
    with pytest.raises(ConfigurationError):
        _mini(phases=(Phase("a", 10), Phase("a", 10)))


def test_overlay_footprint_must_fit_phase():
    with pytest.raises(ConfigurationError):
        Phase("p", 20, overlays=(Overlay("step", peak=1.0, start=15,
                                         length=10),))
    with pytest.raises(ConfigurationError):
        Phase("p", 20, overlays=(Overlay("step", peak=1.0, start=0,
                                         length=15, spread=10),))


def test_truth_window_must_fit_phase():
    with pytest.raises(ConfigurationError):
        Phase("p", 20, truth=(TruthWindow(start=15, length=10),))
    with pytest.raises(ConfigurationError):
        Phase("p", 20, truth=(TruthWindow(start=0, length=15, spread=10),))


def test_overlay_spread_requires_explicit_length():
    with pytest.raises(ConfigurationError):
        Overlay("step", peak=1.0, spread=3)


def test_unknown_overlay_kind_rejected():
    with pytest.raises(ConfigurationError):
        Overlay("teleport", peak=1.0)


def test_threshold_spec_validation():
    with pytest.raises(ConfigurationError):
        ThresholdSpec("percentile", 1.0)
    with pytest.raises(ConfigurationError):
        ThresholdSpec("selectivity", 0.0)


def test_scaled_preserves_validity_and_identity():
    for name in CANNED:
        tl = canned_timeline(name)
        assert tl.scaled(1.0, 1.0) == tl
        small = tl.scaled(fleet=0.1, horizon=0.25)
        assert small.tasks >= 4
        assert small.horizon == sum(ph.duration for ph in small.phases)
        # Construction re-validates every overlay/window footprint.
        assert Timeline.from_dict(small.to_dict()) == small


def test_onset_offset_covers_spread_exactly():
    assert Timeline.onset_offset(60, 0, 10) == 0
    assert Timeline.onset_offset(60, 9, 10) == 60
    assert Timeline.onset_offset(0, 5, 10) == 0
    assert Timeline.onset_offset(60, 0, 1) == 0


def test_covered_bounds():
    tl = _mini(tasks=10)
    assert tl.covered(1.0) == 10
    assert tl.covered(0.05) == 1
    assert tl.covered(0.5) == 5
