"""Tests for the simulated clock."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.clock import SimulationClock


def test_starts_at_zero_by_default():
    assert SimulationClock().now == 0.0


def test_custom_start():
    assert SimulationClock(start=5.0).now == 5.0


def test_advances_forward():
    clock = SimulationClock()
    clock.advance_to(3.0)
    clock.advance_to(3.0)  # staying put is allowed
    assert clock.now == 3.0


def test_rejects_backwards():
    clock = SimulationClock(start=10.0)
    with pytest.raises(SimulationError):
        clock.advance_to(9.999)
