"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.engine import SimulationEngine


def test_schedule_and_run_until():
    engine = SimulationEngine()
    fired = []
    engine.schedule(5.0, lambda: fired.append(engine.now))
    engine.schedule(15.0, lambda: fired.append(engine.now))
    engine.run_until(10.0)
    assert fired == [5.0]
    assert engine.now == 10.0
    engine.run_until(20.0)
    assert fired == [5.0, 15.0]


def test_schedule_at_absolute_time():
    engine = SimulationEngine(start_time=100.0)
    fired = []
    engine.schedule_at(150.0, lambda: fired.append(engine.now))
    engine.run_until(200.0)
    assert fired == [150.0]


def test_schedule_in_past_rejected():
    engine = SimulationEngine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.schedule_at(5.0, lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(-1.0, lambda: None)


def test_run_until_past_rejected():
    engine = SimulationEngine(start_time=10.0)
    with pytest.raises(SimulationError):
        engine.run_until(5.0)


def test_events_scheduled_during_run_execute():
    engine = SimulationEngine()
    fired = []

    def first():
        engine.schedule(1.0, lambda: fired.append("nested"))

    engine.schedule(1.0, first)
    engine.run_until(3.0)
    assert fired == ["nested"]


def test_periodic_process():
    engine = SimulationEngine()
    ticks = []
    engine.schedule_every(10.0, lambda: ticks.append(engine.now))
    engine.run_until(35.0)
    assert ticks == [10.0, 20.0, 30.0]


def test_periodic_with_first_delay():
    engine = SimulationEngine()
    ticks = []
    engine.schedule_every(10.0, lambda: ticks.append(engine.now),
                          first_delay=0.0)
    engine.run_until(25.0)
    assert ticks == [0.0, 10.0, 20.0]


def test_periodic_stops_on_stop_iteration():
    engine = SimulationEngine()
    ticks = []

    def action():
        ticks.append(engine.now)
        if len(ticks) == 3:
            raise StopIteration

    engine.schedule_every(1.0, action)
    engine.run_until(100.0)
    assert len(ticks) == 3


def test_periodic_rejects_bad_period():
    with pytest.raises(SimulationError):
        SimulationEngine().schedule_every(0.0, lambda: None)


def test_run_drains_queue():
    engine = SimulationEngine()
    fired = []
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda t=t: fired.append(t))
    executed = engine.run()
    assert executed == 3
    assert fired == [1.0, 2.0, 3.0]
    assert engine.events_processed == 3
    assert engine.pending_events == 0


def test_run_max_events():
    engine = SimulationEngine()
    for t in (1.0, 2.0, 3.0):
        engine.schedule(t, lambda: None)
    assert engine.run(max_events=2) == 2
    assert engine.pending_events == 1


def test_cancel_via_handle():
    engine = SimulationEngine()
    fired = []
    handle = engine.schedule(1.0, lambda: fired.append("x"))
    handle.cancel()
    engine.run_until(5.0)
    assert fired == []
