"""Stress and ordering tests for the discrete-event engine."""

from __future__ import annotations

import numpy as np

from repro.simulation.engine import SimulationEngine


def test_hundred_thousand_events_in_order():
    engine = SimulationEngine()
    rng = np.random.default_rng(0)
    times = rng.uniform(0.0, 1000.0, 100_000)
    seen: list[float] = []
    for t in times:
        engine.schedule_at(float(t), lambda t=float(t): seen.append(t))
    engine.run_until(1000.0)
    assert len(seen) == 100_000
    assert seen == sorted(seen)
    assert engine.events_processed == 100_000


def test_cancel_storm():
    """Cancelling most of a large queue leaves exactly the survivors."""
    engine = SimulationEngine()
    fired: list[int] = []
    handles = [engine.schedule_at(float(i), lambda i=i: fired.append(i))
               for i in range(10_000)]
    for i, handle in enumerate(handles):
        if i % 10 != 0:
            handle.cancel()
    engine.run_until(10_000.0)
    assert fired == list(range(0, 10_000, 10))


def test_reschedule_inside_callback_preserves_order():
    """Self-rescheduling processes interleave deterministically."""
    engine = SimulationEngine()
    log: list[tuple[str, float]] = []

    def process(name: str, period: float):
        def tick():
            log.append((name, engine.now))
            if engine.now < 30.0:
                engine.schedule(period, tick)
        engine.schedule(period, tick)

    process("a", 3.0)
    process("b", 5.0)
    engine.run_until(16.0)
    # At the t=15 tie, "b" fires first: its event was pushed at t=10,
    # before "a"'s was pushed at t=12 (FIFO among simultaneous events).
    assert log == [("a", 3.0), ("b", 5.0), ("a", 6.0), ("a", 9.0),
                   ("b", 10.0), ("a", 12.0), ("b", 15.0), ("a", 15.0)]
