"""Tests for the event queue."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import EventQueue


def test_pop_in_time_order():
    queue = EventQueue()
    order = []
    queue.push(3.0, lambda: order.append("c"))
    queue.push(1.0, lambda: order.append("a"))
    queue.push(2.0, lambda: order.append("b"))
    while queue:
        queue.pop().action()
    assert order == ["a", "b", "c"]


def test_fifo_for_simultaneous_events():
    queue = EventQueue()
    order = []
    for name in "abcde":
        queue.push(1.0, lambda n=name: order.append(n))
    while queue:
        queue.pop().action()
    assert order == list("abcde")


def test_cancelled_events_skipped():
    queue = EventQueue()
    ran = []
    handle = queue.push(1.0, lambda: ran.append("cancelled"))
    queue.push(2.0, lambda: ran.append("kept"))
    handle.cancel()
    assert len(queue) == 1
    queue.pop().action()
    assert ran == ["kept"]
    assert not queue


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(5.0, lambda: None)
    first.cancel()
    assert queue.peek_time() == 5.0


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-1.0, lambda: None)
