"""Tests for seeded per-entity random streams."""

from __future__ import annotations

import numpy as np

from repro.simulation.randomness import RandomStreams


def test_same_key_same_stream():
    streams = RandomStreams(42)
    a = streams.stream("vm-traffic", 3).normal(size=10)
    b = streams.stream("vm-traffic", 3).normal(size=10)
    assert np.array_equal(a, b)


def test_different_indices_differ():
    streams = RandomStreams(42)
    a = streams.stream("vm-traffic", 0).normal(size=10)
    b = streams.stream("vm-traffic", 1).normal(size=10)
    assert not np.array_equal(a, b)


def test_different_namespaces_differ():
    streams = RandomStreams(42)
    a = streams.stream("vm-traffic", 0).normal(size=10)
    b = streams.stream("sys-metrics", 0).normal(size=10)
    assert not np.array_equal(a, b)


def test_different_master_seeds_differ():
    a = RandomStreams(1).stream("x", 0).normal(size=10)
    b = RandomStreams(2).stream("x", 0).normal(size=10)
    assert not np.array_equal(a, b)


def test_master_seed_property():
    assert RandomStreams(7).master_seed == 7
