"""Telemetry counters must agree with chaos-injected fault accounting.

The fault hook knows exactly what it injected; the telemetry counters and
the decision trace observe the same events from the other side of the
seam. Any disagreement means one of the two books is lying.
"""

from __future__ import annotations

import asyncio

from repro.config import RuntimeConfig
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.testkit.faults import FaultPlan, FaultSpec, PlanFaultHook


def _family_total(snapshot, name):
    return sum(s["value"] for s in snapshot[name]["series"])


def run_chaos(batches: int = 6, batch_size: int = 8, seed: int = 7):
    hook = PlanFaultHook(FaultPlan(seed, FaultSpec(force_shed_rate=1.0)))

    async def runner():
        server = RuntimeServer(RuntimeConfig(port=0, shards=2),
                               fault_hook=hook)
        await server.start()
        client = AsyncRuntimeClient(port=server.tcp_port)
        try:
            hook.armed = False          # registration must not be shed
            await client.register_task("t", 100.0)
            hook.armed = True
            replies = []
            for b in range(batches):
                replies.append(await client.offer_batch(
                    [["t", b * batch_size + i, 1.0]
                     for i in range(batch_size)]))
            hook.armed = False
            snapshot = server.registry.snapshot()
            events = server.trace.drain()
            return replies, snapshot, events
        finally:
            await client.close()
            await server.shutdown()

    return hook, *asyncio.run(runner())


class TestCounterAgreement:
    def test_shed_counter_matches_injection_log(self):
        batches, batch_size = 6, 8
        hook, replies, snapshot, events = run_chaos(batches, batch_size)
        # The hook counts batches; the telemetry counter counts updates.
        assert hook.injected["batches_shed"] == batches
        assert _family_total(snapshot, "volley_updates_shed_total") == \
            batches * batch_size
        assert _family_total(snapshot, "volley_updates_offered_total") == 0
        # Client-visible accounting agrees update for update.
        assert sum(r["shed"] for r in replies) == batches * batch_size
        assert all(r["backpressure"] for r in replies)

    def test_trace_records_every_shed_event(self):
        batches, batch_size = 5, 4
        hook, replies, snapshot, events = run_chaos(batches, batch_size)
        shed_events = [e for e in events if e["kind"] == "shed"]
        assert len(shed_events) == batches
        assert sum(e["count"] for e in shed_events) == batches * batch_size
        assert all(e["accepted"] == 0 for e in shed_events)
