"""Tests for Prometheus text rendering and the telemetry HTTP endpoint."""

from __future__ import annotations

import asyncio
import json

from repro.config import RuntimeConfig
from repro.runtime.client import AsyncRuntimeClient
from repro.runtime.server import RuntimeServer
from repro.telemetry.exposition import (CONTENT_TYPE_PROMETHEUS,
                                        TelemetryHTTPServer,
                                        render_prometheus)
from repro.telemetry.registry import MetricsRegistry


class TestRenderPrometheus:
    def test_golden_render(self):
        registry = MetricsRegistry()
        registry.counter("volley_frames_total", "Frames decoded").inc(7)
        depth = registry.gauge("volley_queue_depth", "Queue depth",
                               labels=("shard",))
        depth.labels(0).set(3.0)
        depth.labels(1).set(0.0)
        lat = registry.histogram("volley_offer_latency_seconds",
                                 "Offer handling latency")
        for v in (0.001, 0.002, 0.004):
            lat.observe(v)
        text = render_prometheus(registry.snapshot())
        lines = text.splitlines()
        assert "# HELP volley_frames_total Frames decoded" in lines
        assert "# TYPE volley_frames_total counter" in lines
        assert "volley_frames_total 7" in lines
        assert "# TYPE volley_queue_depth gauge" in lines
        assert 'volley_queue_depth{shard="0"} 3' in lines
        assert 'volley_queue_depth{shard="1"} 0' in lines
        # Histograms render as summaries: quantile series + _sum/_count.
        assert "# TYPE volley_offer_latency_seconds summary" in lines
        assert any(line.startswith(
            'volley_offer_latency_seconds{quantile="0.5"} ')
            for line in lines)
        assert "volley_offer_latency_seconds_count 3" in lines
        assert any(line.startswith("volley_offer_latency_seconds_sum ")
                   for line in lines)
        assert text.endswith("\n")

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("odd_total", "odd", labels=("name",))
        family.labels('he said "hi"\nand \\ left').inc()
        text = render_prometheus(registry.snapshot())
        assert (r'odd_total{name="he said \"hi\"\nand \\ left"} 1'
                in text.splitlines())

    def test_special_float_values(self):
        snapshot = {
            "weird": {"kind": "gauge", "help": "", "label_names": [],
                      "series": [{"labels": [], "value": float("inf")}]},
        }
        assert "weird +Inf" in render_prometheus(snapshot)


async def _http_get(port: int, target: str,
                    method: str = "GET") -> tuple[int, dict[str, str], str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"{method} {target} HTTP/1.0\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    status_line, *header_lines = head.split("\r\n")
    status = int(status_line.split(" ")[1])
    headers = {}
    for line in header_lines:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


class TestTelemetryHTTPServer:
    def test_routes_and_errors(self):
        async def scenario():
            server = TelemetryHTTPServer({
                "/ok": lambda params: (200, "text/plain",
                                       f"since={params.get('since', '')}\n"),
                "/boom": lambda params: 1 / 0,
            })
            await server.start()
            try:
                ok = await _http_get(server.port, "/ok?since=9")
                missing = await _http_get(server.port, "/nope")
                posted = await _http_get(server.port, "/ok", method="POST")
                broken = await _http_get(server.port, "/boom")
                head = await _http_get(server.port, "/ok", method="HEAD")
                return ok, missing, posted, broken, head
            finally:
                await server.stop()

        ok, missing, posted, broken, head = asyncio.run(scenario())
        assert ok == (200, ok[1], "since=9\n")
        assert ok[1]["content-length"] == str(len("since=9\n"))
        assert ok[1]["connection"] == "close"
        assert missing[0] == 404
        assert posted[0] == 405
        assert broken[0] == 500 and "error" in json.loads(broken[2])
        assert head[0] == 200 and head[2] == ""  # HEAD: headers only


class TestRuntimeHTTPEndpoint:
    @staticmethod
    def _run(scenario):
        async def runner():
            server = RuntimeServer(RuntimeConfig(port=0, shards=2,
                                                 http_port=0))
            await server.start()
            client = AsyncRuntimeClient(port=server.tcp_port)
            try:
                return await scenario(server, client)
            finally:
                await client.close()
                await server.shutdown()

        return asyncio.run(runner())

    def test_metrics_endpoint_serves_prometheus(self):
        async def scenario(server, client):
            await client.register_task("web.cpu", 80.0)
            await client.offer_batch([["web.cpu", t, 10.0]
                                      for t in range(8)])
            for worker in server._workers:
                await worker.drain()
            return await _http_get(server.http_port, "/metrics")

        status, headers, body = self._run(scenario)
        assert status == 200
        assert headers["content-type"] == CONTENT_TYPE_PROMETHEUS
        lines = body.splitlines()
        assert any(line.startswith("volley_frames_total ")
                   and float(line.split()[-1]) > 0 for line in lines)
        assert 'volley_updates_offered_total{shard=' in body
        assert any(line.startswith("volley_tasks ")
                   and float(line.split()[-1]) == 1.0 for line in lines)

    def test_healthz_reports_liveness(self):
        async def scenario(server, client):
            healthy = await _http_get(server.http_port, "/healthz")
            server._shutdown_started = True
            draining = await _http_get(server.http_port, "/healthz")
            server._shutdown_started = False
            return healthy, draining

        healthy, draining = self._run(scenario)
        assert healthy[0] == 200
        payload = json.loads(healthy[2])
        assert payload["ok"] is True and payload["shards"] == 2
        assert draining[0] == 503 and json.loads(draining[2])["ok"] is False

    def test_trace_endpoint_serves_jsonl_with_since(self):
        async def scenario(server, client):
            await client.register_task("a", 5.0)
            await client.register_task("b", 5.0)
            full = await _http_get(server.http_port, "/trace")
            events = [json.loads(line)
                      for line in full[2].splitlines()]
            later = await _http_get(
                server.http_port, f"/trace?since={events[-1]['seq']}")
            bad = await _http_get(server.http_port, "/trace?since=zzz")
            return full, events, later, bad

        full, events, later, bad = self._run(scenario)
        assert full[0] == 200
        assert full[1]["content-type"] == "application/x-ndjson"
        kinds = [e["kind"] for e in events]
        assert kinds.count("task_registered") == 2
        tail = [json.loads(line) for line in later[2].splitlines()]
        assert [e["seq"] for e in tail] == [events[-1]["seq"]]
        assert bad[0] == 400
