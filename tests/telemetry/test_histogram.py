"""Property tests for the log-bucketed quantile sketch.

The sketch's contract is a *relative* error bound: every reported
quantile is within ``alpha * |true value|`` of the exact sample quantile
(lower-rank convention) for magnitudes at least ``min_value``. Hypothesis
drives arbitrary bounded streams through that guarantee, plus the monoid
laws that make per-shard sketches mergeable.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.telemetry.histogram import LogHistogram

bounded = st.floats(min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False)
streams = st.lists(bounded, min_size=1, max_size=300)
QS = (0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)


def exact_quantile(values: list[float], q: float) -> float:
    """Lower-rank sample quantile (the sketch's stated convention)."""
    ordered = sorted(values)
    return ordered[int(q * (len(ordered) - 1))]


def fill(values: list[float], alpha: float = 0.01) -> LogHistogram:
    sketch = LogHistogram(relative_error=alpha)
    for v in values:
        sketch.record(v)
    return sketch


class TestRelativeErrorBound:
    @settings(max_examples=200, deadline=None)
    @given(streams)
    def test_quantiles_within_alpha(self, values):
        alpha = 0.01
        sketch = fill(values, alpha)
        for q in QS:
            exact = exact_quantile(values, q)
            est = sketch.quantile(q)
            if q in (0.0, 1.0):
                # Extremes are exact order statistics, not bucket
                # midpoints — zero error regardless of magnitude.
                assert est == exact, f"q={q}: {est} vs exact {exact}"
            elif abs(exact) > sketch.min_value:
                bound = alpha * abs(exact) * (1 + 1e-9) + 1e-12
                assert abs(est - exact) <= bound, \
                    f"q={q}: {est} vs exact {exact}"
            else:
                # Sub-min_value magnitudes collapse into the zero bucket.
                assert est == 0.0

    @settings(max_examples=50, deadline=None)
    @given(streams, st.sampled_from([0.001, 0.05, 0.2]))
    def test_bound_scales_with_alpha(self, values, alpha):
        sketch = fill(values, alpha)
        for q in (0.5, 0.99):
            exact = exact_quantile(values, q)
            if abs(exact) > sketch.min_value:
                est = sketch.quantile(q)
                assert abs(est - exact) <= \
                    alpha * abs(exact) * (1 + 1e-9) + 1e-12

    def test_exact_min_max_mean(self):
        values = [3.0, -7.5, 0.25, 100.0]
        sketch = fill(values)
        assert sketch.min == -7.5
        assert sketch.max == 100.0
        assert sketch.mean == pytest.approx(sum(values) / len(values))
        assert sketch.count == 4

    def test_extreme_quantiles_are_exact(self):
        # Regression: q=0.0 / q=1.0 used to return bucket midpoints,
        # which are only within alpha of the true extremes. The sketch
        # tracks min/max exactly, so the extremes must be exact too.
        values = [3.0, -7.5, 0.25, 100.0]
        sketch = fill(values)
        assert sketch.quantile(0.0) == -7.5
        assert sketch.quantile(1.0) == 100.0
        # Interior quantiles still answer via bucket midpoints
        # (lower-rank convention: rank 1 of the sorted sample).
        assert sketch.quantile(0.5) == pytest.approx(0.25, rel=0.01)

    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_extremes_match_min_max_properties(self, values):
        sketch = fill(values)
        assert sketch.quantile(0.0) == sketch.min == min(values)
        assert sketch.quantile(1.0) == sketch.max == max(values)


class TestTailCount:
    @settings(max_examples=150, deadline=None)
    @given(streams, bounded)
    def test_tail_count_matches_reference(self, values, threshold):
        # The sketch counts a value toward the tail iff its *reported*
        # magnitude (bucket midpoint; 0.0 for the zero bucket) exceeds
        # the threshold — bucket-resolution exactness.
        sketch = fill(values)
        expected = 0
        for v in values:
            if abs(v) <= sketch.min_value:
                reported = 0.0
            else:
                key = sketch._index(abs(v))
                reported = math.copysign(sketch._bucket_value(key), v)
            if reported > threshold:
                expected += 1
        assert sketch.tail_count(threshold) == expected

    @settings(max_examples=100, deadline=None)
    @given(streams, streams, bounded)
    def test_tail_counts_add_across_sketches(self, a, b, threshold):
        # Integer tail counts are a monoid homomorphism: summing two
        # sketches' tails equals the merged sketch's tail. This is what
        # lets the quantile substrate query its rotating pair without
        # materialising a merge.
        merged = fill(a)
        merged.merge(fill(b))
        assert (fill(a).tail_count(threshold) + fill(b).tail_count(threshold)
                == merged.tail_count(threshold))

    def test_tail_count_empty(self):
        assert LogHistogram().tail_count(0.0) == 0


class TestMergeMonoid:
    @settings(max_examples=100, deadline=None)
    @given(streams, streams)
    def test_merge_commutes(self, a, b):
        ab = fill(a)
        ab.merge(fill(b))
        ba = fill(b)
        ba.merge(fill(a))
        assert ab.count == ba.count
        assert ab.total == pytest.approx(ba.total)
        for q in QS:
            assert ab.quantile(q) == ba.quantile(q)

    @settings(max_examples=100, deadline=None)
    @given(streams, streams, streams)
    def test_merge_associates(self, a, b, c):
        left = fill(a)
        bc = fill(b)
        bc.merge(fill(c))
        left_first = fill(a)
        left_first.merge(fill(b))
        left_first.merge(fill(c))
        left.merge(bc)
        assert left.count == left_first.count
        for q in QS:
            assert left.quantile(q) == left_first.quantile(q)

    @settings(max_examples=100, deadline=None)
    @given(streams, streams)
    def test_merge_equals_concatenation(self, a, b):
        merged = fill(a)
        merged.merge(fill(b))
        whole = fill(a + b)
        assert merged.count == whole.count
        for q in QS:
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_rejects_mismatched_alpha(self):
        with pytest.raises(ConfigurationError, match="relative errors"):
            LogHistogram(relative_error=0.01).merge(
                LogHistogram(relative_error=0.02))


class TestSerialisation:
    @settings(max_examples=100, deadline=None)
    @given(streams)
    def test_roundtrip_preserves_queries(self, values):
        sketch = fill(values)
        clone = LogHistogram.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        assert clone.min == sketch.min and clone.max == sketch.max
        for q in QS:
            assert clone.quantile(q) == sketch.quantile(q)

    def test_roundtrip_is_json_able(self):
        import json
        sketch = fill([1.0, -2.0, 0.0, 1e-12, 250.75])
        entry = json.loads(json.dumps(sketch.to_dict()))
        assert LogHistogram.from_dict(entry).quantile(0.5) == \
            sketch.quantile(0.5)


class TestValidation:
    def test_bad_relative_error(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ConfigurationError):
                LogHistogram(relative_error=alpha)

    def test_bad_min_value(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(min_value=0.0)

    def test_bad_quantile(self):
        sketch = fill([1.0])
        for q in (-0.1, 1.1, math.nan):
            with pytest.raises(ValueError):
                sketch.quantile(q)

    def test_bad_record_count(self):
        with pytest.raises(ValueError):
            LogHistogram().record(1.0, count=0)

    def test_empty_sketch_answers_zero(self):
        sketch = LogHistogram()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.min == 0.0 and sketch.max == 0.0 and sketch.mean == 0.0
