"""Tests for the metrics registry: instruments, families, the null twin,
and the sampler fast-path instrumentation seam."""

from __future__ import annotations

import pytest

from repro.core import adaptation
from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.telemetry.registry import (NULL_REGISTRY, MetricsRegistry,
                                      NullRegistry, instrument_samplers)


class TestInstruments:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        hits = registry.counter("hits_total", "requests")
        hits.inc()
        hits.inc(2.5)
        depth = registry.gauge("depth", "queue depth")
        depth.set(7.0)
        depth.inc()
        depth.dec(3.0)
        assert hits.get() == 3.5
        assert depth.get() == 5.0

    def test_callback_instruments_read_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"n": 0}
        registry.counter("cb_total", "callback", fn=lambda: state["n"])
        state["n"] = 42
        snap = registry.snapshot()
        assert snap["cb_total"]["series"][0]["value"] == 42.0

    def test_histogram_instrument_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("latency_seconds", "latency")
        for v in (0.001, 0.002, 0.004, 0.1):
            hist.observe(v)
        value = hist.get()
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(0.107)
        assert value["min"] == 0.001 and value["max"] == 0.1
        assert set(value["quantiles"]) == {"0.5", "0.9", "0.99"}

    def test_histogram_rejects_callbacks(self):
        registry = MetricsRegistry()
        family = registry.histogram("h", "sketch", labels=("shard",))
        with pytest.raises(ConfigurationError, match="callback"):
            family.labels("0", fn=lambda: 1.0)


class TestFamilies:
    def test_labelled_series_are_cached(self):
        registry = MetricsRegistry()
        family = registry.counter("per_shard_total", "x", labels=("shard",))
        a = family.labels(0)
        a.inc(5)
        assert family.labels(0) is a
        assert family.labels(1) is not a
        snap = registry.snapshot()["per_shard_total"]
        assert snap["label_names"] == ["shard"]
        assert {tuple(s["labels"]): s["value"]
                for s in snap["series"]} == {("0",): 5.0, ("1",): 0.0}

    def test_label_arity_is_checked(self):
        family = MetricsRegistry().counter("x_total", "x",
                                           labels=("a", "b"))
        with pytest.raises(ConfigurationError, match="label"):
            family.labels("only-one")

    def test_registration_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("same_total", "x")
        first.inc()
        again = registry.counter("same_total", "x")
        assert again.get() == 1.0

    def test_kind_conflict_is_rejected(self):
        registry = MetricsRegistry()
        registry.counter("thing", "x")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("thing", "x")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.counter("thing", "x", labels=("shard",))

    def test_snapshot_is_json_able(self):
        import json
        registry = MetricsRegistry()
        registry.counter("a_total", "a").inc()
        registry.histogram("b_seconds", "b").observe(0.5)
        assert json.loads(json.dumps(registry.snapshot()))


class TestNullRegistry:
    def test_all_factories_return_inert_singleton(self):
        null = NullRegistry()
        c = null.counter("x_total")
        g = null.gauge("y")
        h = null.histogram("z_seconds")
        assert c is g is h
        c.inc()
        g.set(5.0)
        h.observe(1.0)
        assert c.get() == 0.0
        assert c.labels("anything") is c
        assert null.snapshot() == {}
        assert list(null.families()) == []

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled
        assert not NULL_REGISTRY.enabled


class TestInstrumentSamplers:
    def setup_method(self):
        # Earlier tests (e.g. in-process runtime servers) may have left a
        # live metrics object with accumulated counts; restoring the null
        # object makes the next live instrumentation start from zero.
        instrument_samplers(NULL_REGISTRY)

    def teardown_method(self):
        instrument_samplers(NULL_REGISTRY)

    @staticmethod
    def _drive(n: int = 200) -> None:
        task = TaskSpec(threshold=100.0, error_allowance=0.05,
                        max_interval=10)
        sampler = ViolationLikelihoodSampler(task, AdaptationConfig())
        for t in range(n):
            sampler.observe_fast(10.0 if t != 150 else 200.0, t)

    def test_live_registry_counts_fast_path(self):
        registry = MetricsRegistry()
        instrument_samplers(registry)
        self._drive()
        snap = registry.snapshot()
        observed = snap["volley_sampler_observations_total"]["series"][0]
        assert observed["value"] == 200.0
        assert snap["volley_sampler_violations_total"]["series"][0][
            "value"] >= 1.0
        assert snap["volley_sampler_grow_events_total"]["series"][0][
            "value"] > 0.0

    def test_null_registry_restores_null_object(self):
        instrument_samplers(MetricsRegistry())
        instrument_samplers(NULL_REGISTRY)
        assert adaptation._SAMPLER_METRICS is \
            adaptation._NULL_SAMPLER_METRICS
        self._drive(50)  # must not blow up and must count nothing

    def test_reinstrumentation_reuses_live_counters(self):
        registry = MetricsRegistry()
        instrument_samplers(registry)
        self._drive(100)
        instrument_samplers(registry)  # e.g. a second server in-process
        self._drive(100)
        observed = registry.snapshot()[
            "volley_sampler_observations_total"]["series"][0]["value"]
        assert observed == 200.0
