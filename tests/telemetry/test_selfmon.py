"""Tests for the self-monitoring loop (Volley watching Volley)."""

from __future__ import annotations

import asyncio

from repro.config import RuntimeConfig
from repro.runtime.server import RuntimeServer
from repro.telemetry.selfmon import SELF_SHARD, SelfMonitor
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.trace import DecisionTrace


def with_server(scenario, **config_kwargs):
    config_kwargs.setdefault("port", 0)
    config_kwargs.setdefault("shards", 2)

    async def runner():
        server = RuntimeServer(RuntimeConfig(**config_kwargs))
        await server.start()
        try:
            return await scenario(server)
        finally:
            await server.shutdown()

    return asyncio.run(runner())


class TestProbeRegistration:
    def test_health_gauges_become_volley_tasks(self):
        async def scenario(server):
            monitor = SelfMonitor(server)
            return monitor.task_names

        names = with_server(scenario)
        assert names == ["volley.shard0.queue_depth",
                         "volley.shard1.queue_depth",
                         "volley.shed_rate"]

    def test_checkpoint_probe_needs_checkpointing(self, tmp_path):
        async def scenario(server):
            return SelfMonitor(server).task_names

        names = with_server(scenario,
                            checkpoint_path=tmp_path / "ckpt.json")
        assert "volley.checkpoint_age" in names

    def test_queue_threshold_tracks_capacity(self):
        async def scenario(server):
            monitor = SelfMonitor(server, saturation_fraction=0.5)
            name = "volley.shard0.queue_depth"
            return monitor.service._tasks[name].task.threshold, \
                server._workers[0].capacity

        threshold, capacity = with_server(scenario, queue_depth=64)
        assert threshold == 0.5 * capacity


class TestLikelihoodScheduling:
    def test_healthy_runtime_saves_probe_collections(self):
        async def scenario(server):
            registry = MetricsRegistry()
            monitor = SelfMonitor(server, registry=registry)
            for _ in range(500):
                monitor.poll()
            return registry, monitor.stats()

        registry, stats = with_server(scenario)
        snap = registry.snapshot()
        polls = snap["volley_selfmon_polls_total"]["series"][0]["value"]
        samples = snap["volley_selfmon_samples_total"]["series"][0]["value"]
        assert polls == 500 * 3  # 2 shard probes + shed rate, every period
        # A healthy runtime stretches intervals: most polls collect nothing.
        assert samples < 0.5 * polls
        assert all(entry["interval"] > 1
                   for entry in stats["tasks"].values())

    def test_breach_alerts_and_traces(self):
        async def scenario(server):
            registry = MetricsRegistry()
            trace = DecisionTrace(capacity=256)
            monitor = SelfMonitor(server, registry=registry,
                                  shed_rate_threshold=1.0,
                                  max_interval=5)
            monitor._trace = trace
            for _ in range(20):
                monitor.poll()          # healthy: intervals stretch
            assert not monitor.alerts
            worker = server._workers[0]
            for _ in range(10):
                worker.shed += 500      # sustained shedding storm
                monitor.poll()
            return monitor.alerts, trace.drain(), registry.snapshot()

        alerts, events, snap = with_server(scenario)
        assert alerts and alerts[0][0] == "volley.shed_rate"
        assert alerts[0][1].value > 1.0
        selfmon_events = [e for e in events if e["kind"] == "selfmon_alert"]
        assert selfmon_events
        assert selfmon_events[0]["task"] == "volley.shed_rate"
        assert selfmon_events[0]["shard"] == SELF_SHARD
        series = snap["volley_selfmon_alerts_total"]["series"]
        by_task = {tuple(s["labels"]): s["value"] for s in series}
        assert by_task[("volley.shed_rate",)] >= 1.0

    def test_server_start_wires_selfmon_loop(self):
        async def scenario(server):
            assert server.selfmon is not None
            # Let the background loop run a few poll periods.
            await asyncio.sleep(0.12)
            return server.selfmon.stats()

        stats = with_server(scenario, selfmon_interval=0.01)
        assert stats["steps"] >= 3
        assert set(stats["tasks"]) == {"volley.shard0.queue_depth",
                                       "volley.shard1.queue_depth",
                                       "volley.shed_rate"}
