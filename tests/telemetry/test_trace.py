"""Tests for the decision-trace ring buffer and its emission seams."""

from __future__ import annotations

import json

import pytest

from repro.core.adaptation import CoordinationStats
from repro.core.coordination import AdaptiveAllocation
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService
from repro.telemetry.trace import (NULL_TRACE, DecisionTrace, NullTrace,
                                   TRACE_EVENT_KINDS)


class TestRingBuffer:
    def test_emit_assigns_monotonic_seq(self):
        trace = DecisionTrace(capacity=8)
        seqs = [trace.emit("violation", task="t", step=i) for i in range(3)]
        assert seqs == [0, 1, 2]
        assert trace.next_seq == 3
        events = trace.drain()
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert all(e["kind"] == "violation" for e in events)
        assert events[0]["task"] == "t" and events[0]["step"] == 0
        assert events[0]["ts_monotonic"] <= events[-1]["ts_monotonic"]

    def test_wraparound_evicts_oldest_and_counts_drops(self):
        trace = DecisionTrace(capacity=4)
        for i in range(10):
            trace.emit("shed", count=i)
        assert len(trace) == 4
        assert trace.dropped == 6
        events = trace.drain()
        assert [e["seq"] for e in events] == [6, 7, 8, 9]

    def test_drain_since_and_limit(self):
        trace = DecisionTrace(capacity=16)
        for i in range(6):
            trace.emit("checkpoint_written", n=i)
        assert [e["seq"] for e in trace.drain(since=3)] == [3, 4, 5]
        assert [e["seq"] for e in trace.drain(since=2, limit=2)] == [2, 3]
        assert trace.drain(since=99) == []
        with pytest.raises(ValueError):
            trace.drain(since=-1)

    def test_drain_is_non_destructive(self):
        trace = DecisionTrace(capacity=4)
        trace.emit("restore")
        assert len(trace.drain()) == 1
        assert len(trace.drain()) == 1

    def test_dump_and_to_jsonl(self, tmp_path):
        trace = DecisionTrace(capacity=8)
        trace.emit("violation", task="a", value=5.0)
        trace.emit("shed", shard=2, count=7)
        path = trace.dump_jsonl(tmp_path / "sub" / "trace.jsonl")
        lines = path.read_text().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == \
            ["violation", "shed"]
        assert trace.to_jsonl() == path.read_text()
        assert json.loads(lines[1])["shard"] == 2

    def test_capacity_validation(self):
        with pytest.raises(ConfigurationError):
            DecisionTrace(capacity=0)

    def test_null_trace_is_inert(self):
        null = NullTrace()
        assert null.emit("violation", task="x", step=1) == 0
        assert null.drain() == []
        assert null.to_jsonl() == ""
        assert len(null) == 0
        assert not NULL_TRACE.enabled
        assert DecisionTrace().enabled


class TestServiceEmission:
    @staticmethod
    def _service(trace) -> MonitoringService:
        service = MonitoringService()
        service.add_task("t", TaskSpec(threshold=100.0,
                                       error_allowance=0.05,
                                       max_interval=10))
        service.attach_telemetry(trace, shard=3)
        return service

    @staticmethod
    def _drive(offer) -> None:
        for t in range(40):
            offer("t", 10.0, t)         # quiet: interval grows
        for t in range(40, 60):
            offer("t", 500.0, t)        # a due step must see the burst

    @pytest.mark.parametrize("surface", ["offer", "offer_fast"])
    def test_adaptation_and_violation_events(self, surface):
        trace = DecisionTrace(capacity=256)
        service = self._service(trace)
        self._drive(getattr(service, surface))
        kinds = [e["kind"] for e in trace.drain()]
        assert "interval_adapted" in kinds
        assert "violation" in kinds
        violation = next(e for e in trace.drain()
                         if e["kind"] == "violation")
        assert violation["task"] == "t" and violation["shard"] == 3
        assert violation["value"] == 500.0
        assert violation["threshold"] == 100.0

    def test_offer_surfaces_emit_identical_streams(self):
        slow, fast = DecisionTrace(1024), DecisionTrace(1024)
        service_slow = self._service(slow)
        service_fast = self._service(fast)
        self._drive(service_slow.offer)
        self._drive(service_fast.offer_fast)

        def strip(events):
            return [{k: v for k, v in e.items() if k != "ts_monotonic"}
                    for e in events]

        assert strip(slow.drain()) == strip(fast.drain())

    def test_disabled_trace_detaches(self):
        service = self._service(NULL_TRACE)
        assert service._trace is None  # one is-None check on the hot path
        self._drive(service.offer_fast)


class TestCoordinationEmission:
    def test_adaptive_reallocation_emits_event(self):
        trace = DecisionTrace(capacity=16)
        policy = AdaptiveAllocation()
        policy.attach_trace(trace, task="cpu")
        current = policy.initial(2, 0.05)
        reports = [CoordinationStats(avg_cost_reduction=0.5,
                                     avg_error_needed=0.04,
                                     observations=10),
                   CoordinationStats(avg_cost_reduction=0.01,
                                     avg_error_needed=0.04,
                                     observations=10)]
        update = policy.reallocate(current, reports, 0.05)
        assert update.reallocated
        events = trace.drain()
        assert len(events) == 1
        event = events[0]
        assert event["kind"] == "allowance_reallocated"
        assert event["task"] == "cpu"
        assert event["allocations"] == list(update.allocations)
        assert event["total_error"] == 0.05

    def test_throttled_round_stays_silent(self):
        trace = DecisionTrace(capacity=16)
        policy = AdaptiveAllocation()
        policy.attach_trace(trace)
        current = policy.initial(2, 0.05)
        same = [CoordinationStats(avg_cost_reduction=0.5,
                                  avg_error_needed=0.04,
                                  observations=10)] * 2
        update = policy.reallocate(current, same, 0.05)
        assert not update.reallocated
        assert trace.drain() == []

    def test_detached_policy_pays_one_none_check(self):
        policy = AdaptiveAllocation()
        policy.attach_trace(NULL_TRACE)
        assert policy._trace is None


def test_runtime_kinds_are_documented():
    sampler_kinds = {"interval_adapted", "violation"}
    assert sampler_kinds <= set(TRACE_EVENT_KINDS)
    assert "allowance_reallocated" in TRACE_EVENT_KINDS
    assert "checkpoint_written" in TRACE_EVENT_KINDS
