"""Docs-vs-code consistency: docs/API.md may not name missing symbols.

Every backticked identifier in the API reference that looks like a public
symbol must exist in the package it is documented under; otherwise docs
and code have drifted.
"""

from __future__ import annotations

import pathlib
import re

import pytest

import repro
import repro.analysis
import repro.baselines
import repro.core
import repro.datacenter
import repro.exceptions
import repro.cluster
import repro.config
import repro.experiments
import repro.runtime
import repro.scenarios
import repro.simulation
import repro.telemetry
import repro.testkit
import repro.testkit.scenarios
import repro.triggers
import repro.workloads
from repro.experiments import (delay, figures, monetary, multitask,
                               reliability)

API_MD = pathlib.Path(__file__).resolve().parents[1] / "docs" / "API.md"

NAMESPACES = [repro, repro.core, repro.experiments, repro.workloads,
              repro.datacenter, repro.simulation, repro.baselines,
              repro.analysis, repro.exceptions, repro.config,
              repro.runtime, repro.scenarios, repro.telemetry,
              repro.cluster, repro.triggers,
              repro.testkit, repro.testkit.scenarios,
              figures, monetary, delay, multitask, reliability]


def documented_symbols() -> set[str]:
    text = API_MD.read_text()
    # Backticked CamelCase classes and snake_case callables, first token
    # before any "(" or ".".
    raw = re.findall(r"`([A-Za-z_][A-Za-z0-9_./]*)", text)
    symbols = set()
    for item in raw:
        head = item.split("(")[0].split(".")[0].split("/")[0]
        if head and (head[0].isupper() or "_" in head):
            symbols.add(head)
    return symbols


IGNORED = {
    # config/file/env tokens, not Python symbols
    "REPRO_SCALE", "REPRO_WORKERS", "REPRO_CACHE_DIR", "PYTHONHASHSEED",
    "error_allowance", "local_thresholds", "max_interval",
    "trace_hook", "message_loss_rate", "except_ReproError",
    "default_interval", "add_task", "add_trigger", "generate_with_volume",
    "sampling_ratio", "dom0_utilization_stats", "monitor_accuracy",
    "monetary_bill", "schedule_every", "run_until",
    # runtime wire ops / methods / CLI artifacts, not module attributes
    "register_task", "remove_task", "offer_batch", "task_info",
    "serve_forever", "BENCH_runtime", "BENCH_core", "min_speedup",
    # testkit FaultPlan/FaultSpec methods, not module attributes
    "frame_fault", "duplicate_offer", "force_shed", "shard_fault",
    "checkpoint_fault", "crash_steps", "to_dict", "from_dict",
    "fault_hook", "checkpoint_armed",
    # telemetry config keys, metric-name prefixes, instrument/trace
    # methods and math tokens, not module attributes
    "http_port", "trace_capacity", "selfmon_interval", "relative_error",
    "bench_core", "dump_jsonl", "volley_selfmon_", "volley_sampler_",
    "interval_adapted", "allowance_reallocated", "checkpoint_written",
    # scenario CLI artifacts and Timeline/compiled methods, not module
    # attributes
    "BENCH_scenarios", "phase_spans", "fault_spec", "fault_seed",
    "phase_spread", "ramp_steps", "entropy_shift", "random_walk",
    # cluster config keys, placement fields and the worker-op prefix,
    # not module attributes
    "worker_endpoints", "worker_id", "shard_id", "w_",
    # binary-protocol / SoA-engine methods, not module attributes
    "offer_columns", "soa_row_for", "run_columns", "observe_one",
    "row_state_dict", "load_row_state", "state_dict",
    # typed-task substrate/service methods, config keys, Timeline fields
    # and math tokens (p_q(X), P(X > T), add_*_task), not module
    # attributes
    "add_", "P", "p_q", "bin_width", "entropy_window", "sketch_window",
    "sketch_factory", "plant_sketch_factory", "quantile_value",
    "from_state_dict", "task_type", "task_estimate", "task_type_counts",
    "task_params",
    # trigger-channel wire ops, plan fields and service/client/miner
    # methods, not module attributes
    "trigger_install", "trigger_arm", "trigger_disarm", "trigger_state",
    "trigger_plans", "trigger_status", "trigger_suspensions",
    "trigger_accounting", "install_trigger_plan", "add_trigger_watch",
    "add_remote_trigger", "set_trigger_armed", "set_trigger_sink",
    "drain_trigger_events", "suspend_interval", "min_hold",
    "disarm_level", "from_rule", "ingest_trace", "to_plans",
    "probe_cost_saved",
}


def test_api_reference_file_exists():
    assert API_MD.exists()


@pytest.mark.parametrize("symbol", sorted(documented_symbols() - IGNORED))
def test_documented_symbol_exists(symbol):
    found = any(hasattr(ns, symbol) for ns in NAMESPACES)
    assert found, f"docs/API.md documents missing symbol {symbol!r}"
