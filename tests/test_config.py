"""Tests for declarative service configuration."""

from __future__ import annotations

import json

import pytest

from repro.config import (register_task_from_config, service_from_config,
                          task_from_config)
from repro.core.adaptation import AdaptationConfig
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService
from repro.types import ThresholdDirection

GOOD = {
    "defaults": {"error_allowance": 0.02, "max_interval": 8},
    "tasks": [
        {"name": "ddos", "threshold": 1000.0},
        {"name": "response", "threshold": 120.0,
         "error_allowance": 0.005},
        {"name": "cpu-1min", "threshold": 85.0, "window": 12,
         "aggregate": "mean"},
        {"name": "free-mem", "threshold": 512.0, "direction": "lower"},
    ],
    "triggers": [
        {"target": "ddos", "trigger": "response",
         "elevation_level": 60.0, "suspend_interval": 10},
    ],
}


class TestTaskFromConfig:
    def test_defaults_applied(self):
        spec = task_from_config({"name": "t", "threshold": 5.0},
                                {"error_allowance": 0.03})
        assert spec.error_allowance == 0.03
        assert spec.name == "t"

    def test_entry_overrides_defaults(self):
        spec = task_from_config(
            {"name": "t", "threshold": 5.0, "error_allowance": 0.001},
            {"error_allowance": 0.03})
        assert spec.error_allowance == 0.001

    def test_direction_parsed(self):
        spec = task_from_config(
            {"name": "t", "threshold": 5.0, "direction": "lower"})
        assert spec.direction is ThresholdDirection.LOWER

    @pytest.mark.parametrize("entry", [
        {"threshold": 5.0},                       # no name
        {"name": "t"},                            # no threshold
        {"name": "t", "threshold": 1.0, "typo": 1},
        {"name": "t", "threshold": 1.0, "direction": "sideways"},
        "not-a-dict",
    ])
    def test_rejects_bad_entries(self, entry):
        with pytest.raises(ConfigurationError):
            task_from_config(entry)  # type: ignore[arg-type]


class TestServiceFromConfig:
    def test_full_wiring(self):
        service = service_from_config(GOOD)
        assert set(service.task_names) == {"ddos", "response", "cpu-1min",
                                           "free-mem"}
        # The trigger is live: a cold response metric idles the ddos task.
        service.offer("response", 5.0, 0)
        service.offer("ddos", 1.0, 0)
        assert service.next_due("ddos") == 10

    def test_json_round_trip(self):
        service = service_from_config(json.loads(json.dumps(GOOD)))
        assert len(service.task_names) == 4

    def test_windowed_task_configured(self):
        service = service_from_config(GOOD)
        # A single spike does not alert a 12-step mean task.
        service.offer("cpu-1min", 90.0, 0)
        service.offer("cpu-1min", 10.0, 1)
        assert service.alerts("cpu-1min")[0:1]  # first point mean is 90

    @pytest.mark.parametrize("config", [
        {},                                           # no tasks
        {"tasks": []},
        {"tasks": [{"name": "a", "threshold": 1.0}], "extra": 1},
        {"defaults": {"typo": 1},
         "tasks": [{"name": "a", "threshold": 1.0}]},
        {"tasks": [{"name": "a", "threshold": 1.0}],
         "triggers": [{"target": "a", "trigger": "missing",
                       "elevation_level": 1.0}]},
        {"tasks": [{"name": "a", "threshold": 1.0}],
         "triggers": [{"target": "a"}]},
        "nope",
    ])
    def test_rejects_bad_configs(self, config):
        with pytest.raises(ConfigurationError):
            service_from_config(config)  # type: ignore[arg-type]

    def test_duplicate_names_rejected(self):
        config = {"tasks": [{"name": "a", "threshold": 1.0},
                            {"name": "a", "threshold": 2.0}]}
        with pytest.raises(ConfigurationError):
            service_from_config(config)


class TestTypedTaskEntries:
    """Config validation for sketch-backed task types (fail-closed)."""

    def test_quantile_task_configured(self):
        service = service_from_config({"tasks": [
            {"name": "p99", "threshold": 80.0, "type": "quantile",
             "quantile": 0.99, "sketch_window": 32,
             "relative_error": 0.02}]})
        assert service.task_type("p99") == "quantile"

    def test_entropy_task_defaults_to_lower_direction(self):
        service = service_from_config({"tasks": [
            {"name": "flow", "threshold": 2.0, "type": "entropy",
             "entropy_window": 16, "bin_width": 4.0}]})
        assert service.task_type("flow") == "entropy"
        # Entropy predicates are drop-below unless overridden.
        service.offer("flow", 1.0, 0)
        assert service.alerts("flow")  # one cold symbol: entropy 0 < 2

    @pytest.mark.parametrize("entry", [
        # Unknown type.
        {"name": "t", "threshold": 1.0, "type": "histogram"},
        # Quantile kind without the required quantile key.
        {"name": "t", "threshold": 1.0, "type": "quantile"},
        # Typed keys on the wrong kind.
        {"name": "t", "threshold": 1.0, "quantile": 0.99},
        {"name": "t", "threshold": 1.0, "type": "entropy",
         "quantile": 0.99},
        {"name": "t", "threshold": 1.0, "type": "quantile",
         "quantile": 0.99, "bin_width": 2.0},
        {"name": "t", "threshold": 1.0, "sketch_window": 8},
        {"name": "t", "threshold": 1.0, "entropy_window": 8},
        # Aggregation windows apply to scalar tasks only.
        {"name": "t", "threshold": 1.0, "type": "quantile",
         "quantile": 0.99, "window": 4},
        {"name": "t", "threshold": 1.0, "type": "entropy",
         "aggregate": "mean"},
    ])
    def test_rejects_inconsistent_typed_entries(self, entry):
        with pytest.raises(ConfigurationError):
            service_from_config({"tasks": [entry]})

    def test_register_helper_is_the_single_dispatch_point(self):
        service = MonitoringService(AdaptationConfig())
        for entry in (
                {"name": "v", "threshold": 10.0},
                {"name": "q", "threshold": 80.0, "type": "quantile",
                 "quantile": 0.9},
                {"name": "h", "threshold": 2.0, "type": "entropy"}):
            spec = register_task_from_config(service, entry)
            assert spec.name == entry["name"]
        assert service.task_type_counts() \
            == {"value": 1, "quantile": 1, "entropy": 1}
