"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.exceptions import (ConfigurationError, CoordinationError,
                              CorrelationError, ReproError, SimulationError,
                              TraceError)


@pytest.mark.parametrize("exc", [ConfigurationError, CoordinationError,
                                 CorrelationError, SimulationError,
                                 TraceError])
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    assert issubclass(exc, Exception)


def test_single_catch_at_api_boundary():
    """A caller can guard any library call with one except clause."""
    from repro.core.task import TaskSpec

    with pytest.raises(ReproError):
        TaskSpec(threshold=1.0, error_allowance=7.0)
