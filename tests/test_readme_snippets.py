"""The README's code blocks must actually run.

Documentation rot is a release-blocker for a reproduction repo: the
quickstart is executed here verbatim, and the shell commands the README
advertises are checked against the CLI's real surface.
"""

from __future__ import annotations

import pathlib
import re

README = pathlib.Path(__file__).resolve().parents[1] / "README.md"


def python_blocks() -> list[str]:
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_quickstart():
    blocks = python_blocks()
    assert blocks, "README lost its quickstart code block"


def test_quickstart_block_executes(capsys):
    # Shrink the workload so the doc snippet stays test-fast: the
    # quickstart generates 50k steps; 8k preserves the behaviour.
    source = python_blocks()[0].replace("50_000", "8_000")
    namespace: dict[str, object] = {}
    exec(compile(source, str(README), "exec"), namespace)  # noqa: S102
    out = capsys.readouterr().out
    assert "cost ratio" in out
    assert "mis-detection" in out


def test_quickstart_block_claims_hold(capsys):
    source = python_blocks()[0].replace("50_000", "12_000")
    namespace: dict[str, object] = {}
    exec(compile(source, str(README), "exec"), namespace)  # noqa: S102
    volley = namespace["volley"]
    periodic = namespace["periodic"]
    # The comments promise ~0.2-0.3 cost and <= ~0.01 misdetection.
    assert volley.sampling_ratio < 0.6  # type: ignore[union-attr]
    assert volley.misdetection_rate <= 0.05  # type: ignore[union-attr]
    assert periodic.sampling_ratio == 1.0  # type: ignore[union-attr]


def test_advertised_cli_commands_parse():
    from repro.experiments.__main__ import main

    import pytest

    # Every `python -m repro.experiments ...` line must be accepted by
    # the argument parser (SystemExit(0) is argparse's --help path; a
    # usage error raises SystemExit(2)).
    text = README.read_text()
    commands = re.findall(r"python -m repro\.experiments ([^\n#]+)", text)
    assert commands
    for command in commands:
        args = command.split()
        args = [a for a in args if not a.startswith("REPRO_")]
        # Only validate parsing; don't run the (expensive) figure.
        with pytest.raises(SystemExit) as excinfo:
            main(args + ["--help"])
        assert excinfo.value.code == 0
