"""Tests for the streaming monitoring service facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.task import TaskSpec
from repro.core.windowed import AggregateKind
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService


def task(threshold=100.0, err=0.01):
    return TaskSpec(threshold=threshold, error_allowance=err,
                    max_interval=10)


class TestRegistration:
    def test_add_and_list(self):
        service = MonitoringService()
        service.add_task("a", task())
        service.add_task("b", task())
        assert service.task_names == ["a", "b"]

    def test_duplicate_rejected(self):
        service = MonitoringService()
        service.add_task("a", task())
        with pytest.raises(ConfigurationError):
            service.add_task("a", task())

    def test_unknown_task_rejected(self):
        service = MonitoringService()
        with pytest.raises(ConfigurationError):
            service.due("ghost", 0)
        with pytest.raises(ConfigurationError):
            service.offer("ghost", 1.0, 0)

    def test_bad_window(self):
        service = MonitoringService()
        with pytest.raises(ConfigurationError):
            service.add_task("a", task(), window=0)


class TestScheduling:
    def test_due_and_next_due(self):
        service = MonitoringService()
        service.add_task("a", task(err=0.0))
        assert service.due("a", 0)
        service.offer("a", 1.0, 0)
        assert service.next_due("a") == 1
        assert not service.due("a", 0)
        assert service.due("a", 1)

    def test_offer_before_due_is_ignored(self):
        service = MonitoringService()
        service.add_task("a", task(err=0.05),
                         config=AdaptationConfig(patience=3, min_samples=5))
        # Warm the sampler until the interval grows.
        step = 0
        for _ in range(200):
            if service.due("a", step):
                service.offer("a", 1.0, step)
            step += 1
        assert service.interval("a") > 1
        before = service.samples_taken("a")
        result = service.offer("a", 1.0, service.next_due("a") - 1)
        assert result is None
        assert service.samples_taken("a") == before

    def test_adaptive_schedule_saves_samples(self):
        service = MonitoringService(AdaptationConfig(patience=3,
                                                     min_samples=5))
        service.add_task("a", task(err=0.05))
        taken = 0
        for step in range(2000):
            if service.due("a", step):
                service.offer("a", 1.0, step)
                taken += 1
        assert taken < 1000
        assert service.samples_taken("a") == taken


class TestAlerts:
    def test_alert_callback_fires(self):
        fired = []
        service = MonitoringService()
        service.add_task("a", task(threshold=10.0, err=0.0),
                         on_alert=fired.append)
        service.offer("a", 5.0, 0)
        service.offer("a", 15.0, 1)
        assert len(fired) == 1
        assert fired[0].time_index == 1
        assert fired[0].value == 15.0
        assert service.alerts("a") == fired

    def test_windowed_task_alerts_on_aggregate(self):
        service = MonitoringService()
        service.add_task("w", task(threshold=10.0, err=0.0), window=4,
                         window_kind=AggregateKind.MEAN)
        # Single spike of 24 at step 2: window mean peaks at 24/3 = 8.
        values = [0.0, 0.0, 24.0, 0.0, 0.0, 0.0]
        for step, v in enumerate(values):
            service.offer("w", v, step)
        assert service.alerts("w") == []
        # Sustained values of 12: the mean crosses 10 within the window.
        for step, v in enumerate([12.0] * 6, start=len(values)):
            service.offer("w", v, step)
        assert len(service.alerts("w")) >= 1

    def test_windowed_max_kind(self):
        service = MonitoringService()
        service.add_task("m", task(threshold=10.0, err=0.0), window=3,
                         window_kind=AggregateKind.MAX)
        service.offer("m", 20.0, 0)
        service.offer("m", 0.0, 1)
        # Max over the trailing window still sees the old spike.
        assert len(service.alerts("m")) == 2


class TestTriggers:
    def test_trigger_suspends_target(self):
        service = MonitoringService(AdaptationConfig(patience=3,
                                                     min_samples=5))
        service.add_task("cheap", task(threshold=50.0, err=0.0))
        service.add_task("costly", task(threshold=100.0, err=0.0))
        service.add_trigger("costly", trigger="cheap",
                            elevation_level=40.0, suspend_interval=10)

        # Cold trigger: the costly task idles at the suspend interval.
        service.offer("cheap", 5.0, 0)
        service.offer("costly", 1.0, 0)
        assert service.next_due("costly") == 10

        # Hot trigger: full-rate sampling resumes.
        service.offer("cheap", 90.0, 10)
        service.offer("costly", 1.0, 10)
        assert service.next_due("costly") == 11

    def test_trigger_requires_registered_tasks(self):
        service = MonitoringService()
        service.add_task("a", task())
        with pytest.raises(ConfigurationError):
            service.add_trigger("a", trigger="missing", elevation_level=1.0)
        with pytest.raises(ConfigurationError):
            service.add_trigger("missing", trigger="a", elevation_level=1.0)

    def test_bad_suspend_interval(self):
        service = MonitoringService()
        service.add_task("a", task())
        service.add_task("b", task())
        with pytest.raises(ConfigurationError):
            service.add_trigger("a", "b", 1.0, suspend_interval=0)


class TestTriggerEdgeCases:
    def make_gated(self, suspend_interval=10, err=0.0):
        service = MonitoringService(AdaptationConfig(patience=3,
                                                     min_samples=5))
        service.add_task("cheap", task(threshold=50.0, err=0.0))
        service.add_task("costly", task(threshold=100.0, err=err))
        service.add_trigger("costly", trigger="cheap",
                            elevation_level=40.0,
                            suspend_interval=suspend_interval)
        return service

    def test_trigger_registered_but_never_offered(self):
        """With no last-seen trigger value the target runs at full rate:
        an unobserved trigger must fail open, not suspend the target."""
        service = self.make_gated()
        service.offer("costly", 1.0, 0)
        assert service.next_due("costly") == 1

    def test_trigger_value_exactly_at_elevation_level(self):
        """The suspend condition is strictly-below: a trigger sitting
        exactly at the elevation level counts as elevated (hot)."""
        service = self.make_gated()
        service.offer("cheap", 40.0, 0)
        service.offer("costly", 1.0, 0)
        assert service.next_due("costly") == 1
        # Epsilon below the level suspends.
        service.offer("cheap", 39.999, 1)
        service.offer("costly", 1.0, 1)
        assert service.next_due("costly") == 1 + 10

    def test_adaptive_interval_larger_than_suspend_interval_wins(self):
        """Suspension is max(adaptive, suspend): when the sampler itself
        already wants a longer interval than the suspend interval, a cold
        trigger must not *shorten* the schedule."""
        service = self.make_gated(suspend_interval=2, err=0.05)
        # Warm the costly task until its own interval exceeds 2.
        step = 0
        while service.interval("costly") <= 2:
            if service.due("costly", step):
                service.offer("costly", 1.0, step)
            step += 1
            assert step < 5000, "sampler never grew past the suspend interval"
        adaptive = service.interval("costly")
        assert adaptive > 2
        # Cold trigger, then a consumed sample: next_due advances by the
        # adaptive interval, not the (smaller) suspend interval.
        service.offer("cheap", 5.0, step)
        due = service.next_due("costly")
        service.offer("costly", 1.0, due)
        assert service.next_due("costly") - due >= adaptive


class TestRemoveTask:
    def test_remove_and_reregister(self):
        service = MonitoringService()
        service.add_task("a", task())
        service.offer("a", 1.0, 0)
        service.remove_task("a")
        assert service.task_names == []
        with pytest.raises(ConfigurationError):
            service.due("a", 0)
        # The name is free for a fresh registration with clean state.
        service.add_task("a", task())
        assert service.samples_taken("a") == 0

    def test_remove_unknown_rejected(self):
        service = MonitoringService()
        with pytest.raises(ConfigurationError):
            service.remove_task("ghost")

    def test_remove_clears_dangling_trigger_on_dependents(self):
        service = MonitoringService()
        service.add_task("cheap", task(threshold=50.0, err=0.0))
        service.add_task("costly", task(threshold=100.0, err=0.0))
        service.add_trigger("costly", trigger="cheap",
                            elevation_level=40.0, suspend_interval=10)
        # Cold trigger state is in force...
        service.offer("cheap", 5.0, 0)
        service.remove_task("cheap")
        # ...but removal de-gates the dependent: full-rate scheduling.
        service.offer("costly", 1.0, 1)
        assert service.next_due("costly") == 2

    def test_remove_clears_last_seen(self):
        service = MonitoringService()
        service.add_task("a", task())
        service.offer("a", 123.0, 0)
        service.remove_task("a")
        assert "a" not in service._last_seen


class TestWindowedAggregateBuffer:
    def test_buffer_is_pruned_to_window(self):
        service = MonitoringService()
        service.add_task("w", task(threshold=1e9, err=0.0), window=4)
        state = service._state("w")
        for step in range(100):
            service.offer("w", float(step), step)
        assert len(state._window_values) <= 4

    def test_sparse_offers_prune_stale_entries(self):
        service = MonitoringService()
        service.add_task("w", task(threshold=1e9, err=0.0), window=3)
        state = service._state("w")
        assert state.aggregate(0, 30.0) == 30.0
        # A gap larger than the window evicts everything old.
        assert state.aggregate(10, 6.0) == 6.0
        assert list(state._window_values) == [(10, 6.0)]

    def test_running_sum_tracks_evictions(self):
        service = MonitoringService()
        service.add_task("w", task(threshold=1e9, err=0.0), window=2,
                         window_kind=AggregateKind.SUM)
        state = service._state("w")
        assert state.aggregate(0, 1.0) == 1.0
        assert state.aggregate(1, 2.0) == 3.0
        assert state.aggregate(2, 4.0) == 6.0
        assert state.aggregate(3, 8.0) == 12.0


class TestEndToEndStream:
    def test_matches_runner_semantics(self, bursty_trace):
        """Streaming through the service equals the trace runner."""
        from repro.experiments.runner import run_adaptive

        spec = task(threshold=100.0, err=0.01)
        reference = run_adaptive(bursty_trace, spec)

        service = MonitoringService()
        service.add_task("t", spec)
        sampled = []
        for step, value in enumerate(bursty_trace):
            if service.due("t", step):
                service.offer("t", float(value), step)
                sampled.append(step)
        assert sampled == reference.sampled_indices.tolist()
