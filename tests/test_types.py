"""Tests for the shared value types."""

from __future__ import annotations

import pytest

from repro.types import (Alert, GlobalPoll, LocalViolation, Sample,
                         ThresholdDirection)


class TestThresholdDirection:
    def test_upper_violated(self):
        assert ThresholdDirection.UPPER.violated(11.0, 10.0)
        assert not ThresholdDirection.UPPER.violated(10.0, 10.0)
        assert not ThresholdDirection.UPPER.violated(9.0, 10.0)

    def test_lower_violated(self):
        assert ThresholdDirection.LOWER.violated(9.0, 10.0)
        assert not ThresholdDirection.LOWER.violated(10.0, 10.0)
        assert not ThresholdDirection.LOWER.violated(11.0, 10.0)

    def test_orient_round_trip(self):
        # Orientation maps lower-threshold checks onto upper-threshold
        # math: v < T  <=>  -v > -T.
        value, threshold = 7.0, 10.0
        assert (ThresholdDirection.LOWER.orient(value)
                > -threshold) == ThresholdDirection.LOWER.violated(
                    value, threshold)
        assert ThresholdDirection.UPPER.orient(value) == value


class TestRecords:
    def test_sample_immutable(self):
        sample = Sample(time_index=3, value=1.5)
        with pytest.raises(AttributeError):
            sample.value = 2.0  # type: ignore[misc]

    def test_alert_fields(self):
        alert = Alert(time_index=5, value=12.0, threshold=10.0)
        assert alert.value > alert.threshold

    def test_local_violation_fields(self):
        violation = LocalViolation(monitor_id=2, time_index=9, value=3.0,
                                   local_threshold=2.5)
        assert violation.monitor_id == 2

    def test_global_poll_fields(self):
        poll = GlobalPoll(time_index=1, values=(1.0, 2.0), total=3.0,
                          violated=False)
        assert poll.total == sum(poll.values)
