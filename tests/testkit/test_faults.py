"""Unit tests for the deterministic fault plan and its hook."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.testkit.faults import (CKPT_CORRUPT, CKPT_OK, CKPT_OSERROR,
                                  CKPT_TORN, FRAME_CORRUPT, FRAME_DROP,
                                  FRAME_OK, FRAME_TRUNCATE, FaultHook,
                                  FaultPlan, FaultSpec, InjectedFault,
                                  NOOP_HOOK, PlanFaultHook, stable_uniform)


class TestStableUniform:
    def test_pure_function_of_arguments(self):
        assert stable_uniform(7, "frame", 3) == stable_uniform(7, "frame", 3)

    def test_distinct_seams_and_indices_decorrelate(self):
        draws = {stable_uniform(7, seam, index)
                 for seam in ("frame", "dup", "shed")
                 for index in range(50)}
        assert len(draws) == 150

    def test_range_and_stability_across_processes(self):
        # Pinned value: this must never change, or every recorded
        # (seed, spec) reproduction in history silently shifts.
        for seed, seam, index in [(0, "frame", 0), (7, "apply:3", 12)]:
            u = stable_uniform(seed, seam, index)
            assert 0.0 <= u < 1.0
        assert stable_uniform(7, "frame", 0) \
            == pytest.approx(0.8623004970585783)


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_connection_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultSpec(drop_connection_rate=0.5, truncate_frame_rate=0.4,
                      corrupt_frame_rate=0.2)  # frame rates sum > 1
        with pytest.raises(ConfigurationError):
            FaultSpec(torn_checkpoint_rate=0.6,
                      corrupt_checkpoint_rate=0.5)  # ckpt rates sum > 1
        with pytest.raises(ConfigurationError):
            FaultSpec(crash_fractions=(0.0,))
        with pytest.raises(ConfigurationError):
            FaultSpec(clock_skew_max=-1)

    def test_dict_roundtrip(self):
        spec = FaultSpec(drop_connection_rate=0.1, duplicate_frame_rate=0.2,
                         clock_skew_rate=0.3, clock_skew_max=2,
                         crash_fractions=(0.25, 0.75))
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        assert json.loads(json.dumps(spec.to_dict())) == spec.to_dict()

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown fault spec"):
            FaultSpec.from_dict({"drop_rate": 0.1})


class TestFaultPlan:
    def test_schedule_is_deterministic_and_order_independent(self):
        spec = FaultSpec(drop_connection_rate=0.2, truncate_frame_rate=0.2,
                         corrupt_frame_rate=0.2)
        a = FaultPlan(7, spec)
        b = FaultPlan(7, spec)
        forward = [a.frame_fault(i) for i in range(100)]
        backward = [b.frame_fault(i) for i in reversed(range(100))]
        assert forward == backward[::-1]
        assert set(forward) == {FRAME_OK, FRAME_DROP, FRAME_TRUNCATE,
                                FRAME_CORRUPT}

    def test_different_seeds_differ(self):
        spec = FaultSpec(drop_connection_rate=0.3)
        a = [FaultPlan(1, spec).frame_fault(i) for i in range(64)]
        b = [FaultPlan(2, spec).frame_fault(i) for i in range(64)]
        assert a != b

    def test_zero_rates_never_fire(self):
        plan = FaultPlan(7, FaultSpec())
        assert all(plan.frame_fault(i) == FRAME_OK for i in range(200))
        assert not any(plan.duplicate_offer(i) for i in range(200))
        assert not any(plan.force_shed(i) for i in range(200))
        assert not any(plan.shard_fault(s, i)
                       for s in range(4) for i in range(50))
        assert all(plan.checkpoint_fault(i) == CKPT_OK for i in range(50))
        assert all(plan.skew(t, s) == 0
                   for t in range(4) for s in range(50))

    def test_rates_approximately_honoured(self):
        plan = FaultPlan(7, FaultSpec(drop_connection_rate=0.25))
        drops = sum(plan.frame_fault(i) == FRAME_DROP for i in range(4000))
        assert 800 < drops < 1200  # 25% +- generous slack

    def test_checkpoint_actions_cover_all_kinds(self):
        plan = FaultPlan(7, FaultSpec(torn_checkpoint_rate=0.3,
                                      corrupt_checkpoint_rate=0.3,
                                      checkpoint_oserror_rate=0.3))
        actions = {plan.checkpoint_fault(i) for i in range(200)}
        assert actions == {CKPT_OK, CKPT_TORN, CKPT_CORRUPT, CKPT_OSERROR}

    def test_skew_bounded_and_deterministic(self):
        plan = FaultPlan(7, FaultSpec(clock_skew_rate=1.0,
                                      clock_skew_max=3))
        offsets = [plan.skew(t, s) for t in range(8) for s in range(100)]
        assert all(-3 <= o <= 3 for o in offsets)
        assert any(o != 0 for o in offsets)
        assert offsets == [plan.skew(t, s)
                           for t in range(8) for s in range(100)]

    def test_crash_steps_sorted_unique_in_range(self):
        plan = FaultPlan(7, FaultSpec(crash_fractions=(0.5, 0.25, 0.5)))
        assert plan.crash_steps(200) == (50, 100)
        assert plan.crash_steps(2) == (1,)  # never crash at step 0

    def test_truncate_bytes_is_a_strict_prefix(self):
        plan = FaultPlan(7, FaultSpec())
        body = b"0123456789" * 5
        for index in range(50):
            cut = plan.truncate_bytes(body, index, "frame")
            assert len(cut) < len(body)
            assert body.startswith(cut)

    def test_corrupt_bytes_flips_exactly_one_byte(self):
        plan = FaultPlan(7, FaultSpec())
        body = b'{"op": "ping", "payload": "x"}'
        for index in range(50):
            mutated = plan.corrupt_bytes(body, index, "frame")
            assert len(mutated) == len(body)
            diff = [i for i in range(len(body)) if mutated[i] != body[i]]
            assert len(diff) == 1


class TestHooks:
    def test_noop_hook_is_disabled_and_inert(self):
        assert NOOP_HOOK.enabled is False
        assert NOOP_HOOK.frame_body(b"abc") == b"abc"
        assert NOOP_HOOK.duplicate_frame({}) is False
        assert NOOP_HOOK.force_shed(0) is False
        NOOP_HOOK.before_apply(0, 10)  # must not raise
        assert NOOP_HOOK.checkpoint_body(b"xyz") == b"xyz"
        assert isinstance(NOOP_HOOK, FaultHook)

    def test_disarmed_plan_hook_consumes_no_draws(self):
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            drop_connection_rate=1.0, duplicate_frame_rate=1.0,
            force_shed_rate=1.0)))
        hook.armed = False
        assert hook.frame_body(b"abc") == b"abc"
        assert hook.duplicate_frame({}) is False
        assert hook.force_shed(0) is False
        assert all(v == 0 for v in hook.injected.values())
        # Arming afterwards starts the schedule at index 0.
        hook.armed = True
        assert hook.frame_body(b"abc") is None  # drop rate 1.0, index 0

    def test_corrupted_frames_are_always_undecodable(self):
        # The shadow-replay contract: a corrupted frame must never decode
        # as valid JSON, or the server would apply garbage the scenario
        # driver cannot predict.
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(corrupt_frame_rate=1.0)))
        body = json.dumps({"op": "offer_batch",
                           "updates": [["t", 1, 2.0]]}).encode()
        for _ in range(100):
            mutated = hook.frame_body(body)
            assert mutated is not None
            with pytest.raises((ValueError, UnicodeDecodeError)):
                json.loads(mutated)
        assert hook.injected["frames_corrupted"] == 100

    def test_torn_checkpoints_always_damage_the_trailer(self):
        # Tearing must cut at least two bytes so the crc trailer (whose
        # final newline is optional) can never survive intact.
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            torn_checkpoint_rate=1.0)))
        body = b'{"checkpoint_version":2}\ncrc32:0123abcd\n'
        for _ in range(50):
            torn = hook.checkpoint_body(body)
            assert len(torn) <= len(body) - 2
            assert body.startswith(torn)

    def test_apply_fault_raises_injected_fault(self):
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(shard_error_rate=1.0)))
        with pytest.raises(InjectedFault):
            hook.before_apply(0, 4)
        assert hook.injected["apply_faults"] == 1

    def test_checkpoint_oserror_raises_plain_oserror(self):
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            checkpoint_oserror_rate=1.0)))
        with pytest.raises(OSError):
            hook.checkpoint_body(b"body")
        assert hook.injected["checkpoint_oserrors"] == 1

    def test_seam_counters_survive_rearming(self):
        # A crash-restart disarms and rearms the same hook; the frame
        # counter must continue, not reset, so the schedule stays aligned.
        plan = FaultPlan(7, FaultSpec(drop_connection_rate=0.5))
        hook = PlanFaultHook(plan)
        fates = []
        for index in range(20):
            if index == 10:
                hook.armed = False  # simulated restart window
                assert hook.frame_body(b"x") == b"x"
                hook.armed = True
            fates.append(hook.frame_body(b"x") is None)
        assert fates == [plan.frame_fault(i) == FRAME_DROP
                         for i in range(20)]


class TestBlockingReaderSeam:
    """The sync reader honours the same fault_hook seam as the async one.

    ``read_frame_blocking`` is what the thread-based client and the
    subprocess worker transport use; chaos plans must bite there exactly
    as they do on the event-loop path.
    """

    @staticmethod
    def _frame(payload=None) -> bytes:
        from repro.runtime.protocol import (encode_frame_parts,
                                            encode_offer_columns)
        if payload is None:
            header, body = encode_offer_columns([1, 2], [0, 0], [3.0, 4.0])
        else:
            header, body = encode_frame_parts(payload)
        return header + body

    @staticmethod
    def _read(data: bytes, hook):
        import io

        from repro.runtime.protocol import read_frame_blocking
        return read_frame_blocking(io.BytesIO(data), fault_hook=hook)

    def test_dropped_frame_reads_as_clean_eof(self):
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            drop_connection_rate=1.0)))
        assert self._read(self._frame({"op": "ping"}), hook) is None
        assert hook.injected["frames_dropped"] == 1

    def test_truncated_frame_raises_mid_frame_error(self):
        from repro.exceptions import ProtocolError
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            truncate_frame_rate=1.0)))
        with pytest.raises(ProtocolError, match="mid-frame"):
            self._read(self._frame({"op": "ping"}), hook)
        assert hook.injected["frames_truncated"] == 1

    def test_corrupted_json_frame_fails_decode(self):
        from repro.exceptions import ProtocolError
        hook = PlanFaultHook(FaultPlan(7, FaultSpec(
            corrupt_frame_rate=1.0)))
        with pytest.raises(ProtocolError):
            self._read(self._frame({"op": "ping"}), hook)
        assert hook.injected["frames_corrupted"] == 1

    def test_corrupted_binary_frame_fails_decode(self):
        # Corruption keeps the length but scrambles the body: a binary
        # frame must then fail structural decode, never apply garbage.
        from repro.exceptions import ProtocolError
        hook = PlanFaultHook(FaultPlan(3, FaultSpec(
            corrupt_frame_rate=1.0)))
        with pytest.raises(ProtocolError):
            self._read(self._frame(), hook)

    def test_sync_and_async_readers_share_the_schedule(self):
        # Same plan, same frame sequence: the fate of frame i is
        # identical through both readers.
        import asyncio
        import io

        from repro.runtime.protocol import read_frame, read_frame_blocking
        frames = [self._frame({"op": "ping", "i": i}) for i in range(12)]

        def fate_sync():
            hook = PlanFaultHook(FaultPlan(11, FaultSpec(
                drop_connection_rate=0.4)))
            return [read_frame_blocking(io.BytesIO(f), fault_hook=hook)
                    is None for f in frames]

        def fate_async():
            hook = PlanFaultHook(FaultPlan(11, FaultSpec(
                drop_connection_rate=0.4)))

            async def one(data):
                reader = asyncio.StreamReader()
                reader.feed_data(data)
                reader.feed_eof()
                return await read_frame(reader, fault_hook=hook)

            return [asyncio.run(one(f)) is None for f in frames]

        fates = fate_sync()
        assert fates == fate_async()
        assert any(fates) and not all(fates)
