"""Unit tests for the paper-invariant checkers.

Includes the mutation check from docs/TESTING.md: a deliberately broken
allocation policy that leaks allowance MUST be caught by
``check_allowance_conservation`` — an invariant suite that cannot catch a
planted bug proves nothing.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.adaptation import AdaptationConfig
from repro.core.coordination import (AdaptiveAllocation, AllocationPolicy,
                                     AllocationUpdate, EvenAllocation)
from repro.core.task import TaskSpec
from repro.service import MonitoringService
from repro.testkit.invariants import (ConservationCheckedPolicy,
                                      InvariantResult, LeakySketch,
                                      check_allowance_conservation,
                                      check_misdetection_bound,
                                      check_no_acked_loss,
                                      check_quantile_misdetection,
                                      check_restore_bit_identical,
                                      snapshot_fingerprint)


class LeakyAllocation(AllocationPolicy):
    """Mutant: silently drops a slice of the first monitor's allowance.

    This is the planted bug of the docs/TESTING.md mutation check — the
    kind of defect a subtly wrong floor fixed-point or rounding choice
    would introduce in :class:`AdaptiveAllocation`.
    """

    def __init__(self, leak: float = 0.02):
        self.inner = AdaptiveAllocation()
        self.leak = leak

    def reallocate(self, current, reports, total_error):
        update = self.inner.reallocate(current, reports, total_error)
        if not update.reallocated:
            return update
        allocations = list(update.allocations)
        allocations[0] *= (1.0 - self.leak)  # allowance vanishes here
        return AllocationUpdate(allocations=tuple(allocations),
                                reallocated=True)


class TestAllowanceConservation:
    @pytest.mark.parametrize("policy", [AdaptiveAllocation(),
                                        EvenAllocation()])
    def test_correct_policies_pass(self, policy):
        result = check_allowance_conservation(policy, seed=7)
        assert result.passed, result.detail
        assert result.metrics["violations"] == 0
        assert result.metrics["reallocated_rounds"] > 0 \
            or isinstance(policy, EvenAllocation)
        assert result.metrics["final_sum"] \
            == pytest.approx(result.metrics["total_error"])

    def test_planted_leak_is_caught(self):
        """The mutation check: a 2% leak must fail the invariant."""
        result = check_allowance_conservation(LeakyAllocation(0.02), seed=7)
        assert not result.passed
        assert result.metrics["violations"] > 0
        assert "sum to" in result.detail

    def test_even_a_tiny_leak_is_caught(self):
        # The tolerance is relative (1e-9): far smaller leaks than any
        # plausible rounding noise must still be flagged.
        result = check_allowance_conservation(LeakyAllocation(1e-6), seed=7)
        assert not result.passed

    def test_negative_allocation_is_caught(self):
        class NegativePolicy(AllocationPolicy):
            def reallocate(self, current, reports, total_error):
                allocations = (-total_error,) \
                    + (2.0 * total_error / (len(current) - 1),) \
                    * (len(current) - 1)
                return AllocationUpdate(allocations=allocations,
                                        reallocated=True)

        result = check_allowance_conservation(NegativePolicy(), seed=7)
        assert not result.passed
        assert "negative" in result.detail

    def test_wrapper_is_a_drop_in_policy(self):
        checked = ConservationCheckedPolicy(AdaptiveAllocation())
        current = checked.initial(4, 0.01)
        assert sum(current) == pytest.approx(0.01)
        assert checked.rounds == 0 and not checked.violations

    def test_deterministic_for_a_seed(self):
        a = check_allowance_conservation(AdaptiveAllocation(), seed=13)
        b = check_allowance_conservation(AdaptiveAllocation(), seed=13)
        assert a.to_dict() == b.to_dict()


class TestMisdetectionBound:
    def test_adaptive_sampler_meets_its_bound(self):
        result = check_misdetection_bound(seed=7, err=0.05)
        assert result.passed, result.detail
        assert result.metrics["truth_alerts"] > 0
        assert result.metrics["misdetection_rate"] <= 0.05
        # The whole point of adaptive sampling: well under 100% sampling.
        assert result.metrics["sampling_ratio"] < 0.8

    def test_deterministic_for_a_seed(self):
        a = check_misdetection_bound(seed=29)
        b = check_misdetection_bound(seed=29)
        assert a.to_dict() == b.to_dict()

    def test_result_is_json_able(self):
        result = check_misdetection_bound(seed=7)
        assert json.loads(json.dumps(result.to_dict())) == result.to_dict()


class TestQuantileMisdetection:
    def test_quantile_task_meets_its_bound(self):
        result = check_quantile_misdetection(seed=7, err=0.05)
        assert result.passed, result.detail
        assert result.metrics["truth_points"] > 0
        assert result.metrics["misdetection_rate"] <= 0.05
        assert not result.metrics["planted_sketch"]
        # Adaptive even on the derived exceedance stream: the calm
        # phases between regressions must grow the interval.
        assert result.metrics["sampling_ratio"] < 0.8

    def test_planted_leaky_sketch_is_caught(self):
        """The mutation check for the sketch substrate: a sketch that
        silently drops tail observations starves the exceedance
        statistic and MUST fail the mis-detection invariant."""
        result = check_quantile_misdetection(
            seed=7, err=0.05,
            sketch_factory=lambda: LeakySketch(drop_above=81.0))
        assert not result.passed
        assert result.metrics["planted_sketch"]
        assert result.metrics["misdetection_rate"] > 0.5
        assert "exceeds err" in result.detail

    def test_leaky_sketch_looks_healthy_to_summaries(self):
        # The mutant is *silent*: count/mean/min/max all track the full
        # stream, only the tail buckets leak — which is why catching it
        # needs the invariant, not a summary-statistics sanity check.
        sketch = LeakySketch(drop_above=50.0)
        for v in (10.0, 40.0, 200.0):
            sketch.record(v)
        assert sketch.count == 3
        assert sketch.max == 200.0
        assert sketch.mean == pytest.approx(250.0 / 3)
        assert sketch.tail_count(50.0) == 0  # the leak

    def test_deterministic_for_a_seed(self):
        a = check_quantile_misdetection(seed=29)
        b = check_quantile_misdetection(seed=29)
        assert a.to_dict() == b.to_dict()

    def test_result_is_json_able(self):
        result = check_quantile_misdetection(seed=7)
        assert json.loads(json.dumps(result.to_dict())) == result.to_dict()


class TestRestoreBitIdentical:
    def _snapshot(self):
        service = MonitoringService(AdaptationConfig(patience=3,
                                                     min_samples=4))
        service.add_task("t", TaskSpec(threshold=100.0,
                                       error_allowance=0.05,
                                       max_interval=8))
        rng = np.random.default_rng(5)
        for step, v in enumerate(rng.normal(70.0, 10.0, 200)):
            service.offer("t", float(v), step)
        return service.snapshot()

    def test_real_snapshot_roundtrips(self):
        result = check_restore_bit_identical(self._snapshot())
        assert result.passed, result.detail

    def test_fingerprint_ignores_key_order_only(self):
        snapshot = self._snapshot()
        reordered = json.loads(json.dumps(snapshot, sort_keys=True))
        assert snapshot_fingerprint(snapshot) \
            == snapshot_fingerprint(reordered)
        mutated = json.loads(json.dumps(snapshot))
        mutated["tasks"][0]["samples_taken"] += 1
        assert snapshot_fingerprint(mutated) \
            != snapshot_fingerprint(snapshot)

    def test_unrestorable_snapshot_fails_not_raises(self):
        result = check_restore_bit_identical({"version": 999, "tasks": []})
        assert isinstance(result, InvariantResult)
        assert not result.passed
        assert "restore raised" in result.detail


class TestNoAckedLoss:
    def test_matching_ledgers_pass(self):
        ledger = {"a": 10, "b": 0, "c": 7}
        result = check_no_acked_loss(ledger, dict(ledger))
        assert result.passed
        assert result.metrics["expected_total"] == 17

    def test_missing_updates_fail(self):
        result = check_no_acked_loss({"a": 10}, {"a": 9})
        assert not result.passed
        assert "lost 1" in result.detail
        assert result.metrics["tasks_missing"] == 1

    def test_phantom_updates_fail(self):
        # More applied than ACKed is also a violation: it means the
        # shadow accounting (or a duplicated apply) diverged.
        result = check_no_acked_loss({"a": 10}, {"a": 12})
        assert not result.passed
        assert "more update" in result.detail
        assert result.metrics["tasks_extra"] == 1
