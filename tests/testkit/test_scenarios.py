"""Scenario-driver tests: fast tier-1 smokes plus the chaos-marked matrix.

The chaos tier (``pytest -m chaos``) runs every scenario in the matrix
and asserts all four paper invariants; tier 1 keeps a single-scenario
smoke and the byte-determinism contract so regressions in the harness
itself surface on every push.
"""

from __future__ import annotations

import json

import pytest

from repro.testkit.scenarios import (SCENARIOS, main, render_report,
                                     run_matrix, run_scenario)

INVARIANT_NAMES = ["allowance_conservation", "misdetection_bound",
                   "restore_bit_identical", "no_acked_offer_lost"]


class TestTier1Smoke:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            run_scenario("does-not-exist", 7)

    def test_clean_scenario_passes_and_injects_nothing(self):
        report = run_scenario("clean", 7)
        assert report["passed"], report
        assert all(v == 0 for v in report["injected"].values())
        assert [r["name"] for r in report["invariants"]] == INVARIANT_NAMES
        assert all(r["passed"] for r in report["invariants"])
        assert report["wire"]["mismatches"] == []
        assert report["counters"]["match"]

    def test_crashy_scenario_report_is_byte_deterministic(self):
        """The reproducibility contract: same (scenario, seed) in, same
        bytes out — no timestamps, ports, or scheduling artifacts."""
        first = render_report(run_matrix(["crashy"], seed=7))
        second = render_report(run_matrix(["crashy"], seed=7))
        assert first == second
        report = json.loads(first)
        scenario = report["scenarios"][0]
        assert scenario["crashes"] == 2
        assert scenario["injected"]["apply_faults"] > 0
        assert scenario["passed"]

    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(["--scenario", "overload", "--seed", "7",
                     "--out", str(out)])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["passed"]
        assert report["seed"] == 7
        assert [s["scenario"] for s in report["scenarios"]] == ["overload"]
        assert report["scenarios"][0]["injected"]["batches_shed"] > 0
        assert "overload" in capsys.readouterr().out


@pytest.mark.chaos
class TestChaosMatrix:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [3, 7, 1013])
    def test_scenario_passes_all_invariants(self, name, seed):
        report = run_scenario(name, seed)
        assert report["passed"], json.dumps(report, indent=2)[:2000]
        for result in report["invariants"]:
            assert result["passed"], f"{name}/{seed}: {result['detail']}"
        assert report["wire"]["mismatches"] == []
        assert report["counters"]["match"], report["counters"]

    def test_faulty_scenarios_actually_inject(self):
        """Guard against a silently disarmed harness: every non-clean
        scenario must inject at least one fault at these seeds."""
        for name in sorted(SCENARIOS):
            if name == "clean":
                continue
            report = run_scenario(name, 7)
            injected = sum(report["injected"].values()) \
                + report["crashes"] \
                + report["checkpoints"]["rejected"] \
                + report["checkpoints"]["write_errors"]
            assert injected > 0, f"{name} injected nothing at seed 7"
