"""Unit tests for the trigger channel pieces (``repro.triggers``).

Plan validation, watcher debounce edges, and the service-level remote
guard — including the full-rate resume contract: a disarm->arm edge
makes the guarded task due *immediately* at the default interval, it
does not wait out the parked suspend schedule or keep the stale grown
interval the healthy stream had earned.
"""

from __future__ import annotations

import pytest

from repro.core.adaptation import AdaptationConfig, ViolationLikelihoodSampler
from repro.core.correlation import CorrelationEvidence, TriggerRule
from repro.core.task import TaskSpec
from repro.exceptions import ConfigurationError
from repro.service import MonitoringService
from repro.triggers import TriggerPlan, TriggerWatcher


def task(threshold=100.0, err=0.01, max_interval=10):
    return TaskSpec(threshold=threshold, error_allowance=err,
                    max_interval=max_interval)


class TestTriggerPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TriggerPlan(target="a", trigger="a", elevation_level=1.0)
        with pytest.raises(ConfigurationError):
            TriggerPlan(target="a", trigger="b", elevation_level=1.0,
                        suspend_interval=1)
        with pytest.raises(ConfigurationError):
            TriggerPlan(target="a", trigger="b", elevation_level=1.0,
                        hysteresis=1.0)
        with pytest.raises(ConfigurationError):
            TriggerPlan(target="a", trigger="b", elevation_level=1.0,
                        min_hold=-1)

    def test_from_dict_rejects_unknown_keys(self):
        plan = TriggerPlan(target="a", trigger="b", elevation_level=2.0)
        with pytest.raises(ConfigurationError):
            TriggerPlan.from_dict({**plan.to_dict(), "bogus": 1})

    def test_disarm_level_sides(self):
        up = TriggerPlan(target="a", trigger="b", elevation_level=100.0,
                         hysteresis=0.1)
        assert up.disarm_level == pytest.approx(90.0)
        down = TriggerPlan(target="a", trigger="b", elevation_level=-100.0,
                           hysteresis=0.1)
        assert down.disarm_level == pytest.approx(-110.0)

    def test_from_rule_stamps_channel_params(self):
        evidence = CorrelationEvidence(
            pearson=0.9, necessary_condition_score=0.97,
            elevation_level=55.0, elevated_fraction=0.2, support=40)
        rule = TriggerRule(target_id="dpi", trigger_id="conns",
                           elevation_level=55.0, evidence=evidence,
                           expected_saving=0.7, estimated_loss=0.03)
        plan = TriggerPlan.from_rule(rule, suspend_interval=12,
                                     hysteresis=0.2, min_hold=3)
        assert plan.target == "dpi" and plan.trigger == "conns"
        assert plan.elevation_level == 55.0
        assert plan.suspend_interval == 12
        assert plan.hysteresis == 0.2 and plan.min_hold == 3


class TestWatcher:
    def test_starts_armed_and_needs_band_exit_to_disarm(self):
        watcher = TriggerWatcher(100.0, hysteresis=0.1, min_hold=0)
        assert watcher.armed
        assert watcher.observe(95.0, 0) is None  # inside the band
        assert watcher.observe(89.0, 1) == "disarm"
        assert watcher.observe(99.0, 2) is None  # below the arm level
        assert watcher.observe(100.0, 3) == "arm"  # boundary arms

    def test_min_hold_suppresses_flapping(self):
        watcher = TriggerWatcher(100.0, hysteresis=0.1, min_hold=5)
        assert watcher.observe(10.0, 0) == "disarm"
        assert watcher.observe(150.0, 2) is None  # held
        assert watcher.observe(150.0, 5) == "arm"


class TestServiceChannel:
    def _guarded(self, suspend=8):
        service = MonitoringService()
        service.add_task("costly", task(err=0.0))
        service.install_trigger_plan(TriggerPlan(
            target="costly", trigger="conns", elevation_level=40.0,
            suspend_interval=suspend, min_hold=0))
        return service

    def test_remote_trigger_needs_no_local_trigger_task(self):
        service = self._guarded()
        status = service.trigger_status("costly")
        assert status["trigger"] == "conns"
        assert status["armed"] is True
        assert "watch" not in status

    def test_disarmed_guard_idles_at_suspend_interval(self):
        service = self._guarded(suspend=8)
        service.offer("costly", 1.0, 0)
        assert service.next_due("costly") == 1
        assert service.set_trigger_armed("costly", False) is True
        service.offer("costly", 1.0, 1)
        assert service.next_due("costly") == 9
        assert service.trigger_suspensions("costly") == 1
        assert service.trigger_accounting() == (1, 7.0)

    def test_rearm_resumes_full_rate_immediately(self):
        service = self._guarded(suspend=8)
        service.offer("costly", 1.0, 0)
        service.set_trigger_armed("costly", False)
        service.offer("costly", 1.0, 1)  # parks next_due at step 9
        service.set_trigger_armed("costly", True)
        # The arm edge must not wait out the parked schedule: the guard
        # is due at the very next offer.
        assert service.due("costly", 2)
        decision = service.offer("costly", 1.0, 2)
        assert decision is not None
        assert decision.next_interval == 1

    def test_set_armed_requires_a_guard(self):
        service = MonitoringService()
        service.add_task("plain", task())
        with pytest.raises(ConfigurationError):
            service.set_trigger_armed("plain", True)

    def test_reinstall_preserves_armed_state(self):
        service = self._guarded()
        service.set_trigger_armed("costly", False)
        service.install_trigger_plan(TriggerPlan(
            target="costly", trigger="conns", elevation_level=40.0,
            suspend_interval=8, min_hold=0))
        assert service.trigger_status("costly")["armed"] is False

    def test_watch_edges_buffer_or_sink(self):
        service = MonitoringService()
        service.add_task("conns", task(threshold=200.0))
        service.add_trigger_watch("conns", 40.0, min_hold=0)
        service.offer("conns", 10.0, 0)  # below the band -> disarm
        events = service.drain_trigger_events()
        assert events == [{"op": "disarm", "trigger": "conns",
                           "step": 0, "value": 10.0}]
        seen: list[dict] = []
        service.set_trigger_sink(seen.append)
        service.offer("conns", 80.0, 1)  # above the level -> arm
        assert service.drain_trigger_events() == []
        assert seen and seen[0]["op"] == "arm"


class TestSamplerResume:
    def test_resume_full_rate_resets_grown_interval(self):
        sampler = ViolationLikelihoodSampler(
            task(err=0.5, max_interval=6),
            AdaptationConfig(patience=1, min_samples=2))
        step = 0
        for _ in range(12):
            decision = sampler.observe(0.0, step)
            step += decision.next_interval
        assert sampler.interval > 1
        grow_events = sampler.grow_events
        reset_events = sampler.reset_events
        sampler.resume_full_rate()
        assert sampler.interval == 1
        # An external scheduling decision, not an adaptation event.
        assert sampler.grow_events == grow_events
        assert sampler.reset_events == reset_events
        assert sampler.observe(0.0, step).next_interval >= 1
