"""Tests for the workload base types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.base import MetricTrace, TraceGenerator


class TestMetricTrace:
    def test_basic_properties(self):
        trace = MetricTrace(values=np.arange(10.0), default_interval=15.0,
                            name="t", unit="pkts")
        assert len(trace) == 10
        assert trace.duration_seconds == 150.0

    def test_percentile_threshold(self):
        trace = MetricTrace(values=np.arange(1000.0))
        threshold = trace.percentile_threshold(1.0)
        violations = (trace.values > threshold).mean()
        assert violations == pytest.approx(0.01, abs=0.002)

    def test_percentile_threshold_validation(self):
        trace = MetricTrace(values=np.arange(10.0))
        with pytest.raises(TraceError):
            trace.percentile_threshold(0.0)
        with pytest.raises(TraceError):
            trace.percentile_threshold(100.0)

    @pytest.mark.parametrize("values", [
        np.array([]),
        np.zeros((2, 2)),
        np.array([1.0, np.nan]),
        np.array([1.0, np.inf]),
    ])
    def test_rejects_bad_values(self, values):
        with pytest.raises(TraceError):
            MetricTrace(values=values)

    def test_rejects_bad_interval(self):
        with pytest.raises(TraceError):
            MetricTrace(values=np.zeros(3), default_interval=0.0)


class TestTraceGenerator:
    def test_trace_wraps_generate(self, rng):
        class Constant(TraceGenerator):
            default_interval = 5.0
            unit = "x"

            def generate(self, n_steps, rng):
                return np.full(n_steps, 7.0)

        trace = Constant().trace(20, rng, name="c")
        assert len(trace) == 20
        assert trace.default_interval == 5.0
        assert trace.name == "c"
        assert (trace.values == 7.0).all()

    def test_generate_is_abstract(self, rng):
        with pytest.raises(NotImplementedError):
            TraceGenerator().generate(10, rng)

    def test_trace_rejects_bad_length(self, rng):
        class Constant(TraceGenerator):
            def generate(self, n_steps, rng):
                return np.zeros(n_steps)

        with pytest.raises(TraceError):
            Constant().trace(0, rng)
