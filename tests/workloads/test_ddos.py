"""Tests for SYN-flood injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.ddos import SynFloodAttack, inject_attacks


class TestSynFloodAttack:
    def test_profile_shape(self):
        attack = SynFloodAttack(start=10, peak_syn_rate=100.0,
                                ramp_steps=5, hold_steps=10, decay_steps=5)
        profile = attack.profile(50)
        assert profile[:10].sum() == 0.0
        assert profile[14] < 100.0          # still ramping
        assert profile[15] == pytest.approx(100.0)
        assert profile[24] == pytest.approx(100.0)
        assert profile[25] < 100.0          # decaying
        assert profile[30:].sum() == 0.0
        assert attack.duration == 20

    def test_profile_truncation(self):
        attack = SynFloodAttack(start=95, peak_syn_rate=10.0,
                                ramp_steps=4, hold_steps=10, decay_steps=4)
        profile = attack.profile(100)
        assert profile.size == 100
        assert profile[95:].max() > 0.0

    def test_alert_window(self):
        attack = SynFloodAttack(start=7, peak_syn_rate=1.0, ramp_steps=2,
                                hold_steps=3, decay_steps=2)
        assert attack.alert_window() == (7, 14)

    def test_profile_rejects_empty_grid(self):
        attack = SynFloodAttack(start=0, peak_syn_rate=1.0)
        with pytest.raises(TraceError):
            attack.profile(0)

    @pytest.mark.parametrize("kwargs", [
        dict(start=-1, peak_syn_rate=1.0),
        dict(start=0, peak_syn_rate=0.0),
        dict(start=0, peak_syn_rate=1.0, ramp_steps=0),
        dict(start=0, peak_syn_rate=1.0, decay_steps=0),
        dict(start=0, peak_syn_rate=1.0, hold_steps=-1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            SynFloodAttack(**kwargs)


class TestInjectAttacks:
    def test_adds_profiles(self):
        base = np.ones(100)
        attacks = [SynFloodAttack(start=10, peak_syn_rate=50.0),
                   SynFloodAttack(start=60, peak_syn_rate=20.0)]
        out = inject_attacks(base, attacks)
        assert out[0] == 1.0
        assert out.max() > 50.0
        # The original trace is untouched.
        assert (base == 1.0).all()

    def test_rejects_bad_trace(self):
        with pytest.raises(TraceError):
            inject_attacks(np.zeros((2, 2)), [])
