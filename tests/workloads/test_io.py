"""Tests for trace persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import TraceError
from repro.workloads.base import MetricTrace
from repro.workloads.io import FORMAT_VERSION, load_traces, save_traces


def make_traces(rng):
    return [
        MetricTrace(values=rng.normal(0, 1, 100), default_interval=15.0,
                    name="vm-0/traffic-diff", unit="packets/15s"),
        MetricTrace(values=rng.normal(0, 1, 50), default_interval=5.0,
                    name="node-1/cpu_user_pct", unit="%"),
    ]


class TestRoundTrip:
    def test_values_and_metadata_survive(self, tmp_path, rng):
        traces = make_traces(rng)
        target = tmp_path / "traces.npz"
        save_traces(target, traces)
        loaded = load_traces(target)
        assert len(loaded) == 2
        for original, restored in zip(traces, loaded):
            assert np.array_equal(original.values, restored.values)
            assert restored.name == original.name
            assert restored.unit == original.unit
            assert restored.default_interval == original.default_interval

    def test_order_preserved_with_duplicate_names(self, tmp_path, rng):
        traces = [
            MetricTrace(values=np.array([1.0]), name="same"),
            MetricTrace(values=np.array([2.0]), name="same"),
        ]
        target = tmp_path / "dup.npz"
        save_traces(target, traces)
        loaded = load_traces(target)
        assert loaded[0].values[0] == 1.0
        assert loaded[1].values[0] == 2.0


class TestErrors:
    def test_empty_save_rejected(self, tmp_path):
        with pytest.raises(TraceError):
            save_traces(tmp_path / "x.npz", [])

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_traces(tmp_path / "missing.npz")

    def test_foreign_npz_rejected(self, tmp_path):
        target = tmp_path / "foreign.npz"
        np.savez(target, data=np.zeros(3))
        with pytest.raises(TraceError):
            load_traces(target)

    def test_wrong_version_rejected(self, tmp_path, rng, monkeypatch):
        import repro.workloads.io as io_module

        target = tmp_path / "old.npz"
        monkeypatch.setattr(io_module, "FORMAT_VERSION", FORMAT_VERSION + 1)
        save_traces(target, make_traces(rng))
        monkeypatch.undo()
        with pytest.raises(TraceError):
            load_traces(target)

    def test_corrupt_file_rejected(self, tmp_path):
        target = tmp_path / "garbage.npz"
        target.write_bytes(b"not a zip archive at all")
        with pytest.raises((TraceError, Exception)):
            load_traces(target)
