"""Tests for the netflow substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.netflow import (FlowRecord, NetflowConfig,
                                     NetflowGenerator, map_addresses_to_vms,
                                     window_packet_counts)


class TestNetflowGenerator:
    def test_flows_sorted_and_in_range(self, rng):
        gen = NetflowGenerator(NetflowConfig(flows_per_second=20.0))
        flows = gen.generate(duration=300.0, rng=rng)
        assert len(flows) > 100
        starts = [f.start for f in flows]
        assert starts == sorted(starts)
        assert all(0.0 <= s < 300.0 for s in starts)

    def test_no_self_flows(self, rng):
        gen = NetflowGenerator(NetflowConfig(num_addresses=16,
                                             flows_per_second=50.0))
        flows = gen.generate(120.0, rng)
        assert all(f.src != f.dst for f in flows)

    def test_packets_positive_and_scaled(self, rng):
        config = NetflowConfig(addresses_per_vm=8)
        flows = NetflowGenerator(config).generate(120.0, rng)
        assert all(f.packets >= 1 for f in flows)
        assert all(f.bytes == f.packets * config.mean_packet_bytes
                   for f in flows)

    def test_diurnal_modulation(self):
        config = NetflowConfig(flows_per_second=100.0,
                               diurnal_period=1000.0, diurnal_depth=0.9)
        gen = NetflowGenerator(config)
        # Rate at mid-cycle (peak) far exceeds the rate at cycle start.
        assert gen._rate_at(500.0) > 5.0 * gen._rate_at(0.0)

    def test_rejects_bad_duration(self, rng):
        with pytest.raises(ConfigurationError):
            NetflowGenerator().generate(0.0, rng)

    @pytest.mark.parametrize("kwargs", [
        dict(num_addresses=1),
        dict(flows_per_second=0.0),
        dict(diurnal_depth=1.0),
        dict(addresses_per_vm=0),
    ])
    def test_config_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            NetflowConfig(**kwargs)


class TestAddressMapping:
    def test_uniform_mapping(self):
        mapping = map_addresses_to_vms(100, 10)
        counts = np.bincount(mapping)
        assert counts.tolist() == [10] * 10

    def test_uneven_sizes(self):
        mapping = map_addresses_to_vms(7, 3)
        counts = np.bincount(mapping, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            map_addresses_to_vms(0, 3)


class TestWindowCounts:
    def test_conserves_packets(self, rng):
        flows = [
            FlowRecord(src=0, dst=1, start=5.0, packets=10, bytes=100),
            FlowRecord(src=1, dst=2, start=20.0, packets=7, bytes=70),
            FlowRecord(src=2, dst=0, start=31.0, packets=3, bytes=30),
        ]
        mapping = np.array([0, 1, 0])  # addr2 -> vm0
        incoming, outgoing = window_packet_counts(
            flows, mapping, num_vms=2, window_seconds=15.0, num_windows=3)
        assert incoming.sum() == outgoing.sum() == 20
        assert outgoing[0, 0] == 10        # vm0 sent flow 1 in window 0
        assert incoming[1, 0] == 10        # vm1 received it
        assert outgoing[1, 1] == 7
        assert incoming[0, 1] == 7         # addr2 maps to vm0
        assert outgoing[0, 2] == 3

    def test_flows_outside_horizon_dropped(self):
        flows = [FlowRecord(src=0, dst=1, start=100.0, packets=5, bytes=0)]
        mapping = np.array([0, 1])
        incoming, outgoing = window_packet_counts(
            flows, mapping, num_vms=2, window_seconds=15.0, num_windows=2)
        assert incoming.sum() == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            window_packet_counts([], np.array([0]), 1, 0.0, 1)


class TestEndToEndCounts:
    def test_generator_to_windows(self, rng):
        config = NetflowConfig(num_addresses=64, flows_per_second=30.0)
        flows = NetflowGenerator(config).generate(450.0, rng)
        mapping = map_addresses_to_vms(64, 8)
        incoming, outgoing = window_packet_counts(
            flows, mapping, num_vms=8, window_seconds=15.0, num_windows=30)
        assert incoming.shape == (8, 30)
        assert incoming.sum() == sum(f.packets for f in flows)
