"""Guard against hidden global-RNG state in the workload generators.

Scenario compilation is only byte-reproducible if every generator draws
exclusively from the explicit ``numpy.random.Generator`` it is handed.
This audit scans the package source for legacy global-state entry points
and pins the behaviour of the seeded ``substream`` derivation.
"""

from __future__ import annotations

import pathlib
import re

import numpy as np
import pytest

import repro.workloads
from repro.scenarios import canned_timeline, compile_timeline
from repro.workloads import substream

_PKG_DIR = pathlib.Path(repro.workloads.__file__).parent

# Legacy numpy global-state API (np.random.seed / np.random.normal /
# np.random.RandomState ...) and the stdlib `random` module. Explicit
# Generator methods (rng.normal, rng.integers) do not match.
_FORBIDDEN = re.compile(
    r"\bnp\.random\.(?!Generator|SeedSequence|default_rng)\w+"
    r"|\bnumpy\.random\.(?!Generator|SeedSequence|default_rng)\w+"
    r"|^import random\b|^from random import\b",
    re.MULTILINE)


@pytest.mark.parametrize(
    "path", sorted(_PKG_DIR.glob("*.py")), ids=lambda p: p.name)
def test_no_module_level_rng_in_workloads(path):
    hits = [m.group(0)
            for m in _FORBIDDEN.finditer(path.read_text(encoding="utf-8"))]
    assert not hits, (
        f"{path.name} uses global RNG state {hits}; thread an explicit "
        f"numpy.random.Generator instead")


def test_substream_is_deterministic_and_independent():
    a = substream(7, "scenario", "x", "base", 0)
    b = substream(7, "scenario", "x", "base", 0)
    assert np.array_equal(a.random(16), b.random(16))
    # Different parts, namespaces or seeds give decorrelated streams.
    for other in (substream(7, "scenario", "x", "base", 1),
                  substream(7, "scenario", "y", "base", 0),
                  substream(7, "other", "x", "base", 0),
                  substream(8, "scenario", "x", "base", 0)):
        ref = substream(7, "scenario", "x", "base", 0)
        assert not np.array_equal(ref.random(16), other.random(16))


def test_substream_type_tags_parts():
    # The integer 1 and the string "1" must key different streams.
    a = substream(7, "ns", 1)
    b = substream(7, "ns", "1")
    assert not np.array_equal(a.random(8), b.random(8))


def test_two_builds_of_a_scenario_are_byte_identical():
    timeline = canned_timeline("cascade-failure").scaled(fleet=0.05,
                                                         horizon=0.25)
    a = compile_timeline(timeline, 13)
    b = compile_timeline(timeline, 13)
    assert a.values.tobytes() == b.values.tobytes()
    assert a.thresholds.tobytes() == b.thresholds.tobytes()
    assert a.windows == b.windows
