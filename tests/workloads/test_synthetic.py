"""Tests for the generic synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.synthetic import (AR1Generator, CompositeGenerator,
                                       DiurnalGenerator, RandomWalkGenerator,
                                       RegimeSwitchGenerator,
                                       SpikeTrainGenerator)


def test_random_walk_clamps(rng):
    gen = RandomWalkGenerator(sigma=5.0, lo=-1.0, hi=1.0)
    values = gen.generate(500, rng)
    assert values.min() >= -1.0
    assert values.max() <= 1.0


def test_random_walk_drift(rng):
    gen = RandomWalkGenerator(sigma=0.1, drift=1.0)
    values = gen.generate(100, rng)
    assert values[-1] > 80.0


def test_random_walk_validation():
    with pytest.raises(ConfigurationError):
        RandomWalkGenerator(sigma=-1.0)
    with pytest.raises(ConfigurationError):
        RandomWalkGenerator(lo=1.0, hi=0.0)


def test_ar1_mean_reversion(rng):
    gen = AR1Generator(mean=50.0, phi=0.5, sigma=1.0)
    values = gen.generate(5000, rng)
    assert values.mean() == pytest.approx(50.0, abs=1.0)


def test_ar1_smoothness_grows_with_phi(rng):
    rough = AR1Generator(phi=0.1, sigma=1.0).generate(
        5000, np.random.default_rng(1))
    smooth = AR1Generator(phi=0.98, sigma=1.0).generate(
        5000, np.random.default_rng(1))
    # Same innovations: higher persistence means relatively smaller steps.
    rough_steps = np.abs(np.diff(rough)).mean() / rough.std()
    smooth_steps = np.abs(np.diff(smooth)).mean() / smooth.std()
    assert smooth_steps < rough_steps


def test_ar1_validation():
    with pytest.raises(ConfigurationError):
        AR1Generator(phi=1.0)
    with pytest.raises(ConfigurationError):
        AR1Generator(sigma=-0.1)


def test_diurnal_range_and_period(rng):
    gen = DiurnalGenerator(period=100, amplitude=10.0, floor=5.0)
    values = gen.generate(300, rng)
    assert values.min() >= 5.0 - 1e-9
    assert values.max() <= 15.0 + 1e-9
    # Perfect periodicity.
    assert np.allclose(values[:100], values[100:200])


def test_diurnal_validation():
    with pytest.raises(ConfigurationError):
        DiurnalGenerator(period=1)
    with pytest.raises(ConfigurationError):
        DiurnalGenerator(period=10, amplitude=-1.0)


def test_spike_train_mostly_zero(rng):
    gen = SpikeTrainGenerator(spike_prob=0.001)
    values = gen.generate(20_000, rng)
    assert (values == 0.0).mean() > 0.8
    assert values.max() > 0.0


def test_spike_train_no_exact_plateaus(rng):
    # Strict percentile thresholds degenerate on runs of equal maxima;
    # the generator jitters spike plateaus to prevent that.
    gen = SpikeTrainGenerator(spike_prob=0.0005, hold_steps=30)
    values = gen.generate(20_000, rng)
    positive = values[values > 0]
    assert positive.size == np.unique(positive).size


def test_spike_train_validation():
    with pytest.raises(ConfigurationError):
        SpikeTrainGenerator(spike_prob=1.5)
    with pytest.raises(ConfigurationError):
        SpikeTrainGenerator(ramp_steps=0)


def test_composite_sums_components(rng):
    gen = CompositeGenerator([DiurnalGenerator(period=10, amplitude=0.0,
                                               floor=3.0),
                              DiurnalGenerator(period=10, amplitude=0.0,
                                               floor=4.0)])
    values = gen.generate(50, rng)
    assert np.allclose(values, 7.0)


def test_composite_validation():
    with pytest.raises(ConfigurationError):
        CompositeGenerator([])


def test_regime_switch_mixes(rng):
    quiet = DiurnalGenerator(period=10, amplitude=0.0, floor=0.0)
    busy = DiurnalGenerator(period=10, amplitude=0.0, floor=100.0)
    gen = RegimeSwitchGenerator(quiet, busy, p_enter_busy=0.05,
                                p_exit_busy=0.05)
    values = gen.generate(5000, rng)
    assert (values == 0.0).any()
    assert (values == 100.0).any()


def test_regime_switch_validation():
    quiet = DiurnalGenerator(period=10)
    with pytest.raises(ConfigurationError):
        RegimeSwitchGenerator(quiet, quiet, p_enter_busy=-0.1)


def test_determinism_same_seed():
    gen = SpikeTrainGenerator(spike_prob=0.01)
    a = gen.generate(1000, np.random.default_rng(7))
    b = gen.generate(1000, np.random.default_rng(7))
    assert np.array_equal(a, b)
