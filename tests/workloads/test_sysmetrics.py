"""Tests for the synthetic 66-metric system dataset."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.sysmetrics import (SYSTEM_DEFAULT_INTERVAL,
                                        SYSTEM_METRICS,
                                        SystemMetricsDataset)


class TestCatalogue:
    def test_exactly_66_metrics(self):
        assert len(SYSTEM_METRICS) == 66

    def test_names_unique(self):
        names = [m.name for m in SYSTEM_METRICS]
        assert len(set(names)) == 66

    def test_percent_metrics_bounded(self):
        for spec in SYSTEM_METRICS:
            if spec.name.endswith("_pct"):
                assert (spec.lo, spec.hi) == (0.0, 100.0)

    def test_expected_families_present(self):
        names = set(SystemMetricsDataset.metric_names())
        for expected in ("cpu_user_pct", "mem_free_mb", "vm_cs_per_s",
                         "disk_await_ms", "net_rx_kbps", "load_1m"):
            assert expected in names


class TestDataset:
    def test_values_within_bounds(self):
        dataset = SystemMetricsDataset(num_nodes=2, seed=0)
        for metric in ("cpu_user_pct", "load_1m", "disk_await_ms"):
            values = dataset.generate(0, metric, 3000)
            spec = dataset.spec(metric)
            assert values.min() >= spec.lo
            assert values.max() <= spec.hi

    def test_deterministic_per_node_and_metric(self):
        a = SystemMetricsDataset(num_nodes=4, seed=9)
        b = SystemMetricsDataset(num_nodes=4, seed=9)
        assert np.array_equal(a.generate(2, "cpu_user_pct", 500),
                              b.generate(2, "cpu_user_pct", 500))

    def test_nodes_differ(self):
        dataset = SystemMetricsDataset(num_nodes=2, seed=0)
        assert not np.array_equal(dataset.generate(0, "cpu_user_pct", 500),
                                  dataset.generate(1, "cpu_user_pct", 500))

    def test_metrics_differ(self):
        dataset = SystemMetricsDataset(num_nodes=1, seed=0)
        assert not np.array_equal(dataset.generate(0, "cpu_user_pct", 500),
                                  dataset.generate(0, "cpu_system_pct", 500))

    def test_seeds_differ(self):
        a = SystemMetricsDataset(num_nodes=1, seed=0)
        b = SystemMetricsDataset(num_nodes=1, seed=1)
        assert not np.array_equal(a.generate(0, "cpu_user_pct", 500),
                                  b.generate(0, "cpu_user_pct", 500))

    def test_trace_metadata(self):
        dataset = SystemMetricsDataset(num_nodes=1, seed=0)
        trace = dataset.trace(0, "cpu_user_pct", 100)
        assert trace.default_interval == SYSTEM_DEFAULT_INTERVAL
        assert trace.name == "node-0/cpu_user_pct"
        assert trace.unit == "%"

    def test_unknown_metric(self):
        dataset = SystemMetricsDataset(num_nodes=1)
        with pytest.raises(ConfigurationError):
            dataset.generate(0, "no_such_metric", 10)

    def test_node_out_of_range(self):
        dataset = SystemMetricsDataset(num_nodes=2)
        with pytest.raises(ConfigurationError):
            dataset.generate(2, "cpu_user_pct", 10)

    def test_bad_length(self):
        dataset = SystemMetricsDataset(num_nodes=1)
        with pytest.raises(ConfigurationError):
            dataset.generate(0, "cpu_user_pct", 0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SystemMetricsDataset(num_nodes=0)
        with pytest.raises(ConfigurationError):
            SystemMetricsDataset(num_nodes=1, diurnal_period=1)

    def test_smooth_metric_is_smoother_than_spiky(self):
        dataset = SystemMetricsDataset(num_nodes=1, seed=3)
        smooth = dataset.generate(0, "temperature_c", 5000)
        spiky = dataset.generate(0, "swap_in_rate", 5000)
        smooth_rel = np.abs(np.diff(smooth)).mean() / (smooth.std() + 1e-9)
        spiky_rel = np.abs(np.diff(spiky)).mean() / (spiky.std() + 1e-9)
        assert smooth_rel < spiky_rel
