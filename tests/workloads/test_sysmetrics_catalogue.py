"""Exhaustive checks over the full 66-metric catalogue.

Every metric in the catalogue is generated and validated: bounds
respected, finite values, non-degenerate dynamics, and a usable
threshold at the evaluation selectivities. This guards the dataset
against a single miscalibrated entry silently breaking a Fig. 5(b)/7
sweep that happens to sample it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.sysmetrics import SYSTEM_METRICS, SystemMetricsDataset
from repro.workloads.thresholds import threshold_for_selectivity

DATASET = SystemMetricsDataset(num_nodes=1, seed=123)
STEPS = 1200


@pytest.mark.parametrize("spec", SYSTEM_METRICS,
                         ids=[m.name for m in SYSTEM_METRICS])
class TestEveryMetric:
    def test_bounds_and_finiteness(self, spec):
        values = DATASET.generate(0, spec.name, STEPS)
        assert values.shape == (STEPS,)
        assert np.isfinite(values).all()
        assert values.min() >= spec.lo
        assert values.max() <= spec.hi

    def test_not_degenerate(self, spec):
        values = DATASET.generate(0, spec.name, STEPS)
        # Every metric must actually move (no constant streams) without
        # filling its whole range with noise.
        assert values.std() > 0.0
        assert values.std() < 0.5 * (spec.hi - spec.lo)

    def test_threshold_usable_at_small_selectivity(self, spec):
        values = DATASET.generate(0, spec.name, STEPS)
        threshold = threshold_for_selectivity(values, 0.4)
        # The strict threshold must leave at least one violating point
        # and must not label most of the stream as violating (saturation
        # at the upper bound would do either).
        violating = (values > threshold).mean()
        assert 0.0 < violating <= 0.02


def test_all_metrics_mutually_distinct():
    traces = {m.name: DATASET.generate(0, m.name, 300)
              for m in SYSTEM_METRICS[:10]}
    names = list(traces)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            assert not np.array_equal(traces[a], traces[b]), (a, b)
