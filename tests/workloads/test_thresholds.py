"""Tests for selectivity-based thresholds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.types import ThresholdDirection
from repro.workloads.thresholds import (PAPER_ERROR_ALLOWANCES,
                                        PAPER_SELECTIVITIES,
                                        threshold_for_selectivity,
                                        thresholds_for_violation_rates)


class TestThresholdForSelectivity:
    def test_realised_selectivity(self, rng):
        values = rng.normal(0.0, 1.0, 100_000)
        for k in (0.5, 2.0, 10.0):
            threshold = threshold_for_selectivity(values, k)
            realised = 100.0 * (values > threshold).mean()
            assert realised == pytest.approx(k, rel=0.05)

    def test_lower_direction(self, rng):
        values = rng.normal(0.0, 1.0, 100_000)
        threshold = threshold_for_selectivity(
            values, 5.0, ThresholdDirection.LOWER)
        realised = 100.0 * (values < threshold).mean()
        assert realised == pytest.approx(5.0, rel=0.05)

    def test_validation(self, rng):
        values = rng.normal(0.0, 1.0, 100)
        with pytest.raises(ConfigurationError):
            threshold_for_selectivity(values, 0.0)
        with pytest.raises(ConfigurationError):
            threshold_for_selectivity(values, 100.0)
        with pytest.raises(TraceError):
            threshold_for_selectivity(np.array([]), 1.0)


class TestThresholdsForViolationRates:
    def test_per_trace_rates(self, rng):
        traces = [rng.normal(0.0, 1.0, 50_000) for _ in range(3)]
        rates = np.array([1.0, 5.0, 10.0])
        thresholds = thresholds_for_violation_rates(traces, rates)
        for trace, threshold, rate in zip(traces, thresholds, rates):
            realised = 100.0 * (trace > threshold).mean()
            assert realised == pytest.approx(rate, rel=0.1)

    def test_extreme_rates_clipped(self, rng):
        traces = [rng.normal(0.0, 1.0, 1000)]
        # A 90% violation rate clips to 50%; 0 clips to a tiny rate.
        thresholds = thresholds_for_violation_rates(traces,
                                                    np.array([90.0]))
        realised = (traces[0] > thresholds[0]).mean()
        assert realised <= 0.51

    def test_mismatched_lengths(self, rng):
        with pytest.raises(ConfigurationError):
            thresholds_for_violation_rates([rng.normal(0, 1, 10)],
                                           np.array([1.0, 2.0]))


class TestPaperConstants:
    def test_paper_axes(self):
        assert PAPER_SELECTIVITIES == (6.4, 3.2, 1.6, 0.8, 0.4, 0.2, 0.1)
        assert PAPER_ERROR_ALLOWANCES == (0.002, 0.004, 0.008, 0.016, 0.032)
