"""Tests for the traffic-difference metric."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, TraceError
from repro.workloads.traffic import (TrafficDifferenceGenerator,
                                     syn_ack_difference_from_flows)


class TestSynAckFromFlows:
    def test_expectation_tracks_imbalance(self, rng):
        incoming = np.full(2000, 10_000)
        outgoing = np.full(2000, 8_000)
        rho = syn_ack_difference_from_flows(incoming, outgoing, rng,
                                            syn_probability=0.1)
        # E[rho] = p * (in - out) = 200
        assert rho.mean() == pytest.approx(200.0, rel=0.1)

    def test_balanced_traffic_near_zero(self, rng):
        counts = np.full(2000, 10_000)
        rho = syn_ack_difference_from_flows(counts, counts, rng)
        assert abs(rho.mean()) < 5.0

    def test_misaligned_rejected(self, rng):
        with pytest.raises(TraceError):
            syn_ack_difference_from_flows(np.zeros(3), np.zeros(4), rng)

    def test_negative_counts_rejected(self, rng):
        with pytest.raises(TraceError):
            syn_ack_difference_from_flows(np.array([-1]), np.array([1]),
                                          rng)

    def test_bad_probability_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            syn_ack_difference_from_flows(np.zeros(2, dtype=int),
                                          np.zeros(2, dtype=int), rng,
                                          syn_probability=0.0)


class TestTrafficDifferenceGenerator:
    def test_quiet_band_is_small(self, rng):
        gen = TrafficDifferenceGenerator(burst_prob=0.0)
        rho = gen.generate(5000, rng)
        # Without bursts the residue stays tiny relative to burst scale.
        assert np.percentile(rho, 99) < 30.0

    def test_bursts_create_heavy_tail(self, rng):
        gen = TrafficDifferenceGenerator(burst_prob=0.003)
        rho = gen.generate(20_000, rng)
        assert rho.max() > 10.0 * np.percentile(rho, 90)

    def test_volume_alignment_and_scale(self, rng):
        gen = TrafficDifferenceGenerator()
        rho, packets = gen.generate_with_volume(3000, rng)
        assert rho.shape == packets.shape
        assert (packets >= 0).all()
        # Volume carries the handshake + data-packet mass.
        assert packets.mean() > 100.0

    def test_deterministic_given_seed(self):
        gen = TrafficDifferenceGenerator()
        a = gen.generate(2000, np.random.default_rng(3))
        b = gen.generate(2000, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_diurnal_depth_shapes_volume(self):
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        flat = TrafficDifferenceGenerator(diurnal_depth=0.0)
        deep = TrafficDifferenceGenerator(diurnal_depth=0.9)
        _, flat_packets = flat.generate_with_volume(5760, rng_a)
        _, deep_packets = deep.generate_with_volume(5760, rng_b)
        assert deep_packets.sum() < flat_packets.sum()

    def test_trace_for_vm_names(self, rng):
        trace = TrafficDifferenceGenerator().trace_for_vm(17, 100, rng)
        assert trace.name == "vm-17/traffic-diff"
        assert trace.default_interval == 15.0

    @pytest.mark.parametrize("kwargs", [
        dict(base_handshakes=0.0),
        dict(diurnal_depth=1.0),
        dict(diurnal_period=1),
        dict(completion_rate=0.0),
        dict(burst_prob=-0.1),
        dict(burst_ramp=0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrafficDifferenceGenerator(**kwargs)
