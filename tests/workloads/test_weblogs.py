"""Tests for the WorldCup-style web workload."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.weblogs import WebWorkloadGenerator


class TestWebWorkloadGenerator:
    def test_popularity_sums_to_one(self):
        gen = WebWorkloadGenerator(num_objects=100)
        total = sum(gen.object_popularity(i) for i in range(100))
        assert total == pytest.approx(1.0)

    def test_popularity_decreasing(self):
        gen = WebWorkloadGenerator(num_objects=50)
        pops = [gen.object_popularity(i) for i in range(50)]
        assert pops == sorted(pops, reverse=True)

    def test_popularity_rank_validation(self):
        gen = WebWorkloadGenerator(num_objects=10)
        with pytest.raises(ConfigurationError):
            gen.object_popularity(10)

    def test_diurnal_trough_much_quieter(self, rng):
        gen = WebWorkloadGenerator(peak_rate=1000.0, diurnal_period=1000,
                                   diurnal_depth=0.9, flash_prob=0.0)
        envelope = gen.rate_envelope(1000, rng)
        assert envelope.min() < 0.2 * envelope.max()

    def test_flash_crowds_multiply(self, rng):
        calm_rng = np.random.default_rng(11)
        crowd_rng = np.random.default_rng(11)
        calm = WebWorkloadGenerator(flash_prob=0.0, diurnal_period=5000)
        crowds = WebWorkloadGenerator(flash_prob=0.002, flash_magnitude=8.0,
                                      diurnal_period=5000)
        calm_env = calm.rate_envelope(5000, calm_rng)
        crowd_env = crowds.rate_envelope(5000, crowd_rng)
        assert crowd_env.max() > 2.0 * calm_env.max()

    def test_site_requests_track_envelope(self, rng):
        gen = WebWorkloadGenerator(peak_rate=2000.0, diurnal_period=2000,
                                   flash_prob=0.0)
        requests = gen.site_requests(2000, rng)
        assert requests.mean() == pytest.approx(
            gen.rate_envelope(2000, rng).mean(), rel=0.15)

    def test_object_trace_thins_site_traffic(self, rng):
        gen = WebWorkloadGenerator(peak_rate=5000.0, diurnal_period=2000)
        trace = gen.access_rate_trace(0, 2000, rng)
        assert trace.default_interval == 1.0
        assert trace.name == "object-0/access-rate"
        # The most popular object still sees only a fraction of traffic.
        assert trace.values.mean() < 5000.0 * 0.5

    def test_rare_object_quieter_than_popular(self):
        gen = WebWorkloadGenerator(peak_rate=5000.0, diurnal_period=2000)
        popular = gen.access_rate_trace(0, 2000, np.random.default_rng(1))
        rare = gen.access_rate_trace(400, 2000, np.random.default_rng(1))
        assert rare.values.mean() < popular.values.mean()

    def test_envelope_length_validation(self, rng):
        gen = WebWorkloadGenerator()
        with pytest.raises(ConfigurationError):
            gen.rate_envelope(0, rng)

    @pytest.mark.parametrize("kwargs", [
        dict(peak_rate=0.0),
        dict(num_objects=0),
        dict(diurnal_depth=1.0),
        dict(diurnal_period=1),
        dict(flash_prob=2.0),
        dict(flash_magnitude=0.5),
        dict(flash_duration=0.0),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            WebWorkloadGenerator(**kwargs)
