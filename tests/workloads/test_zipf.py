"""Tests for Zipf utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.workloads.zipf import (sample_zipf_ranks, zipf_hotspot_rates,
                                  zipf_rates, zipf_weights)


class TestZipfWeights:
    def test_uniform_at_zero_skew(self):
        weights = zipf_weights(4, 0.0)
        assert np.allclose(weights, 0.25)

    def test_decreasing_with_rank(self):
        weights = zipf_weights(10, 1.5)
        assert (np.diff(weights) < 0).all()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_weights(0, 1.0)
        with pytest.raises(ConfigurationError):
            zipf_weights(5, -0.1)

    @given(n=st.integers(min_value=1, max_value=200),
           skew=st.floats(min_value=0.0, max_value=4.0,
                          allow_nan=False, allow_infinity=False))
    @settings(max_examples=100, deadline=None)
    def test_property_normalised(self, n, skew):
        weights = zipf_weights(n, skew)
        assert weights.sum() == pytest.approx(1.0)
        assert (weights > 0).all()


class TestZipfRates:
    def test_mean_preserved(self):
        rates = zipf_rates(8, 2.0, 1.5)
        assert rates.mean() == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_rates(8, 1.0, 0.0)


class TestHotspotRates:
    def test_floor_preserved(self):
        rates = zipf_hotspot_rates(8, 2.0, 0.2)
        assert rates.min() == pytest.approx(0.2)
        assert rates[0] > rates[-1]

    def test_uniform_at_zero_skew(self):
        rates = zipf_hotspot_rates(8, 0.0, 0.2)
        assert np.allclose(rates, 0.2)

    def test_cap(self):
        rates = zipf_hotspot_rates(16, 3.0, 0.2, cap=5.0)
        assert rates.max() == 5.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_hotspot_rates(8, 1.0, 0.0)
        with pytest.raises(ConfigurationError):
            zipf_hotspot_rates(8, 1.0, 0.1, cap=0.0)


class TestSampleRanks:
    def test_skew_prefers_low_ranks(self, rng):
        ranks = sample_zipf_ranks(100, 2.0, 5000, rng)
        assert (ranks < 10).mean() > 0.5

    def test_size_zero(self, rng):
        assert sample_zipf_ranks(10, 1.0, 0, rng).size == 0

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sample_zipf_ranks(10, 1.0, -1, rng)
